//! Quickstart: find a data race with SWORD in three steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Write a parallel program against the `ompsim` runtime (the stand-in
//!    for OpenMP — same fork/join, barrier, worksharing and critical
//!    constructs).
//! 2. Run it under the SWORD collector: every instrumented access goes to
//!    a bounded per-thread buffer that is compressed and flushed to the
//!    session directory.
//! 3. Analyze the session offline and print the races with their source
//!    locations.

use sword::offline::{analyze_loaded, AnalysisConfig, LoadedSession};
use sword::ompsim::SimConfig;
use sword::runtime::{run_collected, SwordConfig};
use sword::trace::SessionDir;

fn main() {
    let dir = std::env::temp_dir().join("sword-example-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // Step 1 + 2: the program — a parallel histogram with one bug: the
    // `total` counter is updated without protection.
    println!("collecting...");
    let (_, stats) = run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
        let data = sim.alloc::<u64>(4096, 0);
        let hist = sim.alloc::<u64>(16, 0);
        let total = sim.alloc::<u64>(1, 0);
        for i in 0..4096 {
            data.set_seq(i, (i * 2654435761) % 16);
        }
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                // Correct: each thread owns a private slice of bins via
                // a critical section per bin update.
                w.for_static(0..4096, |i| {
                    let bin = w.read(&data, i) % 16;
                    w.critical("hist", || {
                        let v = w.read(&hist, bin);
                        w.write(&hist, bin, v + 1);
                    });
                });
                // The bug: unprotected read-modify-write of the total.
                let v = w.read(&total, 0);
                w.write(&total, 0, v + 1024);
            });
        });
    })
    .expect("collection failed");

    println!(
        "  {} events from {} threads, {} -> {} on disk ({:.1}x compression)",
        stats.events,
        stats.threads,
        stats.raw_bytes,
        stats.compressed_bytes,
        stats.compression_ratio()
    );
    println!("  bounded collector memory: {} bytes\n", stats.tool_memory_bytes);

    // Step 3: offline analysis.
    println!("analyzing...");
    let session = SessionDir::new(&dir);
    let loaded = LoadedSession::load(&session).expect("session loads");
    let result = analyze_loaded(&loaded, &AnalysisConfig::default()).expect("analysis");
    println!(
        "  {} barrier intervals, {} accesses, {} tree nodes, {} solver calls\n",
        result.stats.barrier_intervals,
        result.stats.events,
        result.stats.nodes,
        result.stats.solver_calls
    );

    if result.races.is_empty() {
        println!("no races found (unexpected — the counter update races!)");
    } else {
        println!("{} race(s) found:", result.races.len());
        for race in &result.races {
            println!("  {}", race.render(&loaded.pcs));
        }
        println!("\n(the critical-section histogram updates are correctly NOT reported)");
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(result.race_count(), 2, "read-write and write-write pairs on `total`");
}
