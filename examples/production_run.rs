//! The paper's closing scenario: race-checking a production run that
//! fills ~90% of node memory.
//!
//! ```text
//! cargo run --release --example production_run
//! ```
//!
//! A solver state array with a declared footprint of 230 MB runs on a
//! 256 MB model node (≈90% utilization — the regime the paper's abstract
//! highlights). A shadow-memory detector needs multiples of the
//! application footprint and is killed immediately; SWORD's collector
//! stays within its ~MB bound, the run completes, and the offline
//! analysis reports the planted race — printed as the JSON report a CI
//! system would consume.

use std::sync::Arc;

use sword::archer::{ArcherConfig, ArcherTool};
use sword::metrics::{format_bytes, NodeModel, Placement};
use sword::offline::{analyze_loaded, AnalysisConfig, LoadedSession};
use sword::ompsim::{OmpSim, SimConfig};
use sword::runtime::{run_collected, SwordConfig};
use sword::trace::SessionDir;

const DECLARED_ELEMS: u64 = 30_000_000; // 30M f64 = 240 MB declared
const REAL_BACKING: usize = 1 << 15;
const TOUCH_STRIDE: u64 = 64; // sparse refresh pass over the state

fn production_program(sim: &OmpSim) {
    let state = sim.alloc_phantom::<f64>(DECLARED_ELEMS, REAL_BACKING, 1.0);
    let residual = sim.alloc::<f64>(1, 0.0);
    sim.run(|ctx| {
        ctx.parallel(6, |w| {
            // Refresh pass over the (huge) state: every 64th element.
            w.for_static(0..DECLARED_ELEMS / TOUCH_STRIDE, |k| {
                let i = k * TOUCH_STRIDE;
                let v = w.read(&state, i);
                w.write(&state, i, v * 0.999 + 0.001);
            });
            // The bug: an unprotected residual update.
            let v = w.read(&residual, 0);
            w.write(&residual, 0, v + 1.0);
            w.barrier();
        });
    });
}

fn main() {
    let node = NodeModel::with_total(256 << 20);
    let baseline = DECLARED_ELEMS * 8;
    println!(
        "node: {} ({} available) — application state: {} ({}% of node)\n",
        format_bytes(node.total_bytes),
        format_bytes(node.available()),
        format_bytes(baseline),
        baseline * 100 / node.total_bytes
    );

    // Shadow-memory detector on this node: killed.
    let tool = Arc::new(ArcherTool::new(ArcherConfig {
        node_budget: Some(node.available()),
        ..Default::default()
    }));
    let sim = OmpSim::with_tool(tool.clone());
    tool.attach_baseline_source(sim.footprint_handle());
    production_program(&sim);
    let stats = tool.stats();
    assert!(stats.oom, "90% utilization leaves no room for shadow memory");
    println!(
        "archer: OUT OF MEMORY ({} modeled tool bytes on top of the baseline)\n",
        format_bytes(stats.modeled_total_bytes())
    );

    // SWORD: bounded collection completes; the session is analyzed
    // offline, where memory pressure no longer matters.
    let dir = std::env::temp_dir().join("sword-example-production");
    let _ = std::fs::remove_dir_all(&dir);
    let (_, collect) = run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
        production_program(sim);
    })
    .expect("collection");
    let place = node.place(baseline, collect.tool_memory_bytes);
    assert!(matches!(place, Placement::Fits { .. }));
    println!(
        "sword: completed — {} events, {} bounded collector memory, {} logs on disk",
        collect.events,
        format_bytes(collect.tool_memory_bytes),
        format_bytes(collect.compressed_bytes)
    );

    let session = SessionDir::new(&dir);
    let loaded = LoadedSession::load(&session).expect("load");
    let result = analyze_loaded(&loaded, &AnalysisConfig::default()).expect("analysis");
    println!("\noffline report (JSON):\n{}", sword::offline::render_json(&result, &loaded.pcs));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(result.race_count(), 2, "the residual read-write and write-write pairs");
}
