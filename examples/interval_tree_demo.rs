//! Figures 4 & 5 demo: strided intervals and why range overlap is not
//! enough.
//!
//! ```text
//! cargo run --release --example interval_tree_demo
//! ```
//!
//! Part 1 replays the paper's Figure 4: two threads make interleaved
//! 4-byte accesses with stride 8 (`T0` from address 10, `T1` from 14).
//! Their `[begin, end)` ranges overlap, so the interval tree reports a
//! candidate pair — but the exact constraint
//! `Δ0·x0 + b0 + s0 = Δ1·x1 + b1 + s1` is unsatisfiable: no byte is
//! shared, no race.
//!
//! Part 2 replays §III-B's interval-tree example: `a[i] = a[i-1]` over
//! 1000 ints split between two threads. Each thread's ~1000 accesses
//! summarize into two tree nodes, and exactly one node pair (the chunk
//! boundary element) passes the exact check.

use sword::itree::{for_each_candidate_pair, SummarizingBuilder};
use sword::solver::{overlap_ilp, strided_overlap_witness, IlpStatus, StridedInterval};

fn main() {
    // ---- Part 1: Figure 4 -------------------------------------------------
    let t0 = StridedInterval::new(10, 8, 4, 4);
    let t1 = StridedInterval::new(14, 8, 4, 4);
    println!("Figure 4:");
    println!("  T0 accesses: {:?} -> bytes {}..{}", t0, t0.begin(), t0.end());
    println!("  T1 accesses: {:?} -> bytes {}..{}", t1, t1.begin(), t1.end());
    println!("  coarse ranges overlap: {}", t0.range_overlaps(&t1));
    println!("  exact shared byte:     {:?}", strided_overlap_witness(&t0, &t1));
    assert!(t0.range_overlaps(&t1));
    assert_eq!(strided_overlap_witness(&t0, &t1), None);

    // The same decision through the paper's ILP formulation.
    let ilp = overlap_ilp(&t0, &t1);
    println!("  ILP (GLPK stand-in) verdict: {:?}", ilp.solve());
    assert_eq!(ilp.solve(), IlpStatus::Infeasible);

    // Shift T1 one byte left and the constraint becomes satisfiable.
    let t1_shifted = StridedInterval::new(13, 8, 4, 4);
    let witness = strided_overlap_witness(&t0, &t1_shifted);
    println!("  shifted T1 {:?}: shared byte {:?}\n", t1_shifted, witness);
    assert!(witness.is_some());

    // ---- Part 2: §III-B interval-tree example ------------------------------
    // a[i] = a[i-1], 1000 ints, 2 threads with static halves. Merge key
    // is (source line, op) as in the real analyzer.
    const BASE: u64 = 0x100;
    let mut trees = Vec::new();
    for (lo, hi) in [(1u64, 500u64), (500, 1000)] {
        let mut b: SummarizingBuilder<(&str, bool), &str> = SummarizingBuilder::new();
        for i in lo..hi {
            b.insert_with(("read a[i-1]", false), BASE + (i - 1) * 4, 4, || "read a[i-1]");
            b.insert_with(("write a[i]", true), BASE + i * 4, 4, || "write a[i]");
        }
        let t = b.finish();
        println!("thread {}..{}: {} accesses -> {} tree nodes", lo, hi, (hi - lo) * 2, t.len());
        for (_, iv, label) in t.iter() {
            println!(
                "    [{:#06x}, {:#06x}) stride {} x{}  {}",
                iv.begin(),
                iv.end(),
                iv.stride,
                iv.len(),
                label
            );
        }
        trees.push(t);
    }

    let (a, b) = (&trees[0], &trees[1]);
    let mut candidates = 0;
    let mut races = Vec::new();
    for_each_candidate_pair(a, b, |ia, la, ib, lb| {
        candidates += 1;
        // R/W filter + exact overlap, as the analyzer applies.
        let is_write = |l: &&str| l.starts_with("write");
        if !is_write(la) && !is_write(lb) {
            return;
        }
        if let Some(addr) = strided_overlap_witness(ia, ib) {
            races.push((la.to_string(), lb.to_string(), addr));
        }
    });
    println!("\ncandidate node pairs: {candidates}");
    for (la, lb, addr) in &races {
        println!("RACE: `{la}` <-> `{lb}` share address {addr:#x} (element a[499])");
    }
    assert_eq!(races.len(), 1, "exactly the boundary element races");
    assert_eq!(races[0].2, BASE + 499 * 4);
}
