//! Figure 2 demo: barrier intervals and nested-parallelism races.
//!
//! ```text
//! cargo run --release --example nested_regions
//! ```
//!
//! Reproduces the paper's Figure 2 concurrency structure: an outer
//! 2-thread region whose workers each fork an inner 2-thread region, with
//! three planted races —
//!
//! * **R1**: two threads of the same barrier interval write `y`;
//! * **R2**: a thread of one inner region writes `y` concurrently with a
//!   thread of the *other* inner region (different regions, concurrent by
//!   offset-span labels);
//! * **R3**: an inner-region thread reads `x` concurrently with the
//!   sibling outer thread writing it.
//!
//! It also shows what is *not* a race: accesses separated by a barrier,
//! and an inner region vs. its own forker (ordered by fork/join).

use sword::offline::{analyze_loaded, AnalysisConfig, LoadedSession};
use sword::ompsim::SimConfig;
use sword::runtime::{run_collected, SwordConfig};
use sword::trace::SessionDir;

fn main() {
    let dir = std::env::temp_dir().join("sword-example-nested");
    let _ = std::fs::remove_dir_all(&dir);

    run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
        let x = sim.alloc::<u64>(1, 0);
        let y = sim.alloc::<u64>(1, 0);
        let z = sim.alloc::<u64>(4, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |outer| {
                let t = outer.team_index();
                if t == 0 {
                    // Outer thread 0: work, barrier, then fork an inner
                    // region whose threads write y (R1 inside the inner
                    // team's shared interval, R2 against the other inner
                    // region).
                    outer.write(&z, 0, 1); // private slot: no race
                    outer.barrier();
                    outer.parallel(2, |inner| {
                        inner.write(&y, 0, inner.team_index() + 1); // R1 + R2
                    });
                } else {
                    // Outer thread 1: writes x before ITS barrier — an
                    // inner region of thread 0 reads x concurrently (R3).
                    outer.write(&x, 0, 7); // R3 partner
                    outer.barrier();
                    outer.parallel(2, |inner| {
                        inner.master(|| {
                            let _ = inner.read(&x, 0); // ordered: after t1's own barrier? No —
                                                       // concurrent with t0's inner writes to y,
                                                       // but x was written before the barrier…
                        });
                        inner.write(&y, 0, 9); // R2 partner (and R1 in this team)
                    });
                }
            });
        });
    })
    .expect("collection");

    let session = SessionDir::new(&dir);
    let loaded = LoadedSession::load(&session).expect("load");
    println!("concurrency structure (regions.meta):");
    let mut regions: Vec<_> = loaded.regions.values().collect();
    regions.sort_by_key(|r| r.pid);
    for r in &regions {
        println!(
            "  region {}: parent {:?}, level {}, span {}, fork label {}",
            r.pid,
            r.ppid,
            r.level,
            r.span,
            r.fork_label()
        );
    }
    assert_eq!(regions.len(), 3, "one outer + two inner regions");

    let result = analyze_loaded(&loaded, &AnalysisConfig::sequential()).expect("analysis");
    println!("\n{} race(s):", result.race_count());
    for race in &result.races {
        println!("  {}", race.render(&loaded.pcs));
    }
    // The write-write pairs on y (R1 within each inner team collapses
    // with R2 across teams when the source lines coincide; the two
    // distinct y-writing lines give distinct pairs) and the x pair (R3).
    assert!(result.race_count() >= 3, "R1/R2 (y) and R3 (x) must all be found: {:?}", result.races);
    // And the analyzer must NOT report z (private slots) — check by
    // confirming every reported witness address hits x or y.
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nFigure 2 reproduced: nested regions race across teams, barriers order the rest.");
}
