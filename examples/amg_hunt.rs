//! Race hunt on the AMG2013 analog: the paper's headline comparison in
//! one program.
//!
//! ```text
//! cargo run --release --example amg_hunt
//! ```
//!
//! Runs the multigrid mini-app at the 20³ size under both detectors on a
//! 64 MB model node, then pushes the size to 40³ where ARCHER's
//! footprint-proportional shadow memory no longer fits — the run is
//! killed, as on the paper's 32 GB nodes — while SWORD's bounded
//! collection completes and reports all 14 races.

use std::sync::Arc;

use sword::archer::{ArcherConfig, ArcherTool};
use sword::metrics::{format_bytes, NodeModel};
use sword::offline::{analyze, AnalysisConfig};
use sword::ompsim::{OmpSim, SimConfig};
use sword::runtime::{run_collected, SwordConfig};
use sword::trace::SessionDir;
use sword::workloads::hpc::{amg_baseline_bytes, amg_workload};
use sword::workloads::{RunConfig, Workload};

fn main() {
    let node = NodeModel::with_total(64 << 20);
    let cfg = RunConfig { threads: 6, size: 0 };
    println!(
        "model node: {} total, {} available\n",
        format_bytes(node.total_bytes),
        format_bytes(node.available())
    );

    for n in [20u64, 40] {
        let w = amg_workload(n);
        println!("=== AMG2013_{n} (baseline {}) ===", format_bytes(amg_baseline_bytes(n)));

        // ARCHER on the model node.
        let tool = Arc::new(ArcherTool::new(ArcherConfig {
            node_budget: Some(node.available()),
            ..Default::default()
        }));
        let sim = OmpSim::with_tool(tool.clone());
        tool.attach_baseline_source(sim.footprint_handle());
        w.execute(&sim, &cfg);
        let stats = tool.stats();
        if stats.oom {
            println!(
                "  archer: OUT OF MEMORY after shadowing {} words ({} modeled)",
                stats.peak_shadow_words,
                format_bytes(stats.modeled_total_bytes())
            );
        } else {
            println!(
                "  archer: {} races, {} modeled tool memory",
                tool.races().len(),
                format_bytes(stats.modeled_total_bytes())
            );
        }

        // SWORD.
        let dir = std::env::temp_dir().join(format!("sword-example-amg{n}"));
        let _ = std::fs::remove_dir_all(&dir);
        let (_, collect) = run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
            w.execute(sim, &cfg);
        })
        .expect("collection");
        let result = analyze(&SessionDir::new(&dir), &AnalysisConfig::default()).expect("analysis");
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "  sword:  {} races, {} bounded collector memory, {} logs on disk",
            result.race_count(),
            format_bytes(collect.tool_memory_bytes),
            format_bytes(collect.compressed_bytes)
        );
        assert_eq!(result.race_count(), 14);
        if n == 40 {
            assert!(stats.oom, "ARCHER must OOM at 40^3 on this node");
            println!("\nAMG2013_40: only SWORD completes — the paper's Table IV row.");
        } else {
            assert_eq!(tool.races().len(), 4, "eviction hides 10 of the 14 from ARCHER");
        }
        println!();
    }
}
