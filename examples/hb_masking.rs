//! Figure 1 demo: the same racy program, two schedules, two detectors.
//!
//! ```text
//! cargo run --release --example hb_masking
//! ```
//!
//! Thread 0 writes `a` without holding any lock; thread 1 reads and
//! writes `a` inside `critical(L)`. Whether a happens-before detector
//! sees the race depends on the *schedule*:
//!
//! * interleaving (a): thread 1's critical section runs first — there is
//!   no release→acquire path from the write to the locked accesses, and
//!   ARCHER reports the race;
//! * interleaving (b): thread 0 writes, then releases L, then thread 1
//!   acquires L — that edge orders the accesses and ARCHER reports
//!   *nothing*, even though the program is identical.
//!
//! SWORD reconstructs concurrency from barrier intervals and offset-span
//! labels instead of the schedule's happens-before, so it reports the
//! race under both interleavings.

use std::sync::Arc;

use sword::archer::{ArcherConfig, ArcherTool};
use sword::offline::{analyze, AnalysisConfig};
use sword::ompsim::{OmpSim, Sequencer, SimConfig};
use sword::runtime::{run_collected, SwordConfig};
use sword::trace::SessionDir;

/// The Figure 1 program; `masked` selects interleaving (b).
fn program(sim: &OmpSim, masked: bool) {
    let a = sim.alloc::<u64>(1, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(2, |w| {
            if w.team_index() == 0 {
                if masked {
                    seq.turn(0, || w.write(&a, 0, 1));
                    seq.turn(1, || w.critical("L", || {}));
                } else {
                    seq.wait_for(1);
                    w.write(&a, 0, 1);
                    w.critical("L", || {});
                    seq.advance();
                }
            } else if masked {
                seq.wait_for(2);
                w.critical("L", || {
                    let v = w.read(&a, 0);
                    w.write(&a, 0, v + 1);
                });
            } else {
                seq.turn(0, || {
                    w.critical("L", || {
                        let v = w.read(&a, 0);
                        w.write(&a, 0, v + 1);
                    });
                });
            }
        });
    });
}

fn main() {
    for (label, masked) in [("(a) exposed schedule", false), ("(b) masking schedule", true)] {
        println!("--- interleaving {label} ---");

        // ARCHER: happens-before over the actual schedule.
        let tool = Arc::new(ArcherTool::new(ArcherConfig::default()));
        let sim = OmpSim::with_tool(tool.clone());
        program(&sim, masked);
        let archer_races = tool.races().len();
        println!("  archer: {archer_races} race(s)");

        // SWORD: offline, schedule-insensitive.
        let dir = std::env::temp_dir().join(format!("sword-example-hb-{masked}"));
        let _ = std::fs::remove_dir_all(&dir);
        run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
            program(sim, masked);
        })
        .expect("collection");
        let result =
            analyze(&SessionDir::new(&dir), &AnalysisConfig::sequential()).expect("analysis");
        let _ = std::fs::remove_dir_all(&dir);
        println!("  sword:  {} race(s)", result.race_count());

        assert_eq!(result.race_count(), 2, "sword sees the race under every schedule");
        if masked {
            assert_eq!(archer_races, 0, "the HB edge hides the race from ARCHER");
        } else {
            assert!(archer_races >= 1);
        }
    }
    println!("\nFigure 1 reproduced: HB masking hides the race from ARCHER only.");
}
