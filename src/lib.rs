//! # sword-rs — bounded memory-overhead data race detection
//!
//! A Rust reproduction of *SWORD: A Bounded Memory-Overhead Detector of
//! OpenMP Data Races in Production Runs* (Atzeni et al., IPDPS 2018),
//! complete with the runtime substrate it needs and the ARCHER baseline
//! it is evaluated against. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use sword::ompsim::{OmpSim, SimConfig};
//! use sword::runtime::{run_collected, SwordConfig};
//! use sword::offline::{analyze, AnalysisConfig};
//! use sword::trace::SessionDir;
//!
//! let dir = std::env::temp_dir().join("sword-doc-quickstart");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // 1. Run an instrumented program under the SWORD collector.
//! run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
//!     let a = sim.alloc::<i64>(100, 0);
//!     sim.run(|ctx| {
//!         ctx.parallel(2, |w| {
//!             // a[i] = a[i-1]: a loop-carried dependence — a data race.
//!             w.for_static(1..100, |i| {
//!                 let prev = w.read(&a, i - 1);
//!                 w.write(&a, i, prev + 1);
//!             });
//!         });
//!     });
//! })
//! .unwrap();
//!
//! // 2. Analyze the collected session offline.
//! let result = analyze(&SessionDir::new(&dir), &AnalysisConfig::sequential()).unwrap();
//! assert_eq!(result.race_count(), 1);
//! # let _ = Arc::new(0); // keep the import exercised
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`osl`] | `sword-osl` | offset-span labels (§II) |
//! | [`itree`] | `sword-itree` | augmented red-black interval trees (§III-B) |
//! | [`solver`] | `sword-solver` | strided-overlap constraint solving (§III-B) |
//! | [`compress`] | `sword-compress` | LZ block compression for logs (§III-A) |
//! | [`trace`] | `sword-trace` | event encoding, log + meta-data files (§III-A) |
//! | [`ompsim`] | `sword-ompsim` | OpenMP-like runtime + OMPT-like tool interface |
//! | [`runtime`] | `sword-runtime` | the online collector (§III-A) |
//! | [`offline`] | `sword-offline` | the offline race analyzer (§III-B) |
//! | [`archer`] | `archer-sim` | the ARCHER/TSan happens-before baseline |
//! | [`workloads`] | `sword-workloads` | DRB / OmpSCR / HPC benchmark suites (§IV) |
//! | [`metrics`] | `sword-metrics` | memory gauges, node model, timing |
//! | [`obs`] | `sword-obs` | span journal, metrics registry, Chrome trace export, run reports |
//! | [`fuzz`] | `sword-fuzz-gen` | generative differential testing: program fuzzer, race oracle, fault injection |

#![forbid(unsafe_code)]

pub use archer_sim as archer;
pub use sword_compress as compress;
pub use sword_fuzz_gen as fuzz;
pub use sword_itree as itree;
pub use sword_metrics as metrics;
pub use sword_obs as obs;
pub use sword_offline as offline;
pub use sword_ompsim as ompsim;
pub use sword_osl as osl;
pub use sword_runtime as runtime;
pub use sword_solver as solver;
pub use sword_trace as trace;
pub use sword_workloads as workloads;
