#!/usr/bin/env python3
"""CI regression gate for the ratio-based bench artifacts.

Compares the gated ratio of each workload in a freshly generated bench
JSON against the committed baseline in bench-baselines/ and fails when
any workload regresses by more than the tolerance (default 15%). Two
artifacts share the gate, each contributing one higher-is-better ratio
per workload entry:

  BENCH_pipeline.json  `stage_throughput_speedup` — refactored
                       analysis-core stage throughput over the pre-core
                       shape on the same host and run.
  BENCH_obs.json       `exporter_throughput_ratio` — unscraped collection
                       wall time over the wall time with the telemetry
                       exporter being scraped throughout.

The gate deliberately compares *dimensionless* ratios rather than
absolute items/s or seconds, so it is portable across runner hardware
generations: a slower machine slows both modes alike.

Usage:
    scripts/check_bench_regression.py CURRENT BASELINE [--tolerance 0.15]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e}")


GATED_RATIOS = ("stage_throughput_speedup", "exporter_throughput_ratio")


def by_workload(doc, path):
    rows = {}
    for entry in doc.get("workloads", []):
        name = entry.get("workload")
        speedup = next(
            (entry[k] for k in GATED_RATIOS if k in entry), None
        )
        if name is None or not isinstance(speedup, (int, float)) or speedup <= 0:
            sys.exit(f"error: {path}: malformed workload entry {entry!r}")
        rows[name] = float(speedup)
    if not rows:
        sys.exit(f"error: {path} contains no workloads")
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly generated BENCH_pipeline.json")
    ap.add_argument("baseline", help="committed baseline BENCH_pipeline.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="maximum allowed fractional regression (default: 0.15)",
    )
    args = ap.parse_args()

    current = by_workload(load(args.current), args.current)
    baseline = by_workload(load(args.baseline), args.baseline)

    failures = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from {args.current}")
            continue
        delta = (cur - base) / base
        status = "ok"
        if cur < base * (1.0 - args.tolerance):
            status = "REGRESSION"
            failures.append(
                f"{name}: stage_throughput_speedup {cur:.3f} vs baseline "
                f"{base:.3f} ({delta:+.1%} > -{args.tolerance:.0%} allowed)"
            )
        print(
            f"{name:<16} speedup {cur:.3f}  baseline {base:.3f}  "
            f"delta {delta:+.1%}  {status}"
        )

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("\nbench regression gate passed "
          f"(tolerance {args.tolerance:.0%}, {len(baseline)} workloads)")


if __name__ == "__main__":
    main()
