//! A small exact branch-and-bound integer linear program solver.
//!
//! The paper solves its strided-overlap constraints with GNU GLPK. This
//! module is the stand-in: a dense two-phase simplex over exact rationals
//! for the LP relaxation, with branch-and-bound on fractional variables for
//! integrality. It is written for the *shape* of SWORD's systems — a
//! handful of variables with box bounds and one or two equalities — not for
//! industrial LPs; the production race-check path uses the specialized
//! Diophantine solve in [`crate::diophantine`], and this solver cross-checks
//! it (see the `ilp_agrees_with_diophantine` property test and the solver
//! ablation bench).

use crate::rational::Rational;

/// Relation of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

#[derive(Clone, Debug)]
struct Constraint {
    coeffs: Vec<i128>,
    rel: Relation,
    rhs: i128,
}

/// Outcome of an ILP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IlpStatus {
    /// An integer point satisfying all constraints and bounds exists.
    Feasible,
    /// No integer point exists.
    Infeasible,
    /// The branch-and-bound node budget was exhausted (never observed for
    /// SWORD-shaped systems; reported rather than guessed).
    NodeLimit,
}

/// An integer linear feasibility/optimization problem with box-bounded
/// variables.
#[derive(Clone, Debug)]
pub struct IlpProblem {
    num_vars: usize,
    bounds: Vec<(i128, i128)>,
    constraints: Vec<Constraint>,
    node_limit: usize,
}

impl IlpProblem {
    /// A feasibility problem over `num_vars` integer variables, initially
    /// bounded to `[0, 0]` each — call [`IlpProblem::set_bounds`].
    pub fn feasibility(num_vars: usize) -> Self {
        IlpProblem {
            num_vars,
            bounds: vec![(0, 0); num_vars],
            constraints: Vec::new(),
            node_limit: 10_000,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets inclusive bounds for variable `var`.
    pub fn set_bounds(&mut self, var: usize, lo: i128, hi: i128) {
        self.bounds[var] = (lo, hi);
    }

    /// Adds `coeffs · x REL rhs`. `coeffs.len()` must equal `num_vars`.
    pub fn add_constraint(&mut self, coeffs: Vec<i128>, rel: Relation, rhs: i128) {
        assert_eq!(coeffs.len(), self.num_vars, "constraint arity mismatch");
        self.constraints.push(Constraint { coeffs, rel, rhs });
    }

    /// Caps the number of branch-and-bound nodes explored.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Decides integer feasibility.
    pub fn solve(&self) -> IlpStatus {
        self.solve_witness().0
    }

    /// Decides integer feasibility and returns a witness point if feasible.
    pub fn solve_witness(&self) -> (IlpStatus, Option<Vec<i128>>) {
        // Quick reject: any empty box.
        if self.bounds.iter().any(|&(lo, hi)| lo > hi) {
            return (IlpStatus::Infeasible, None);
        }
        let mut nodes = 0usize;
        let mut stack = vec![self.bounds.clone()];
        while let Some(bounds) = stack.pop() {
            nodes += 1;
            if nodes > self.node_limit {
                return (IlpStatus::NodeLimit, None);
            }
            match self.lp_relaxation(&bounds) {
                None => continue, // LP infeasible: prune
                Some(point) => {
                    if let Some(frac_var) = point.iter().position(|v| !v.is_integer()) {
                        // Branch on the fractional variable.
                        let v = point[frac_var];
                        let (lo, hi) = bounds[frac_var];
                        let fl = v.floor();
                        let ce = v.ceil();
                        if fl >= lo {
                            let mut left = bounds.clone();
                            left[frac_var].1 = fl;
                            stack.push(left);
                        }
                        if ce <= hi {
                            let mut right = bounds.clone();
                            right[frac_var].0 = ce;
                            stack.push(right);
                        }
                    } else {
                        let witness: Vec<i128> = point.iter().map(|v| v.num()).collect();
                        debug_assert!(self.check_integer_point(&witness));
                        return (IlpStatus::Feasible, Some(witness));
                    }
                }
            }
        }
        (IlpStatus::Infeasible, None)
    }

    /// `true` when an integer point satisfies every bound and constraint.
    pub fn check_integer_point(&self, point: &[i128]) -> bool {
        if point.len() != self.num_vars {
            return false;
        }
        for (v, &(lo, hi)) in point.iter().zip(&self.bounds) {
            if *v < lo || *v > hi {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: i128 = c.coeffs.iter().zip(point).map(|(a, x)| a * x).sum();
            match c.rel {
                Relation::Le => lhs <= c.rhs,
                Relation::Ge => lhs >= c.rhs,
                Relation::Eq => lhs == c.rhs,
            }
        })
    }

    /// Solves the LP relaxation restricted to `bounds` via phase-1 simplex;
    /// returns any feasible (vertex) point or `None` when infeasible.
    fn lp_relaxation(&self, bounds: &[(i128, i128)]) -> Option<Vec<Rational>> {
        // Shift variables so x' = x - lo ≥ 0, then solve in standard form
        // with rows for every constraint and for every finite upper bound.
        let n = self.num_vars;
        let mut rows: Vec<(Vec<Rational>, Rational)> = Vec::new(); // a·x' ≤ b
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if lo > hi {
                return None;
            }
            let width = hi - lo;
            let mut coeffs = vec![Rational::ZERO; n];
            coeffs[i] = Rational::ONE;
            rows.push((coeffs, Rational::int(width)));
        }
        for c in &self.constraints {
            // Σ a_i (x'_i + lo_i) REL rhs  ⇒  Σ a_i x'_i REL rhs - Σ a_i lo_i
            let shift: i128 = c.coeffs.iter().zip(bounds).map(|(a, &(lo, _))| a * lo).sum();
            let rhs = Rational::int(c.rhs - shift);
            let coeffs: Vec<Rational> = c.coeffs.iter().map(|&a| Rational::int(a)).collect();
            match c.rel {
                Relation::Le => rows.push((coeffs, rhs)),
                Relation::Ge => {
                    rows.push((coeffs.iter().map(|&a| -a).collect(), -rhs));
                }
                Relation::Eq => {
                    rows.push((coeffs.clone(), rhs));
                    rows.push((coeffs.iter().map(|&a| -a).collect(), -rhs));
                }
            }
        }
        let sol = phase1_simplex(n, &rows)?;
        // Undo the shift.
        Some(sol.iter().zip(bounds).map(|(v, &(lo, _))| *v + Rational::int(lo)).collect())
    }
}

/// Phase-1 simplex: finds `x ≥ 0` with `A x ≤ b` (rows), or `None`.
///
/// Adds one artificial variable `z` with `A x − z·1 ≤ b`, `z ≥ 0` on the
/// rows with negative `b`, minimizes `z`; feasible iff min is 0. Dense
/// tableau with Bland's rule (no cycling).
fn phase1_simplex(n: usize, rows: &[(Vec<Rational>, Rational)]) -> Option<Vec<Rational>> {
    let m = rows.len();
    if m == 0 {
        return Some(vec![Rational::ZERO; n]);
    }
    // If b ≥ 0 everywhere, x = 0 is feasible.
    if rows.iter().all(|(_, b)| *b >= Rational::ZERO) {
        return Some(vec![Rational::ZERO; n]);
    }
    // Tableau columns: x(0..n), artificial z (n), slacks (n+1..n+1+m), rhs.
    let cols = n + 1 + m;
    let mut t: Vec<Vec<Rational>> = Vec::with_capacity(m + 1);
    for (i, (a, b)) in rows.iter().enumerate() {
        let mut row = vec![Rational::ZERO; cols + 1];
        row[..n].copy_from_slice(a);
        row[n] = -Rational::ONE; // artificial
        row[n + 1 + i] = Rational::ONE; // slack
        row[cols] = *b;
        t.push(row);
    }
    // Objective: minimize z ⇒ maximize -z. Objective row holds -(coeffs of
    // maximize), classic tableau: z_row = c for max problem negated.
    let mut obj = vec![Rational::ZERO; cols + 1];
    obj[n] = Rational::ONE; // minimize z: objective row coefficient
    t.push(obj);

    let mut basis: Vec<usize> = (0..m).map(|i| n + 1 + i).collect();

    // Initial pivot: bring z into the basis on the most negative rhs row to
    // restore feasibility.
    let pivot_row = (0..m).min_by(|&i, &j| t[i][cols].cmp(&t[j][cols])).expect("nonempty tableau");
    pivot(&mut t, pivot_row, n, &mut basis);

    // Simplex iterations (Bland's rule) minimizing z.
    loop {
        // Reduced costs live in the objective row after pivoting.
        let obj_row = m; // index of objective row
        let entering = (0..cols).find(|&j| t[obj_row][j] < Rational::ZERO);
        let Some(e) = entering else { break };
        // Ratio test.
        let mut best: Option<(usize, Rational)> = None;
        for i in 0..m {
            if t[i][e] > Rational::ZERO {
                let ratio = t[i][cols] / t[i][e];
                match &best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < *br || (ratio == *br && basis[i] < basis[*bi]) {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = best else {
            // Unbounded below ⇒ z can reach 0 ⇒ feasible; but minimizing z ≥
            // 0 can never be unbounded. Defensive: treat as infeasible.
            return None;
        };
        pivot(&mut t, r, e, &mut basis);
    }

    // Feasible iff objective value (min z) is 0. With the convention used,
    // the objective row rhs is -(current objective value) for maximize; we
    // minimized z directly, value = -t[m][cols]? Track via basis instead:
    let z_value =
        basis.iter().position(|&b| b == n).map(|row| t[row][cols]).unwrap_or(Rational::ZERO);
    if !z_value.is_zero() {
        return None;
    }
    // Read off x.
    let mut x = vec![Rational::ZERO; n];
    for (row, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = t[row][cols];
        }
    }
    Some(x)
}

fn pivot(t: &mut [Vec<Rational>], row: usize, col: usize, basis: &mut [usize]) {
    let cols = t[0].len();
    let inv = t[row][col].recip();
    for v in t[row].iter_mut() {
        *v = *v * inv;
    }
    let pivot_row = t[row].clone();
    for (i, r) in t.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let factor = r[col];
        if factor.is_zero() {
            continue;
        }
        for j in 0..cols {
            r[j] = r[j] - factor * pivot_row[j];
        }
    }
    if row < basis.len() {
        basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_feasible() {
        let mut p = IlpProblem::feasibility(2);
        p.set_bounds(0, 0, 10);
        p.set_bounds(1, 0, 10);
        p.add_constraint(vec![1, 1], Relation::Le, 5);
        assert_eq!(p.solve(), IlpStatus::Feasible);
    }

    #[test]
    fn trivial_infeasible() {
        let mut p = IlpProblem::feasibility(1);
        p.set_bounds(0, 0, 10);
        p.add_constraint(vec![1], Relation::Ge, 11);
        assert_eq!(p.solve(), IlpStatus::Infeasible);
    }

    #[test]
    fn equality_requires_integrality() {
        // 2x = 3 has rational solution 1.5 but no integer one.
        let mut p = IlpProblem::feasibility(1);
        p.set_bounds(0, 0, 10);
        p.add_constraint(vec![2], Relation::Eq, 3);
        assert_eq!(p.solve(), IlpStatus::Infeasible);
    }

    #[test]
    fn diophantine_style_equality() {
        // 3x - 5y = 1, x,y in [0,10] — feasible at (2,1).
        let mut p = IlpProblem::feasibility(2);
        p.set_bounds(0, 0, 10);
        p.set_bounds(1, 0, 10);
        p.add_constraint(vec![3, -5], Relation::Eq, 1);
        let (st, w) = p.solve_witness();
        assert_eq!(st, IlpStatus::Feasible);
        let w = w.unwrap();
        assert_eq!(3 * w[0] - 5 * w[1], 1);
    }

    #[test]
    fn paper_figure4_infeasible() {
        // T0: 8·x0 + 10 + s0 = a; T1: 8·x1 + 14 + s1 = a.
        // Combined: 8·x0 + s0 - 8·x1 - s1 = 4; s ∈ [0,4), x ∈ [0,4].
        let mut p = IlpProblem::feasibility(4);
        p.add_constraint(vec![8, 1, -8, -1], Relation::Eq, 4);
        p.set_bounds(0, 0, 4);
        p.set_bounds(1, 0, 3);
        p.set_bounds(2, 0, 4);
        p.set_bounds(3, 0, 3);
        // s0 - s1 = 4 - 8(x0 - x1): with |s0 - s1| ≤ 3, need 4 ≡ 0 mod 8
        // within reach — infeasible.
        assert_eq!(p.solve(), IlpStatus::Infeasible);
    }

    #[test]
    fn negative_bounds() {
        let mut p = IlpProblem::feasibility(2);
        p.set_bounds(0, -10, -1);
        p.set_bounds(1, -20, 0);
        p.add_constraint(vec![-7, 2], Relation::Eq, 5);
        let (st, w) = p.solve_witness();
        assert_eq!(st, IlpStatus::Feasible);
        let w = w.unwrap();
        assert_eq!(-7 * w[0] + 2 * w[1], 5);
        assert!((-10..=-1).contains(&w[0]));
    }

    #[test]
    fn empty_box_infeasible() {
        let mut p = IlpProblem::feasibility(1);
        p.set_bounds(0, 3, 2);
        assert_eq!(p.solve(), IlpStatus::Infeasible);
    }

    #[test]
    fn multiple_constraints() {
        // x + y ≥ 6, x - y ≤ 1, x,y ∈ [0,4]: e.g. (3,3) works.
        let mut p = IlpProblem::feasibility(2);
        p.set_bounds(0, 0, 4);
        p.set_bounds(1, 0, 4);
        p.add_constraint(vec![1, 1], Relation::Ge, 6);
        p.add_constraint(vec![1, -1], Relation::Le, 1);
        let (st, w) = p.solve_witness();
        assert_eq!(st, IlpStatus::Feasible);
        assert!(p.check_integer_point(&w.unwrap()));
    }

    #[test]
    fn witness_always_checks() {
        let mut p = IlpProblem::feasibility(3);
        for i in 0..3 {
            p.set_bounds(i, 0, 7);
        }
        p.add_constraint(vec![2, 3, 5], Relation::Eq, 23);
        let (st, w) = p.solve_witness();
        assert_eq!(st, IlpStatus::Feasible);
        assert!(p.check_integer_point(&w.unwrap()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn agrees_with_bruteforce_2var(
            a in -6i128..7, b in -6i128..7, c in -20i128..21,
            lo0 in -4i128..5, w0 in 0i128..6,
            lo1 in -4i128..5, w1 in 0i128..6,
        ) {
            let mut p = IlpProblem::feasibility(2);
            p.set_bounds(0, lo0, lo0 + w0);
            p.set_bounds(1, lo1, lo1 + w1);
            p.add_constraint(vec![a, b], Relation::Eq, c);
            let brute = (lo0..=lo0 + w0).any(|x| (lo1..=lo1 + w1).any(|y| a * x + b * y == c));
            let (st, w) = p.solve_witness();
            prop_assert_eq!(st == IlpStatus::Feasible, brute,
                "a={} b={} c={} x=[{},{}] y=[{},{}]", a, b, c, lo0, lo0+w0, lo1, lo1+w1);
            if let Some(w) = w {
                prop_assert!(p.check_integer_point(&w));
            }
        }

        #[test]
        fn agrees_with_bruteforce_inequalities(
            a in -5i128..6, b in -5i128..6, c in -15i128..16,
            d in -5i128..6, e in -5i128..6, f in -15i128..16,
            hi0 in 0i128..6, hi1 in 0i128..6,
        ) {
            let mut p = IlpProblem::feasibility(2);
            p.set_bounds(0, 0, hi0);
            p.set_bounds(1, 0, hi1);
            p.add_constraint(vec![a, b], Relation::Le, c);
            p.add_constraint(vec![d, e], Relation::Ge, f);
            let brute = (0..=hi0).any(|x| (0..=hi1).any(|y| a * x + b * y <= c && d * x + e * y >= f));
            let (st, w) = p.solve_witness();
            prop_assert_eq!(st == IlpStatus::Feasible, brute);
            if let Some(w) = w {
                prop_assert!(p.check_integer_point(&w));
            }
        }
    }
}
