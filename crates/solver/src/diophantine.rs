//! Bounded two-variable linear Diophantine equations.
//!
//! Solves `a·x + b·y = c` with box bounds `x ∈ [x_lo, x_hi]`,
//! `y ∈ [y_lo, y_hi]` exactly via the extended Euclidean algorithm: if
//! `g = gcd(a, b)` divides `c`, the solutions form the one-parameter family
//! `x = x₀ + t·(b/g)`, `y = y₀ − t·(a/g)`; intersecting the two box bounds
//! yields a `t`-range that is non-empty iff the system is satisfiable.

use crate::funnel::gcd_u64;
use crate::{div_ceil_i128, div_floor_i128, OverlapWitness, StridedInterval};

/// A solution to a bounded 2-variable linear Diophantine equation, plus the
/// parametrization of the full solution family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Linear2Solution {
    /// A witness solution inside the bounds.
    pub x: i128,
    /// A witness solution inside the bounds.
    pub y: i128,
    /// Inclusive range of the family parameter `t` keeping both in bounds.
    pub t_range: (i128, i128),
    /// Step of `x` per unit `t` (`b / gcd`).
    pub x_step: i128,
    /// Step of `y` per unit `t` (`-a / gcd`).
    pub y_step: i128,
}

impl Linear2Solution {
    /// Number of integer solutions inside the bounds.
    pub fn solution_count(&self) -> u128 {
        (self.t_range.1 - self.t_range.0 + 1) as u128
    }
}

/// Extended Euclidean algorithm: returns `(g, s, t)` with
/// `g = gcd(a, b) ≥ 0` and `a·s + b·t = g`.
pub fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else if a == 0 {
            (0, 0, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, s, t) = ext_gcd(b, a.rem_euclid(b));
        // a = q*b + r with r = a.rem_euclid(b), q = (a - r)/b
        let q = (a - a.rem_euclid(b)) / b;
        (g, t, s - q * t)
    }
}

/// Non-negative gcd of two integers.
pub fn gcd(a: i128, b: i128) -> i128 {
    ext_gcd(a, b).0
}

/// Solves `a·x + b·y = c`, `x_lo ≤ x ≤ x_hi`, `y_lo ≤ y ≤ y_hi` over the
/// integers. Returns a witness (and the whole solution family) or `None`
/// when unsatisfiable. Degenerate coefficients (`a == 0` and/or `b == 0`)
/// are handled exactly.
pub fn solve_linear2(
    a: i128,
    b: i128,
    c: i128,
    x_lo: i128,
    x_hi: i128,
    y_lo: i128,
    y_hi: i128,
) -> Option<Linear2Solution> {
    if x_lo > x_hi || y_lo > y_hi {
        return None;
    }
    match (a == 0, b == 0) {
        (true, true) => {
            // 0 = c: any point in the box works iff c == 0.
            (c == 0).then_some(Linear2Solution {
                x: x_lo,
                y: y_lo,
                t_range: (0, 0),
                x_step: 0,
                y_step: 0,
            })
        }
        (true, false) => {
            // b·y = c: y fixed if divisible and in bounds; x free.
            if c % b != 0 {
                return None;
            }
            let y = c / b;
            (y_lo <= y && y <= y_hi).then_some(Linear2Solution {
                x: x_lo,
                y,
                t_range: (0, x_hi - x_lo),
                x_step: 1,
                y_step: 0,
            })
        }
        (false, true) => {
            if c % a != 0 {
                return None;
            }
            let x = c / a;
            (x_lo <= x && x <= x_hi).then_some(Linear2Solution {
                x,
                y: y_lo,
                t_range: (0, y_hi - y_lo),
                x_step: 0,
                y_step: 1,
            })
        }
        (false, false) => {
            let (g, s, _t) = ext_gcd(a, b);
            if c % g != 0 {
                return None;
            }
            // Particular solution of a·x + b·y = c.
            let scale = c / g;
            let x0 = s * scale;
            // y0 derived from the equation to avoid overflowing t·scale.
            let y0 = (c - a * x0) / b;
            let x_step = b / g;
            let y_step = -a / g;
            // x = x0 + t·x_step ∈ [x_lo, x_hi]
            let (tx_lo, tx_hi) = param_range(x0, x_step, x_lo, x_hi)?;
            let (ty_lo, ty_hi) = param_range(y0, y_step, y_lo, y_hi)?;
            let t_lo = tx_lo.max(ty_lo);
            let t_hi = tx_hi.min(ty_hi);
            if t_lo > t_hi {
                return None;
            }
            Some(Linear2Solution {
                x: x0 + t_lo * x_step,
                y: y0 + t_lo * y_step,
                t_range: (t_lo, t_hi),
                x_step,
                y_step,
            })
        }
    }
}

/// The canonical minimal witness for a holey×holey overlap, constructed
/// directly from the extended-Euclid solution — no `locate` round-trip.
///
/// Scans byte-offset differences `d = s1 − s0` over the window
/// `[1−a.size, b.size−1]` in ascending order and solves one bounded
/// Diophantine equation per admissible `d`; the first solution yields the
/// witness `(addr, x0 = x, s0 = max(−d, 0), x1 = y, s1 = max(d, 0))`.
/// Because holey intervals have `size < stride`, these offsets are exactly
/// what `locate(addr)` would recover, so the result is byte-identical to
/// the reference `strided_overlap_witness_full` path.
///
/// With `step_gcd` the scan steps only over `d ≡ b.base − a.base (mod
/// gcd(Δ0, Δ1))` — every skipped `d` fails the solver's divisibility test,
/// so the first hit (and thus the witness) is unchanged; `step_gcd: false`
/// reproduces the naive unit-step scan for ablation measurement.
pub fn holey_witness(
    a: &StridedInterval,
    b: &StridedInterval,
    step_gcd: bool,
) -> Option<OverlapWitness> {
    debug_assert!(!a.is_dense() && !b.is_dense(), "dense pairs are decided by earlier tiers");
    let d_lo = -(a.size as i128) + 1;
    let d_hi = b.size as i128 - 1;
    let rhs_base = b.base as i128 - a.base as i128;
    let (mut d, step) = if step_gcd {
        // Smallest d ≥ d_lo with (rhs_base + d) ≡ 0 (mod g).
        let g = gcd_u64(a.stride, b.stride) as i128;
        (d_lo + (-(rhs_base + d_lo)).rem_euclid(g), g)
    } else {
        (d_lo, 1)
    };
    while d <= d_hi {
        if let Some(sol) = solve_linear2(
            a.stride as i128,
            -(b.stride as i128),
            rhs_base + d,
            0,
            a.count as i128,
            0,
            b.count as i128,
        ) {
            let s0 = (-d).max(0) as u64;
            let s1 = d.max(0) as u64;
            let x0 = sol.x as u64;
            let x1 = sol.y as u64;
            let addr = a.base + a.stride * x0 + s0;
            debug_assert_eq!(addr, b.base + b.stride * x1 + s1);
            debug_assert_eq!(a.locate(addr), Some((x0, s0)));
            debug_assert_eq!(b.locate(addr), Some((x1, s1)));
            return Some(OverlapWitness { addr, x0, s0, x1, s1 });
        }
        d += step;
    }
    None
}

/// Range of `t` with `lo ≤ v0 + t·step ≤ hi`. `step` may be negative but
/// not zero. Returns `None` for an empty range.
fn param_range(v0: i128, step: i128, lo: i128, hi: i128) -> Option<(i128, i128)> {
    debug_assert!(step != 0);
    // lo ≤ v0 + t·step ≤ hi; dividing by a negative step flips the bounds.
    let (t_lo, t_hi) = if step > 0 {
        (div_ceil_i128(lo - v0, step), div_floor_i128(hi - v0, step))
    } else {
        (div_ceil_i128(v0 - hi, -step), div_floor_i128(v0 - lo, -step))
    };
    (t_lo <= t_hi).then_some((t_lo, t_hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_gcd_identity() {
        for (a, b) in [(12, 18), (-12, 18), (12, -18), (0, 5), (5, 0), (7, 13), (-7, -13)] {
            let (g, s, t) = ext_gcd(a, b);
            assert_eq!(a * s + b * t, g, "bezout for ({a},{b})");
            assert!(g >= 0);
            if a != 0 || b != 0 {
                assert_eq!(g, num_gcd(a.unsigned_abs(), b.unsigned_abs()) as i128);
            }
        }
    }

    fn num_gcd(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            let r = a % b;
            a = b;
            b = r;
        }
        a
    }

    #[test]
    fn simple_solvable() {
        // 3x - 5y = 1, x,y in [0,10]: x=2,y=1 works.
        let sol = solve_linear2(3, -5, 1, 0, 10, 0, 10).expect("solvable");
        assert_eq!(3 * sol.x - 5 * sol.y, 1);
        assert!((0..=10).contains(&sol.x) && (0..=10).contains(&sol.y));
    }

    #[test]
    fn gcd_indivisible_is_unsat() {
        // 4x + 6y = 3: gcd 2 does not divide 3.
        assert!(solve_linear2(4, 6, 3, -100, 100, -100, 100).is_none());
    }

    #[test]
    fn bounds_exclude_solutions() {
        // 3x - 5y = 1 needs x≡2 (mod 5); x in [0,1] has none.
        assert!(solve_linear2(3, -5, 1, 0, 1, 0, 100).is_none());
    }

    #[test]
    fn degenerate_both_zero() {
        assert!(solve_linear2(0, 0, 0, 0, 5, 0, 5).is_some());
        assert!(solve_linear2(0, 0, 1, 0, 5, 0, 5).is_none());
    }

    #[test]
    fn degenerate_one_zero() {
        let s = solve_linear2(0, 4, 8, 0, 3, 0, 10).expect("y=2");
        assert_eq!(s.y, 2);
        assert!(solve_linear2(0, 4, 9, 0, 3, 0, 10).is_none());
        assert!(solve_linear2(0, 4, 8, 0, 3, 0, 1).is_none(), "y=2 out of [0,1]");
        let s = solve_linear2(5, 0, -10, -5, 5, 0, 0).expect("x=-2");
        assert_eq!(s.x, -2);
    }

    #[test]
    fn empty_boxes() {
        assert!(solve_linear2(1, 1, 0, 5, 0, 0, 5).is_none());
    }

    #[test]
    fn family_enumeration_is_exact() {
        // 2x + 3y = 12, 0<=x<=6, 0<=y<=4: solutions (0,4),(3,2),(6,0).
        let s = solve_linear2(2, 3, 12, 0, 6, 0, 4).unwrap();
        assert_eq!(s.solution_count(), 3);
        let mut pts = vec![];
        for t in s.t_range.0..=s.t_range.1 {
            let x = s.x + (t - s.t_range.0) * s.x_step;
            let y = s.y + (t - s.t_range.0) * s.y_step;
            assert_eq!(2 * x + 3 * y, 12);
            pts.push((x, y));
        }
        pts.sort();
        assert_eq!(pts, vec![(0, 4), (3, 2), (6, 0)]);
    }

    #[test]
    fn negative_coefficients_and_bounds() {
        // -7x + 2y = 5 with x in [-10,-1], y in [-20, 0]:
        // x=-1 → 2y=-2 → y=-1 ✓
        let s = solve_linear2(-7, 2, 5, -10, -1, -20, 0).unwrap();
        assert_eq!(-7 * s.x + 2 * s.y, 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_bruteforce(
            a in -12i128..13, b in -12i128..13, c in -40i128..41,
            x_lo in -8i128..9, x_w in 0i128..12,
            y_lo in -8i128..9, y_w in 0i128..12,
        ) {
            let x_hi = x_lo + x_w;
            let y_hi = y_lo + y_w;
            let brute = (x_lo..=x_hi).flat_map(|x| (y_lo..=y_hi).map(move |y| (x, y)))
                .find(|&(x, y)| a * x + b * y == c);
            let got = solve_linear2(a, b, c, x_lo, x_hi, y_lo, y_hi);
            prop_assert_eq!(got.is_some(), brute.is_some(),
                "a={} b={} c={} x=[{},{}] y=[{},{}] got={:?}",
                a, b, c, x_lo, x_hi, y_lo, y_hi, got);
            if let Some(s) = got {
                prop_assert_eq!(a * s.x + b * s.y, c);
                prop_assert!(x_lo <= s.x && s.x <= x_hi);
                prop_assert!(y_lo <= s.y && s.y <= y_hi);
            }
        }

        #[test]
        fn witness_family_valid(
            a in -20i128..21, b in -20i128..21, c in -100i128..101,
        ) {
            if let Some(s) = solve_linear2(a, b, c, -50, 50, -50, 50) {
                // every t in range yields a valid in-bounds solution
                let t0 = s.t_range.0;
                for t in s.t_range.0..=s.t_range.1.min(s.t_range.0 + 20) {
                    let x = s.x + (t - t0) * s.x_step;
                    let y = s.y + (t - t0) * s.y_step;
                    prop_assert_eq!(a * x + b * y, c);
                    prop_assert!((-50..=50).contains(&x));
                    prop_assert!((-50..=50).contains(&y));
                }
            }
        }
    }
}
