//! The layered screening funnel for strided-interval overlap decisions.
//!
//! Most candidate pairs the analyzer produces are decidable by closed-form
//! algebra; the bounded Diophantine search (and, under `--ilp`, the
//! branch-and-bound ILP) should only ever see the residue of genuinely hard
//! pairs. This module layers the decision path into *tiers*, cheapest first:
//!
//! 1. **RangeDisjoint** — the coarse `[begin, end)` ranges do not intersect.
//! 2. **DenseDense** — both intervals are dense, so range overlap is exact
//!    and the witness is the first byte of the ranges' intersection.
//! 3. **DenseLocate** — one side is dense: a single division locates the
//!    first strided access landing inside the dense range.
//! 4. **GcdReject** — both sides have holes: the overlap congruence
//!    `s1 − s0 ≡ base0 − base1 (mod gcd(Δ0, Δ1))` has no solution with
//!    `s0 < sz0`, `s1 < sz1`, so no byte can be shared (the classic
//!    GCD/Banerjee-style dependence screen).
//! 5. **Diophantine** — the bounded two-variable extended-Euclid search
//!    ([`diophantine::holey_witness`][crate::diophantine::holey_witness]),
//!    stepping only over congruence-admissible byte-offset differences.
//! 6. **Ilp** — under [`solve_tiered_ilp`], the residue that survives tiers
//!    1–4 goes to the paper's branch-and-bound formulation instead of 5.
//!
//! **Witness-canonicalization invariant:** every tier reproduces the exact
//! `OverlapWitness` the reference path
//! ([`strided_overlap_witness`][crate::strided_overlap_witness] followed by
//! `locate`) produces — same verdict, same bytes. Screens may only *reject*
//! pairs the reference also rejects; tiers that accept must construct the
//! identical minimal witness. This keeps race evidence byte-identical
//! whichever tiers are enabled (proptested in this crate, and end-to-end by
//! `live_equivalence.rs` and the fuzz driver).

use crate::diophantine::holey_witness;
use crate::{dense_vs_strided, OverlapWitness, StridedInterval};

/// Which layer of the screening funnel decided a pair. `Prescreen` is
/// recorded by the analyzer's walk-level fingerprint screen (same algebra as
/// `GcdReject`, applied before the verdict cache is consulted); the solver
/// itself never returns it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Rejected during the candidate walk by the stride-class fingerprint
    /// screen, before reaching the solver.
    Prescreen,
    /// Coarse `[begin, end)` ranges disjoint.
    RangeDisjoint,
    /// Both dense: range intersection is the witness.
    DenseDense,
    /// One dense: `locate` of the first strided access in the dense range.
    DenseLocate,
    /// Both holey, overlap congruence unsatisfiable mod `gcd(Δ0, Δ1)`.
    GcdReject,
    /// Bounded extended-Euclid Diophantine search decided the residue.
    Diophantine,
    /// Branch-and-bound ILP decided the residue (only under `--ilp`).
    Ilp,
}

impl Tier {
    /// All tiers, in funnel order.
    pub const ALL: [Tier; 7] = [
        Tier::Prescreen,
        Tier::RangeDisjoint,
        Tier::DenseDense,
        Tier::DenseLocate,
        Tier::GcdReject,
        Tier::Diophantine,
        Tier::Ilp,
    ];

    /// Stable label used in metrics (`sword_solver_tier{tier=…}`) and bench
    /// tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Prescreen => "prescreen",
            Tier::RangeDisjoint => "range_disjoint",
            Tier::DenseDense => "dense_dense",
            Tier::DenseLocate => "dense_locate",
            Tier::GcdReject => "gcd_reject",
            Tier::Diophantine => "diophantine",
            Tier::Ilp => "ilp",
        }
    }

    /// Dense index into a per-tier counter array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Stride-class fingerprint of an interval, cached on interval-tree nodes so
/// the candidate walk can run the congruence screen without re-dividing.
/// `phase` is `base % stride` for holey intervals (0 for dense, unused).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// `base % stride` when `holey`, else 0.
    pub phase: u64,
    /// `true` when the interval has holes (`count > 0 && stride > size`).
    pub holey: bool,
}

impl Fingerprint {
    /// Computes the fingerprint of an interval (one division for holey
    /// intervals, none for dense).
    #[inline]
    pub fn of(iv: &StridedInterval) -> Fingerprint {
        if iv.is_dense() {
            Fingerprint { phase: 0, holey: false }
        } else {
            Fingerprint { phase: iv.base % iv.stride, holey: true }
        }
    }

    /// Sentinel marking a holey phase too large for the packed form.
    const PACK_OVERFLOW: u32 = u32::MAX;

    /// Packs the fingerprint into 32 bits so tree nodes can cache it inside
    /// existing struct padding instead of growing (a 16-byte field per node
    /// measurably slows the candidate walk on big trees). `holey` is not
    /// stored — it is derivable from the interval — and phases are tiny in
    /// practice (`phase < stride`, and collector strides are page-bounded).
    #[inline]
    pub fn pack(&self) -> u32 {
        if !self.holey || self.phase >= u64::from(Self::PACK_OVERFLOW) {
            if self.holey {
                Self::PACK_OVERFLOW
            } else {
                0
            }
        } else {
            self.phase as u32
        }
    }

    /// Reverses [`Fingerprint::pack`] given the interval the packed value
    /// was computed from. Divides only in the overflow case.
    #[inline]
    pub fn unpack(packed: u32, iv: &StridedInterval) -> Fingerprint {
        if iv.is_dense() {
            Fingerprint { phase: 0, holey: false }
        } else if packed < Self::PACK_OVERFLOW {
            Fingerprint { phase: u64::from(packed), holey: true }
        } else {
            Fingerprint::of(iv)
        }
    }
}

#[inline]
pub(crate) fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// The GCD congruence screen: `true` when the pair *may* share a byte,
/// `false` when the overlap congruence proves it cannot. Only holey×holey
/// pairs can be rejected — any pair with a dense side passes (the dense
/// tiers decide those exactly, and a dense side always makes the congruence
/// satisfiable since `gcd ≤ stride ≤ size` there).
///
/// Derivation: a shared byte needs `a.base + Δ0·x0 + s0 = b.base + Δ1·x1 +
/// s1`. Mod `g = gcd(Δ0, Δ1)` this forces `d = s1 − s0 ≡ a.base − b.base ≡ m
/// (mod g)` with `d ∈ [1−sz0, sz1−1]`; such a `d` exists iff `m ≤ sz1−1` or
/// `g − m ≤ sz0−1`. Rejection is exact: the Diophantine search would scan
/// the same window and find every `d` indivisible.
#[inline]
pub fn congruence_admissible(
    a: &StridedInterval,
    fa: Fingerprint,
    b: &StridedInterval,
    fb: Fingerprint,
) -> bool {
    if !fa.holey || !fb.holey {
        return true;
    }
    let g = gcd_u64(a.stride, b.stride);
    debug_assert!(g > 0, "holey intervals have non-zero stride");
    // m = (a.base − b.base) mod g, computed from the cached phases: g
    // divides each stride, so base ≡ phase (mod g).
    let m = (fa.phase % g + g - fb.phase % g) % g;
    m < b.size || g - m < a.size
}

/// Screens a pair through tiers 1–4. `Ok` carries the decided verdict and
/// tier; `Err(())` means the pair is residue for the backend (both holey,
/// congruence admissible or screen disabled).
#[inline]
fn screen(
    a: &StridedInterval,
    b: &StridedInterval,
    gcd_screen: bool,
) -> Result<(Option<OverlapWitness>, Tier), ()> {
    if !a.range_overlaps(b) {
        return Ok((None, Tier::RangeDisjoint));
    }
    let a_dense = a.is_dense();
    let b_dense = b.is_dense();
    if a_dense && b_dense {
        let addr = a.begin().max(b.begin());
        return Ok((Some(locate_witness(a, b, addr)), Tier::DenseDense));
    }
    if a_dense || b_dense {
        let addr = if a_dense { dense_vs_strided(a, b) } else { dense_vs_strided(b, a) };
        return Ok((addr.map(|addr| locate_witness(a, b, addr)), Tier::DenseLocate));
    }
    if gcd_screen && !congruence_admissible(a, Fingerprint::of(a), b, Fingerprint::of(b)) {
        return Ok((None, Tier::GcdReject));
    }
    Err(())
}

/// Resolves a witness address into both intervals' index spaces — the same
/// canonicalization the reference `strided_overlap_witness_full` applies.
#[inline]
fn locate_witness(a: &StridedInterval, b: &StridedInterval, addr: u64) -> OverlapWitness {
    let (x0, s0) = a.locate(addr).expect("witness address is a member of a");
    let (x1, s1) = b.locate(addr).expect("witness address is a member of b");
    OverlapWitness { addr, x0, s0, x1, s1 }
}

/// The production decision path: screens through tiers 1–4, then the
/// bounded Diophantine search on the residue. Returns the canonical witness
/// (byte-identical to the reference path) and the tier that decided.
///
/// `gcd_screen: false` disables tier 4 *and* the gcd stepping inside the
/// search (for ablation measurement); the verdict and witness are identical
/// either way.
pub fn solve_tiered(
    a: &StridedInterval,
    b: &StridedInterval,
    gcd_screen: bool,
) -> (Option<OverlapWitness>, Tier) {
    match screen(a, b, gcd_screen) {
        Ok(decided) => decided,
        Err(()) => (holey_witness(a, b, gcd_screen), Tier::Diophantine),
    }
}

/// The `--ilp` decision path: identical screens, but the residue goes to
/// the paper's branch-and-bound formulation. A feasible ILP verdict is
/// re-derived into the canonical witness by the Diophantine constructor so
/// evidence stays byte-identical with [`solve_tiered`].
pub fn solve_tiered_ilp(
    a: &StridedInterval,
    b: &StridedInterval,
    gcd_screen: bool,
) -> (Option<OverlapWitness>, Tier) {
    match screen(a, b, gcd_screen) {
        Ok(decided) => decided,
        Err(()) => {
            let witness = match crate::overlap_ilp(a, b).solve() {
                crate::IlpStatus::Feasible => {
                    let w = holey_witness(a, b, true);
                    debug_assert!(w.is_some(), "ILP feasible but no Diophantine witness");
                    w
                }
                _ => None,
            };
            (witness, Tier::Ilp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{strided_overlap_witness, strided_overlap_witness_full};

    fn reference_full(a: &StridedInterval, b: &StridedInterval) -> Option<OverlapWitness> {
        let addr = strided_overlap_witness(a, b)?;
        let (x0, s0) = a.locate(addr).unwrap();
        let (x1, s1) = b.locate(addr).unwrap();
        Some(OverlapWitness { addr, x0, s0, x1, s1 })
    }

    #[test]
    fn tiers_decide_the_expected_pairs() {
        let cases = [
            // Disjoint ranges.
            (StridedInterval::single(0, 4), StridedInterval::single(100, 4), Tier::RangeDisjoint),
            // Two dense ranges.
            (
                StridedInterval::new(0, 1, 39, 1),
                StridedInterval::new(20, 4, 9, 4),
                Tier::DenseDense,
            ),
            // Dense vs strided-with-holes.
            (
                StridedInterval::new(0, 1, 39, 1),
                StridedInterval::new(36, 64, 3, 4),
                Tier::DenseLocate,
            ),
            // Figure 4: same stride, phase-disjoint — congruence reject.
            (StridedInterval::new(10, 8, 4, 4), StridedInterval::new(14, 8, 4, 4), Tier::GcdReject),
            // Same stride, phases meet — residue for the search.
            (
                StridedInterval::new(10, 8, 4, 4),
                StridedInterval::new(13, 8, 4, 4),
                Tier::Diophantine,
            ),
        ];
        for (a, b, want) in cases {
            let (w, tier) = solve_tiered(&a, &b, true);
            assert_eq!(tier, want, "a={a:?} b={b:?}");
            assert_eq!(w, reference_full(&a, &b), "witness identity a={a:?} b={b:?}");
        }
    }

    #[test]
    fn gcd_screen_off_reaches_the_search_with_identical_results() {
        let a = StridedInterval::new(10, 8, 4, 4);
        let b = StridedInterval::new(14, 8, 4, 4);
        let (w, tier) = solve_tiered(&a, &b, false);
        assert_eq!(tier, Tier::Diophantine);
        assert_eq!(w, None);
        assert_eq!(solve_tiered(&a, &b, true).0, w);
    }

    #[test]
    fn ilp_path_matches_on_all_tiers() {
        let cases = [
            (StridedInterval::new(10, 8, 4, 4), StridedInterval::new(14, 8, 4, 4)),
            (StridedInterval::new(10, 8, 4, 4), StridedInterval::new(13, 8, 4, 4)),
            (StridedInterval::new(0, 3, 10, 1), StridedInterval::new(1, 5, 10, 1)),
            (StridedInterval::new(0, 1, 39, 1), StridedInterval::new(36, 64, 3, 4)),
        ];
        for (a, b) in cases {
            let dio = solve_tiered(&a, &b, true).0;
            let ilp = solve_tiered_ilp(&a, &b, true).0;
            assert_eq!(dio, ilp, "a={a:?} b={b:?}");
            assert_eq!(dio, strided_overlap_witness_full(&a, &b));
        }
    }

    #[test]
    fn fingerprint_identifies_holey_intervals() {
        assert!(!Fingerprint::of(&StridedInterval::single(10, 4)).holey);
        assert!(!Fingerprint::of(&StridedInterval::new(0, 4, 9, 4)).holey);
        let f = Fingerprint::of(&StridedInterval::new(13, 8, 4, 4));
        assert!(f.holey);
        assert_eq!(f.phase, 5);
    }

    #[test]
    fn congruence_screen_is_symmetric() {
        let cases = [
            (StridedInterval::new(10, 8, 4, 4), StridedInterval::new(14, 8, 4, 4)),
            (StridedInterval::new(10, 8, 4, 4), StridedInterval::new(13, 8, 4, 4)),
            (StridedInterval::new(0, 16, 50, 8), StridedInterval::new(8, 16, 50, 8)),
            (StridedInterval::new(0, 12, 9, 2), StridedInterval::new(7, 18, 9, 3)),
        ];
        for (a, b) in cases {
            let (fa, fb) = (Fingerprint::of(&a), Fingerprint::of(&b));
            assert_eq!(
                congruence_admissible(&a, fa, &b, fb),
                congruence_admissible(&b, fb, &a, fa),
                "a={a:?} b={b:?}"
            );
        }
    }
}
