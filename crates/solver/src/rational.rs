//! Exact rational arithmetic on `i128`, used by the branch-and-bound ILP's
//! simplex relaxation so that feasibility answers are never corrupted by
//! floating-point round-off.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A normalized rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den`, normalizing sign and common factors.
    /// Panics on a zero denominator.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let (mut num, mut den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd_u(num.unsigned_abs(), den.unsigned_abs()) as i128;
        if g > 1 {
            num /= g;
            den /= g;
        }
        Rational { num, den }
    }

    /// An integer as a rational.
    #[inline]
    pub fn int(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    /// Numerator (sign-carrying).
    #[inline]
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[inline]
    pub fn den(&self) -> i128 {
        self.den
    }

    /// `true` iff the value is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// `true` iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0, or 1.
    #[inline]
    pub fn signum(&self) -> i128 {
        self.num.signum()
    }

    /// Largest integer ≤ self.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer ≥ self.
    pub fn ceil(&self) -> i128 {
        -((-*self).floor())
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rational {
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den }
    }

    /// Lossy conversion for reporting.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd_u(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Reduce cross-terms first to delay overflow.
        let g = gcd_u(self.den.unsigned_abs(), rhs.den.unsigned_abs()) as i128;
        let lhs_den = self.den / g;
        let rhs_den = rhs.den / g;
        Rational::new(self.num * rhs_den + rhs.num * lhs_den, lhs_den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-cancel before multiplying.
        let g1 = gcd_u(self.num.unsigned_abs(), rhs.den.unsigned_abs()) as i128;
        let g2 = gcd_u(rhs.num.unsigned_abs(), self.den.unsigned_abs()) as i128;
        Rational::new((self.num / g1) * (rhs.num / g2), (self.den / g2) * (rhs.den / g1))
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // a/b ? c/d  ⇔  a·d ? c·b  (b, d > 0)
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational::int(v)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rational::ZERO);
        assert_eq!(r(0, -7).den(), 1);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
        assert_eq!(r(3, 9), r(1, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(6, 2).floor(), 3);
        assert_eq!(r(6, 2).ceil(), 3);
        assert_eq!(Rational::ZERO.floor(), 0);
    }

    #[test]
    fn is_integer() {
        assert!(r(4, 2).is_integer());
        assert!(!r(5, 2).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_den_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
        assert_eq!(r(-2, 3).abs(), r(2, 3));
    }
}
