//! Integer constraint solving for SWORD's strided-interval overlap checks.
//!
//! The offline analyzer summarizes consecutive memory accesses into strided
//! intervals. Two intervals whose `[begin, end]` ranges overlap need not
//! share an address (Fig. 4 of the paper: interleaved 4-byte accesses with
//! stride 8), so SWORD checks satisfiability of the constraint system from
//! §III-B:
//!
//! ```text
//! Δ0·x0 + b0 + s0 = Δ1·x1 + b1 + s1
//! 0 ≤ x0 ≤ n0        0 ≤ s0 < sz0
//! 0 ≤ x1 ≤ n1        0 ≤ s1 < sz1
//! ```
//!
//! The paper feeds this to GNU GLPK. That system is a two-variable linear
//! Diophantine equation per byte-offset difference, so this crate provides
//! an exact, allocation-free number-theoretic solve ([`strided_overlap`]) as
//! the production path, plus a small exact-rational branch-and-bound ILP
//! ([`ilp`]) that accepts the paper's formulation verbatim and is used as a
//! cross-check and in the solver ablation bench.
//!
//! # Example — the paper's Figure 4
//!
//! ```
//! use sword_solver::{strided_overlap, strided_overlap_witness, StridedInterval};
//!
//! // T0: 4-byte accesses at 10, 18, 26, 34, 42; T1: at 14, 22, 30, 38, 46.
//! let t0 = StridedInterval::new(10, 8, 4, 4);
//! let t1 = StridedInterval::new(14, 8, 4, 4);
//!
//! // Their [begin, end) ranges overlap…
//! assert!(t0.range_overlaps(&t1));
//! // …but no byte is shared: the interleaved strides never meet.
//! assert!(!strided_overlap(&t0, &t1));
//!
//! // Shift T1 one byte left and the constraint becomes satisfiable,
//! // with a concrete witness address for the race report.
//! let t1_shifted = StridedInterval::new(13, 8, 4, 4);
//! let witness = strided_overlap_witness(&t0, &t1_shifted).unwrap();
//! assert!(t0.contains(witness) && t1_shifted.contains(witness));
//! ```

#![forbid(unsafe_code)]

pub mod diophantine;
pub mod funnel;
pub mod ilp;
pub mod rational;

pub use diophantine::{holey_witness, solve_linear2, Linear2Solution};
pub use funnel::{congruence_admissible, solve_tiered, solve_tiered_ilp, Fingerprint, Tier};
pub use ilp::{IlpProblem, IlpStatus, Relation};

/// A strided access interval: addresses `{ base + stride*k + j : 0 <= k <=
/// count, 0 <= j < size }`.
///
/// `count` is the number of *additional* elements beyond the first (matching
/// the paper's `(e - b) / Δ` upper bound for `x`), so an interval with
/// `count == 0` is a single access of `size` bytes. `stride == 0` is
/// normalized to a single access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StridedInterval {
    /// First byte address of the first access.
    pub base: u64,
    /// Distance in bytes between consecutive access starts.
    pub stride: u64,
    /// Number of accesses after the first (`x` ranges over `0..=count`).
    pub count: u64,
    /// Size in bytes of each access (1, 2, 4, 8 for scalar loads/stores).
    pub size: u64,
}

impl StridedInterval {
    /// Creates an interval; `size` must be non-zero. A zero `stride` with
    /// non-zero `count` collapses to a single access, since every repeat
    /// touches the same bytes.
    pub fn new(base: u64, stride: u64, count: u64, size: u64) -> Self {
        assert!(size > 0, "access size must be non-zero");
        let (stride, count) = if stride == 0 { (0, 0) } else { (stride, count) };
        StridedInterval { base, stride, count, size }
    }

    /// A single access of `size` bytes at `base`.
    pub fn single(base: u64, size: u64) -> Self {
        Self::new(base, 0, 0, size)
    }

    /// First byte covered.
    #[inline]
    pub fn begin(&self) -> u64 {
        self.base
    }

    /// One past the last byte covered.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.stride * self.count + self.size
    }

    /// Number of distinct accesses in the interval.
    #[inline]
    pub fn len(&self) -> u64 {
        self.count + 1
    }

    /// Always false; an interval covers at least one access.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` when the interval is *dense*: consecutive accesses touch
    /// adjacent or overlapping bytes, so the byte range has no holes.
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.count == 0 || self.stride <= self.size
    }

    /// `true` when `addr` is one of the bytes touched by this interval.
    pub fn contains(&self, addr: u64) -> bool {
        if addr < self.base || addr >= self.end() {
            return false;
        }
        if self.is_dense() {
            return true;
        }
        let off = addr - self.base;
        off % self.stride < self.size && off / self.stride <= self.count
    }

    /// Coarse `[begin, end)` range overlap — the necessary condition the
    /// interval tree uses to find *candidate* racing pairs before the exact
    /// check.
    #[inline]
    pub fn range_overlaps(&self, other: &StridedInterval) -> bool {
        self.begin() < other.end() && other.begin() < self.end()
    }

    /// Solves `addr = base + stride*x + s` for a contained address,
    /// returning the access index `x` (`0 <= x <= count`) and the byte
    /// offset `s` within that access (`0 <= s < size`). A dense interval
    /// may cover `addr` through several accesses; the smallest covering
    /// index is returned. `None` when `addr` is not covered.
    pub fn locate(&self, addr: u64) -> Option<(u64, u64)> {
        if !self.contains(addr) {
            return None;
        }
        let off = addr - self.base;
        if self.stride == 0 {
            return Some((0, off));
        }
        let x = (off / self.stride).min(self.count);
        Some((x, off - x * self.stride))
    }
}

/// The solver's concrete model of one satisfiable overlap constraint
/// (§III-B): the shared byte address plus the per-interval access index
/// and byte offset reaching it, i.e.
/// `addr = a.base + a.stride*x0 + s0 = b.base + b.stride*x1 + s1`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct OverlapWitness {
    /// The shared byte address.
    pub addr: u64,
    /// Access index into the first interval (`0 <= x0 <= a.count`).
    pub x0: u64,
    /// Byte offset within that access (`0 <= s0 < a.size`).
    pub s0: u64,
    /// Access index into the second interval.
    pub x1: u64,
    /// Byte offset within that access.
    pub s1: u64,
}

/// Exact check: do two strided intervals share at least one byte address?
///
/// This decides satisfiability of the paper's §III-B constraint system. It
/// first applies the cheap `[begin, end)` range test, then dense/dense fast
/// paths, and finally solves one bounded linear Diophantine equation per
/// byte-offset difference `d = s1 - s0 ∈ (-sz0, sz1)` — at most
/// `sz0 + sz1 - 1 ≤ 15` solves for scalar accesses.
pub fn strided_overlap(a: &StridedInterval, b: &StridedInterval) -> bool {
    solve_tiered(a, b, true).0.is_some()
}

/// Like [`strided_overlap`], but returns a concrete shared byte address —
/// the witness SWORD's race reports print alongside the two source lines.
///
/// This is the *reference implementation* that defines the canonical
/// witness: ascending unit-step scan over byte-offset differences, first
/// satisfiable equation wins. The production path
/// ([`strided_overlap_witness_full`] → [`funnel::solve_tiered`]) is
/// proptested to reproduce it byte-for-byte through every tier.
pub fn strided_overlap_witness(a: &StridedInterval, b: &StridedInterval) -> Option<u64> {
    if !a.range_overlaps(b) {
        return None;
    }
    // Dense intervals cover their whole range: range overlap is exact, and
    // the witness is the first byte of the ranges' intersection.
    if a.is_dense() && b.is_dense() {
        return Some(a.begin().max(b.begin()));
    }
    // One dense, one strided: find a strided access landing in the dense
    // range.
    if a.is_dense() {
        return dense_vs_strided(a, b);
    }
    if b.is_dense() {
        return dense_vs_strided(b, a);
    }

    // Both strided with holes: Δ0·x0 + b0 + s0 = Δ1·x1 + b1 + s1
    // ⇔ Δ0·x0 − Δ1·x1 = (b1 − b0) + d with d = s1 − s0.
    let d_lo = -(a.size as i128) + 1;
    let d_hi = b.size as i128 - 1;
    let rhs_base = b.base as i128 - a.base as i128;
    for d in d_lo..=d_hi {
        if let Some(sol) = solve_linear2(
            a.stride as i128,
            -(b.stride as i128),
            rhs_base + d,
            0,
            a.count as i128,
            0,
            b.count as i128,
        ) {
            // Recover byte offsets: s1 - s0 = d with both in range.
            let s0 = (-d).max(0);
            let addr = a.base as i128 + a.stride as i128 * sol.x + s0;
            return Some(addr as u64);
        }
    }
    None
}

/// Like [`strided_overlap_witness`], but resolves the witness address
/// back into both intervals' index spaces, producing the full variable
/// assignment `(x0, s0, x1, s1)` of the §III-B constraint system — what a
/// race report needs to show *which* loop iterations collide, not just
/// which byte. Dispatches through the screening funnel
/// ([`funnel::solve_tiered`]); the result is byte-identical to locating
/// the reference witness.
pub fn strided_overlap_witness_full(
    a: &StridedInterval,
    b: &StridedInterval,
) -> Option<OverlapWitness> {
    solve_tiered(a, b, true).0
}

/// `dense` covers a contiguous byte range; finds a byte of `strided`
/// inside it, if any.
pub(crate) fn dense_vs_strided(dense: &StridedInterval, strided: &StridedInterval) -> Option<u64> {
    debug_assert!(dense.is_dense() && !strided.is_dense());
    let lo = dense.begin();
    let hi = dense.end(); // exclusive
                          // Access k of `strided` covers [base + k*stride, base + k*stride + size).
                          // It intersects [lo, hi) iff base + k*stride < hi  and  base + k*stride
                          // + size > lo. Solve for k.
    let stride = strided.stride as i128;
    let base = strided.base as i128;
    let size = strided.size as i128;
    // k > (lo - size - base)/stride  and  k < (hi - base)/stride
    let k_min = div_ceil_i128(lo as i128 - size - base + 1, stride);
    let k_max = div_floor_i128(hi as i128 - base - 1, stride);
    let k_lo = k_min.max(0);
    let k_hi = k_max.min(strided.count as i128);
    if k_lo > k_hi {
        return None;
    }
    let access_start = base + k_lo * stride;
    Some(access_start.max(lo as i128) as u64)
}

pub(crate) fn div_floor_i128(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a < 0 {
        q - 1
    } else {
        q
    }
}

pub(crate) fn div_ceil_i128(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a > 0 {
        q + 1
    } else {
        q
    }
}

/// Builds the paper's §III-B ILP feasibility problem for two intervals, for
/// use with [`ilp::IlpProblem`]. Variables are `x0, s0, x1, s1` in that
/// order. Used by tests and the ablation bench to cross-check
/// [`strided_overlap`] against a general solver, mirroring the paper's GLPK
/// formulation.
pub fn overlap_ilp(a: &StridedInterval, b: &StridedInterval) -> IlpProblem {
    let mut p = IlpProblem::feasibility(4);
    // Δ0·x0 + s0 − Δ1·x1 − s1 = b1 − b0
    p.add_constraint(
        vec![a.stride as i128, 1, -(b.stride as i128), -1],
        Relation::Eq,
        b.base as i128 - a.base as i128,
    );
    p.set_bounds(0, 0, a.count as i128);
    p.set_bounds(1, 0, a.size as i128 - 1);
    p.set_bounds(2, 0, b.count as i128);
    p.set_bounds(3, 0, b.size as i128 - 1);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure4_disjoint_interleaved() {
        // T0: 8·x + 10 + s, x ∈ [0,4], s ∈ [0,4) — accesses at 10,18,26,34,42
        // T1: 8·x + 14 + s — accesses at 14,22,30,38,46. Ranges overlap but
        // no byte is shared.
        let t0 = StridedInterval::new(10, 8, 4, 4);
        let t1 = StridedInterval::new(14, 8, 4, 4);
        assert!(t0.range_overlaps(&t1), "coarse ranges do overlap");
        assert!(!strided_overlap(&t0, &t1), "no address in common");
    }

    #[test]
    fn shifted_by_one_byte_overlaps() {
        let t0 = StridedInterval::new(10, 8, 4, 4);
        let t1 = StridedInterval::new(13, 8, 4, 4); // 13..17 meets 10..14
        assert!(strided_overlap(&t0, &t1));
    }

    #[test]
    fn identical_intervals_overlap() {
        let t = StridedInterval::new(100, 16, 10, 8);
        assert!(strided_overlap(&t, &t.clone()));
    }

    #[test]
    fn single_accesses() {
        let a = StridedInterval::single(100, 4);
        let b = StridedInterval::single(103, 4);
        let c = StridedInterval::single(104, 4);
        assert!(strided_overlap(&a, &b));
        assert!(!strided_overlap(&a, &c));
        assert!(strided_overlap(&b, &c));
    }

    #[test]
    fn dense_vs_strided_cases() {
        // Dense [0, 40); strided hits 100,.. misses; strided at 36 hits.
        let dense = StridedInterval::new(0, 1, 39, 1);
        assert!(dense.is_dense());
        let far = StridedInterval::new(100, 8, 4, 4);
        assert!(!strided_overlap(&dense, &far));
        let touching = StridedInterval::new(36, 64, 3, 4);
        assert!(strided_overlap(&dense, &touching));
        // Strided whose first access starts below but reaches into range.
        let reach = StridedInterval::new(38, 64, 0, 4);
        assert!(strided_overlap(&dense, &reach));
    }

    #[test]
    fn strided_reaching_below_dense_from_left() {
        // Access covering [28,36) against dense [30,40): overlaps.
        let dense = StridedInterval::new(30, 1, 9, 1);
        let s = StridedInterval::new(4, 24, 1, 8); // accesses [4,12), [28,36)
        assert!(strided_overlap(&dense, &s));
        let s2 = StridedInterval::new(4, 18, 1, 8); // [4,12), [22,30): just misses
        assert!(!strided_overlap(&dense, &s2));
    }

    #[test]
    fn different_strides_coprime() {
        // stride 3 from 0 (sz 1), stride 5 from 1 (sz 1): 3x = 5y + 1 →
        // x=2,y=1 gives 6=6. Counts must reach it.
        let a = StridedInterval::new(0, 3, 10, 1);
        let b = StridedInterval::new(1, 5, 10, 1);
        assert!(strided_overlap(&a, &b));
        // Tight counts that cannot reach the first meeting point (6):
        let a2 = StridedInterval::new(0, 3, 1, 1); // {0,3}
        let b2 = StridedInterval::new(1, 5, 1, 1); // {1,6}
        assert!(!strided_overlap(&a2, &b2));
    }

    #[test]
    fn same_stride_different_phase() {
        // Both stride 8 size 4; phases 0 and 4: bytes 0..4, 8..12 vs 4..8,
        // 12..16 — never meet.
        let a = StridedInterval::new(0, 8, 100, 4);
        let b = StridedInterval::new(4, 8, 100, 4);
        assert!(!strided_overlap(&a, &b));
        // Phase 3: access [3,7) meets [0,4) at byte 3.
        let c = StridedInterval::new(3, 8, 100, 4);
        assert!(strided_overlap(&a, &c));
    }

    #[test]
    fn contains_matches_definition() {
        let t = StridedInterval::new(10, 8, 4, 4);
        let member: Vec<u64> = (10..47).filter(|&a| t.contains(a)).collect();
        let expect: Vec<u64> =
            (0..=4u64).flat_map(|k| (0..4u64).map(move |j| 10 + 8 * k + j)).collect();
        assert_eq!(member, expect);
        assert!(!t.contains(9));
        assert!(!t.contains(46));
    }

    #[test]
    fn zero_stride_normalizes() {
        let t = StridedInterval::new(10, 0, 99, 4);
        assert_eq!(t.count, 0);
        assert_eq!(t.end(), 14);
    }

    #[test]
    fn overlap_is_symmetric_on_examples() {
        let cases = [
            (StridedInterval::new(10, 8, 4, 4), StridedInterval::new(14, 8, 4, 4)),
            (StridedInterval::new(0, 3, 10, 1), StridedInterval::new(1, 5, 10, 1)),
            (StridedInterval::new(0, 1, 39, 1), StridedInterval::new(36, 64, 3, 4)),
        ];
        for (a, b) in cases {
            assert_eq!(strided_overlap(&a, &b), strided_overlap(&b, &a));
        }
    }

    #[test]
    fn witness_is_member_of_both() {
        let cases = [
            (StridedInterval::new(10, 8, 4, 4), StridedInterval::new(13, 8, 4, 4)),
            (StridedInterval::new(0, 3, 10, 1), StridedInterval::new(1, 5, 10, 1)),
            (StridedInterval::new(0, 1, 39, 1), StridedInterval::new(36, 64, 3, 4)),
            (StridedInterval::new(100, 16, 10, 8), StridedInterval::new(100, 16, 10, 8)),
            (StridedInterval::new(30, 1, 9, 1), StridedInterval::new(4, 24, 1, 8)),
        ];
        for (a, b) in cases {
            let w = strided_overlap_witness(&a, &b).expect("overlaps");
            assert!(a.contains(w), "witness {w} not in a={a:?}");
            assert!(b.contains(w), "witness {w} not in b={b:?}");
        }
    }

    #[test]
    fn locate_solves_the_access_equation() {
        let t = StridedInterval::new(10, 8, 4, 4);
        assert_eq!(t.locate(10), Some((0, 0)));
        assert_eq!(t.locate(13), Some((0, 3)));
        assert_eq!(t.locate(26), Some((2, 0)));
        assert_eq!(t.locate(45), Some((4, 3)));
        assert_eq!(t.locate(14), None, "hole between accesses");
        assert_eq!(t.locate(9), None);
        // Dense with stride < size: the smallest covering index wins.
        let d = StridedInterval::new(0, 2, 3, 4);
        assert_eq!(d.locate(3), Some((1, 1)));
        // Single access.
        let s = StridedInterval::single(100, 8);
        assert_eq!(s.locate(105), Some((0, 5)));
    }

    #[test]
    fn full_witness_assigns_all_four_variables() {
        let a = StridedInterval::new(10, 8, 4, 4);
        let b = StridedInterval::new(13, 8, 4, 4);
        let w = strided_overlap_witness_full(&a, &b).expect("overlaps");
        assert_eq!(w.addr, a.base + a.stride * w.x0 + w.s0);
        assert_eq!(w.addr, b.base + b.stride * w.x1 + w.s1);
        assert!(w.x0 <= a.count && w.s0 < a.size);
        assert!(w.x1 <= b.count && w.s1 < b.size);
        // Disjoint interleavings yield no witness at all.
        let c = StridedInterval::new(14, 8, 4, 4);
        assert!(strided_overlap_witness_full(&a, &c).is_none());
    }

    #[test]
    fn div_helpers() {
        assert_eq!(div_floor_i128(7, 2), 3);
        assert_eq!(div_floor_i128(-7, 2), -4);
        assert_eq!(div_ceil_i128(7, 2), 4);
        assert_eq!(div_ceil_i128(-7, 2), -3);
        assert_eq!(div_floor_i128(8, 2), 4);
        assert_eq!(div_ceil_i128(-8, 2), -4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_interval() -> impl Strategy<Value = StridedInterval> {
        (0u64..2000, 0u64..40, 0u64..30, 1u64..9)
            .prop_map(|(b, st, c, sz)| StridedInterval::new(b, st, c, sz))
    }

    /// Brute-force membership oracle.
    fn bytes_of(t: &StridedInterval) -> std::collections::BTreeSet<u64> {
        let mut s = std::collections::BTreeSet::new();
        for k in 0..=t.count {
            for j in 0..t.size {
                s.insert(t.base + t.stride * k + j);
            }
        }
        s
    }

    proptest! {
        #[test]
        fn overlap_matches_bruteforce(a in arb_interval(), b in arb_interval()) {
            let expect = !bytes_of(&a).is_disjoint(&bytes_of(&b));
            prop_assert_eq!(strided_overlap(&a, &b), expect, "a={:?} b={:?}", a, b);
            if let Some(w) = strided_overlap_witness(&a, &b) {
                prop_assert!(a.contains(w) && b.contains(w), "witness {} a={:?} b={:?}", w, a, b);
            }
        }

        #[test]
        fn overlap_symmetric(a in arb_interval(), b in arb_interval()) {
            prop_assert_eq!(strided_overlap(&a, &b), strided_overlap(&b, &a));
        }

        #[test]
        fn contains_matches_bruteforce(a in arb_interval(), addr in 0u64..2500) {
            prop_assert_eq!(a.contains(addr), bytes_of(&a).contains(&addr));
        }

        #[test]
        fn self_overlap(a in arb_interval()) {
            prop_assert!(strided_overlap(&a, &a.clone()));
        }

        #[test]
        fn locate_roundtrips_every_member(a in arb_interval()) {
            for k in 0..=a.count {
                for j in 0..a.size {
                    let addr = a.base + a.stride * k + j;
                    let (x, s) = a.locate(addr).expect("member address");
                    prop_assert_eq!(a.base + a.stride * x + s, addr);
                    prop_assert!(x <= a.count && s < a.size);
                }
            }
        }

        #[test]
        fn full_witness_satisfies_constraints(a in arb_interval(), b in arb_interval()) {
            if let Some(w) = strided_overlap_witness_full(&a, &b) {
                prop_assert_eq!(w.addr, a.base + a.stride * w.x0 + w.s0);
                prop_assert_eq!(w.addr, b.base + b.stride * w.x1 + w.s1);
                prop_assert!(w.x0 <= a.count && w.s0 < a.size);
                prop_assert!(w.x1 <= b.count && w.s1 < b.size);
            } else {
                prop_assert!(!strided_overlap(&a, &b));
            }
        }

        #[test]
        fn ilp_agrees_with_diophantine(a in arb_interval(), b in arb_interval()) {
            let fast = strided_overlap(&a, &b);
            let general = overlap_ilp(&a, &b).solve() == IlpStatus::Feasible;
            prop_assert_eq!(fast, general, "a={:?} b={:?}", a, b);
        }

        /// The reference witness: legacy unit-step scan + locate. Every
        /// funnel configuration must reproduce it byte-for-byte.
        #[test]
        fn every_tier_matches_oracle_and_reference_witness(
            a in arb_interval(), b in arb_interval()
        ) {
            let oracle = !bytes_of(&a).is_disjoint(&bytes_of(&b));
            let reference = strided_overlap_witness(&a, &b).map(|addr| {
                let (x0, s0) = a.locate(addr).unwrap();
                let (x1, s1) = b.locate(addr).unwrap();
                OverlapWitness { addr, x0, s0, x1, s1 }
            });
            prop_assert_eq!(reference.is_some(), oracle, "reference vs oracle a={:?} b={:?}", a, b);
            for gcd_screen in [true, false] {
                let (dio, dio_tier) = solve_tiered(&a, &b, gcd_screen);
                prop_assert_eq!(dio, reference,
                    "solve_tiered(gcd={}) tier={:?} a={:?} b={:?}", gcd_screen, dio_tier, a, b);
                let (ilp, ilp_tier) = solve_tiered_ilp(&a, &b, gcd_screen);
                prop_assert_eq!(ilp, reference,
                    "solve_tiered_ilp(gcd={}) tier={:?} a={:?} b={:?}", gcd_screen, ilp_tier, a, b);
            }
        }

        /// The walk-level fingerprint screen may only reject pairs the
        /// oracle also rejects (it is a pure pre-filter).
        #[test]
        fn congruence_screen_never_rejects_an_overlap(
            a in arb_interval(), b in arb_interval()
        ) {
            let admissible = congruence_admissible(
                &a, Fingerprint::of(&a), &b, Fingerprint::of(&b));
            if !admissible {
                prop_assert!(bytes_of(&a).is_disjoint(&bytes_of(&b)),
                    "screen rejected an overlapping pair a={:?} b={:?}", a, b);
            }
        }

        /// The direct Diophantine constructor equals the reference on the
        /// holey×holey residue, gcd stepping on or off.
        #[test]
        fn holey_witness_is_canonical(a in arb_interval(), b in arb_interval()) {
            if !a.is_dense() && !b.is_dense() && a.range_overlaps(&b) {
                let reference = strided_overlap_witness(&a, &b).map(|addr| {
                    let (x0, s0) = a.locate(addr).unwrap();
                    let (x1, s1) = b.locate(addr).unwrap();
                    OverlapWitness { addr, x0, s0, x1, s1 }
                });
                prop_assert_eq!(holey_witness(&a, &b, true), reference, "gcd step a={:?} b={:?}", a, b);
                prop_assert_eq!(holey_witness(&a, &b, false), reference, "unit step a={:?} b={:?}", a, b);
            }
        }
    }
}
