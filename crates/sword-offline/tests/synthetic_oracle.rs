//! Oracle-based property testing of the offline analyzer.
//!
//! Random single-region sessions are synthesized directly at the trace
//! layer (logs + meta-data, bypassing the runtime), where ground truth is
//! computable by brute force: two accesses race iff they are in the same
//! barrier interval on different threads, byte-overlap, include a write,
//! are not both atomic, and hold no common lock. The analyzer — grouping,
//! streaming chunked decode, summarization trees, mutex-set tracking, and
//! the constraint solver — must report *exactly* the oracle's
//! source-pair set, for every generated session and chunk size.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;

use proptest::prelude::*;
use sword_offline::{analyze, AnalysisConfig, SolverChoice};
use sword_trace::{
    meta, AccessKind, Event, EventEncoder, LogWriter, MemAccess, MetaRecord, MutexId, RegionRecord,
    SessionDir,
};

/// One generated access, pre-lock-resolution.
#[derive(Clone, Debug)]
struct GenAccess {
    addr: u64,
    size: u8,
    kind: AccessKind,
    pc: u32,
    /// Lock held while accessing (one of two locks, or none).
    lock: Option<MutexId>,
}

fn arb_access() -> impl Strategy<Value = GenAccess> {
    (
        0u64..160,
        prop::sample::select(vec![1u8, 2, 4, 8]),
        0u8..4,
        0u32..6,
        prop::option::weighted(0.25, 0u32..2),
    )
        .prop_map(|(addr, size, kind, pc, lock)| GenAccess {
            addr,
            size,
            kind: AccessKind::from_code(kind).unwrap(),
            pc,
            lock,
        })
}

/// Per-(thread, interval) access streams: threads × intervals × accesses.
fn arb_session() -> impl Strategy<Value = Vec<Vec<Vec<GenAccess>>>> {
    let interval = prop::collection::vec(arb_access(), 0..12);
    let thread = prop::collection::vec(interval, 2..4); // intervals per thread (same count across threads)
    prop::collection::vec(thread, 2..4).prop_filter("equal interval counts", |threads| {
        threads.windows(2).all(|p| p[0].len() == p[1].len())
    })
}

fn ranges_overlap(a: &GenAccess, b: &GenAccess) -> bool {
    a.addr < b.addr + b.size as u64 && b.addr < a.addr + a.size as u64
}

/// Brute-force ground truth: racy unordered source pairs.
fn oracle(threads: &[Vec<Vec<GenAccess>>]) -> BTreeSet<(u32, u32)> {
    let mut races = BTreeSet::new();
    let intervals = threads[0].len();
    for bid in 0..intervals {
        for t1 in 0..threads.len() {
            for t2 in t1 + 1..threads.len() {
                for a in &threads[t1][bid] {
                    for b in &threads[t2][bid] {
                        if !ranges_overlap(a, b) {
                            continue;
                        }
                        if !a.kind.is_write() && !b.kind.is_write() {
                            continue;
                        }
                        if a.kind.is_atomic() && b.kind.is_atomic() {
                            continue;
                        }
                        if a.lock.is_some() && a.lock == b.lock {
                            continue;
                        }
                        races.insert((a.pc.min(b.pc), a.pc.max(b.pc)));
                    }
                }
            }
        }
    }
    races
}

/// Writes the generated session to disk in the real formats.
fn write_session(dir: &PathBuf, threads: &[Vec<Vec<GenAccess>>]) -> SessionDir {
    let _ = std::fs::remove_dir_all(dir);
    let session = SessionDir::new(dir);
    session.create().unwrap();
    let span = threads.len() as u64;
    for (tid, intervals) in threads.iter().enumerate() {
        let mut log =
            LogWriter::new(BufWriter::new(File::create(session.thread_log(tid as u32)).unwrap()));
        let mut rows = Vec::new();
        let mut encoder = EventEncoder::new();
        for (bid, accesses) in intervals.iter().enumerate() {
            encoder.reset();
            let begin = log.offset();
            let mut block = Vec::new();
            let mut held: Option<MutexId> = None;
            for a in accesses {
                // Emit minimal lock transitions around each access.
                if a.lock != held {
                    if let Some(m) = held {
                        encoder.encode(&Event::MutexRelease(m), &mut block);
                    }
                    if let Some(m) = a.lock {
                        encoder.encode(&Event::MutexAcquire(m), &mut block);
                    }
                    held = a.lock;
                }
                encoder.encode(
                    &Event::Access(MemAccess::new(a.addr, a.size, a.kind, a.pc)),
                    &mut block,
                );
            }
            if let Some(m) = held {
                encoder.encode(&Event::MutexRelease(m), &mut block);
            }
            log.write_block(&block).unwrap();
            rows.push(MetaRecord {
                pid: 0,
                ppid: None,
                bid: bid as u32,
                offset: tid as u64 + bid as u64 * span,
                span,
                level: 1,
                data_begin: begin,
                size: log.offset() - begin,
            });
        }
        log.flush().unwrap();
        drop(log);
        let mut f = BufWriter::new(File::create(session.thread_meta(tid as u32)).unwrap());
        meta::write_meta(&mut f, &rows).unwrap();
        f.flush().unwrap();
    }
    let mut f = BufWriter::new(File::create(session.regions_path()).unwrap());
    meta::write_regions(
        &mut f,
        &[RegionRecord {
            pid: 0,
            ppid: None,
            level: 1,
            span,
            fork_label: vec![0, 1],
            deps: vec![],
        }],
    )
    .unwrap();
    f.flush().unwrap();
    session
}

fn analyzer_pairs(session: &SessionDir, config: &AnalysisConfig) -> BTreeSet<(u32, u32)> {
    let result = analyze(session, config).expect("analysis");
    result.races.iter().map(|r| (r.key.pc_lo, r.key.pc_hi)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn analyzer_matches_bruteforce_oracle(threads in arb_session(), case in 0u32..1000) {
        let dir = std::env::temp_dir().join(format!(
            "sword-oracle-{}-{case}",
            std::process::id()
        ));
        let session = write_session(&dir, &threads);
        let expect = oracle(&threads);

        // Default config.
        let got = analyzer_pairs(&session, &AnalysisConfig::sequential());
        prop_assert_eq!(&got, &expect, "mismatch for {:?}", threads);

        // Tiny chunks must not change verdicts (streaming-boundary
        // robustness).
        let got_chunked =
            analyzer_pairs(&session, &AnalysisConfig::sequential().with_chunk_bytes(3));
        prop_assert_eq!(&got_chunked, &expect);

        // The ILP solver must agree with the Diophantine one.
        let got_ilp = analyzer_pairs(
            &session,
            &AnalysisConfig::sequential().with_solver(SolverChoice::Ilp),
        );
        prop_assert_eq!(&got_ilp, &expect);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
