//! End-to-end pipeline tests: instrumented programs run under the SWORD
//! collector, then the offline analyzer must find exactly the planted
//! races — and nothing else.

use std::path::PathBuf;
use std::sync::Arc;

use sword_offline::{analyze, AnalysisConfig, AnalysisResult, SolverChoice};
use sword_ompsim::{DepMode, OmpSim, Sequencer, SimConfig};
use sword_runtime::{run_collected, SwordConfig};
use sword_trace::SessionDir;

fn session_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sword-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `program` collected, analyzes, cleans up, returns the result.
fn pipeline(tag: &str, program: impl FnOnce(&OmpSim)) -> AnalysisResult {
    pipeline_with(tag, AnalysisConfig::sequential(), program)
}

fn pipeline_with(
    tag: &str,
    config: AnalysisConfig,
    program: impl FnOnce(&OmpSim),
) -> AnalysisResult {
    let dir = session_dir(tag);
    run_collected(SwordConfig::new(&dir), SimConfig::default(), program).expect("collection");
    let result = analyze(&SessionDir::new(&dir), &config).expect("analysis");
    std::fs::remove_dir_all(&dir).unwrap();
    result
}

#[test]
fn race_free_loop_is_clean() {
    let result = pipeline("clean", |sim| {
        let a = sim.alloc::<f64>(512, 1.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static(0..512, |i| {
                    let v = w.read(&a, i);
                    w.write(&a, i, v * 2.0);
                });
            });
        });
    });
    assert_eq!(result.race_count(), 0, "{:?}", result.races);
    assert!(result.stats.events > 0);
}

#[test]
fn paper_loop_carried_dependency_races() {
    // §III-B example: a[i] = a[i-1] with 2 threads — one read-write race
    // at the chunk boundary.
    let result = pipeline("loopdep", |sim| {
        let a = sim.alloc::<i64>(1000, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.for_static(1..1000, |i| {
                    let v = w.read(&a, i - 1);
                    w.write(&a, i, v);
                });
            });
        });
    });
    assert_eq!(result.race_count(), 1, "{:?}", result.races);
    let race = &result.races[0];
    assert_ne!(race.key.pc_lo, race.key.pc_hi, "read line vs write line");
}

#[test]
fn shared_counter_unprotected_races() {
    let result = pipeline("counter", |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                for _ in 0..32 {
                    let v = w.read(&c, 0);
                    w.write(&c, 0, v + 1);
                }
            });
        });
    });
    // read-write, write-write, and read/write-vs-same-line pairs collapse
    // to: (read,write) + (write,write) + (read,read is not a race) = 2.
    assert_eq!(result.race_count(), 2, "{:?}", result.races);
}

#[test]
fn critical_section_protects() {
    let result = pipeline("critical", |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                for _ in 0..32 {
                    w.critical("sum", || {
                        let v = w.read(&c, 0);
                        w.write(&c, 0, v + 1);
                    });
                }
            });
        });
    });
    assert_eq!(result.race_count(), 0, "{:?}", result.races);
}

#[test]
fn distinct_locks_do_not_protect() {
    // Classic bug: two threads protect the same variable with different
    // locks.
    let result = pipeline("two-locks", |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                let name = if w.team_index() == 0 { "lock_a" } else { "lock_b" };
                for _ in 0..16 {
                    w.critical(name, || {
                        let v = w.read(&c, 0);
                        w.write(&c, 0, v + 1);
                    });
                }
            });
        });
    });
    assert!(result.race_count() >= 1, "{:?}", result.races);
}

#[test]
fn atomics_do_not_race() {
    let result = pipeline("atomics", |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                for _ in 0..64 {
                    w.fetch_add(&c, 0, 1);
                }
            });
        });
    });
    assert_eq!(result.race_count(), 0, "{:?}", result.races);
}

#[test]
fn atomic_vs_plain_races() {
    let result = pipeline("atomic-plain", |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    for _ in 0..16 {
                        w.fetch_add(&c, 0, 1);
                    }
                } else {
                    for _ in 0..16 {
                        let v = w.read(&c, 0);
                        w.write(&c, 0, v + 1);
                    }
                }
            });
        });
    });
    // atomic-write vs plain-read and atomic-write vs plain-write (plus
    // plain read/write internal pair is same-thread → not reported).
    assert!(result.race_count() >= 2, "{:?}", result.races);
}

#[test]
fn barrier_separates_phases() {
    // Phase 1 writes a[i] by thread owner; phase 2 reads a[i+1] — without
    // the barrier this races, with it it does not.
    let racy = pipeline("phases-racy", |sim| {
        let a = sim.alloc::<f64>(256, 0.0);
        let b = sim.alloc::<f64>(256, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_nowait(0..256, |i| {
                    w.write(&a, i, i as f64);
                });
                w.for_static_nowait(0..255, |i| {
                    let v = w.read(&a, i + 1);
                    w.write(&b, i, v);
                });
                w.barrier();
            });
        });
    });
    assert!(racy.race_count() >= 1, "nowait version must race: {:?}", racy.races);

    let clean = pipeline("phases-clean", |sim| {
        let a = sim.alloc::<f64>(256, 0.0);
        let b = sim.alloc::<f64>(256, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static(0..256, |i| {
                    w.write(&a, i, i as f64);
                });
                w.for_static(0..255, |i| {
                    let v = w.read(&a, i + 1);
                    w.write(&b, i, v);
                });
            });
        });
    });
    assert_eq!(clean.race_count(), 0, "{:?}", clean.races);
}

#[test]
fn disjoint_strided_accesses_do_not_race() {
    // Figure 4: even/odd element split — ranges overlap, addresses don't.
    let result = pipeline("strided", |sim| {
        let a = sim.alloc::<f64>(1024, 0.0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                let start = w.team_index(); // 0 or 1
                let mut i = start;
                while i < 1024 {
                    w.write(&a, i, i as f64);
                    i += 2;
                }
                w.barrier();
            });
        });
    });
    assert_eq!(result.race_count(), 0, "{:?}", result.races);
    assert!(result.stats.candidate_pairs > 0, "ranges must have collided coarsely");
    assert!(
        result.stats.solver_calls + result.stats.prescreened_pairs > 0,
        "the exact path must have decided"
    );
    assert!(
        result.stats.prescreened_pairs > 0,
        "even/odd strides occupy disjoint residues, so the fingerprint prescreen retires them"
    );
}

#[test]
fn nested_regions_race_across_teams() {
    // Figure 2's R2/R3: two inner regions under different outer threads
    // write the same location.
    let result = pipeline("nested", |sim| {
        let y = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.parallel(2, |inner| {
                    inner.write(&y, 0, inner.team_index());
                });
            });
        });
    });
    assert!(result.race_count() >= 1, "{:?}", result.races);
    assert!(result.stats.region_pairs_considered >= 1);
}

#[test]
fn nested_region_does_not_race_with_forker() {
    // A worker forks an inner team that writes x; after the join the
    // worker itself writes x. Fork/join orders these — no race, even
    // though they are in different regions.
    let result = pipeline("nested-seq", |sim| {
        let x = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(1, |w| {
                w.parallel(2, |inner| {
                    inner.master(|| {
                        inner.write(&x, 0, 1);
                    });
                });
                w.write(&x, 0, 2);
            });
        });
    });
    assert_eq!(result.race_count(), 0, "{:?}", result.races);
}

#[test]
fn hb_masked_schedule_is_still_caught() {
    // Figure 1(b): thread 0 writes `a` *before* taking the lock; thread 1
    // reads/writes `a` under the lock afterwards. The schedule creates a
    // happens-before path (lock release → acquire) that masks the race
    // from HB detectors; SWORD's offline analysis is schedule-insensitive
    // and must still flag it.
    let result = pipeline("hb-mask", |sim| {
        let a = sim.alloc::<u64>(1, 0);
        let seq = Arc::new(Sequencer::new());
        sim.run(|ctx| {
            let seq = &seq;
            ctx.parallel(2, |w| {
                if w.team_index() == 0 {
                    seq.turn(0, || {
                        w.write(&a, 0, 1); // unprotected write
                    });
                    seq.turn(1, || {
                        w.critical("l", || {}); // release lock after write
                    });
                } else {
                    seq.wait_for(2);
                    w.critical("l", || {
                        let v = w.read(&a, 0);
                        w.write(&a, 0, v + 1);
                    });
                }
            });
        });
    });
    // write(a) vs read(a) and write(a) vs write(a): 2 distinct line pairs.
    assert_eq!(result.race_count(), 2, "{:?}", result.races);
}

#[test]
fn target_region_races_are_caught() {
    // The paper's future-work extension: a synchronous offload region.
    // Races *inside* the device team are caught; host work after the
    // offload is join-ordered against it.
    let result = pipeline("target", |sim| {
        let d = sim.alloc::<f64>(64, 0.0);
        let acc = sim.alloc::<f64>(1, 0.0);
        sim.run(|ctx| {
            ctx.parallel(2, |host| {
                host.single_nowait(|| {
                    host.target(4, |dev| {
                        // Device threads race on the accumulator.
                        dev.for_static(0..64, |i| {
                            let v = dev.read(&d, i);
                            dev.write(&d, i, v + 1.0);
                        });
                        let v = dev.read(&acc, 0);
                        dev.write(&acc, 0, v + 1.0);
                    });
                    // Host touches the same data after the offload joined:
                    // ordered, no race with the device team.
                    let _ = host.read(&acc, 0);
                });
                host.barrier();
            });
        });
    });
    // (R acc, W acc) and (W acc, W acc) inside the device team only.
    assert_eq!(result.race_count(), 2, "{:?}", result.races);
}

#[test]
fn racy_sibling_tasks_race() {
    // Two independent sibling tasks write the same cell: their labels
    // diverge at the task-fork pair and no depend edge orders them.
    let result = pipeline("task-sibling", |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task(|t| {
                        t.write(&a, 0, 1);
                    });
                    w.task(|t| {
                        t.write(&a, 0, 2);
                    });
                    w.taskwait();
                });
                w.barrier();
            });
        });
    });
    assert!(result.race_count() >= 1, "{:?}", result.races);
}

#[test]
fn depend_chain_orders_tasks() {
    // out → in → inout on the same variable: the dependence graph is a
    // chain, so the bodies never race even though their labels diverge.
    let result = pipeline("task-depchain", |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task_depend(&[(0, DepMode::Out)], |t| {
                        t.write(&a, 0, 1);
                    });
                    w.task_depend(&[(0, DepMode::In)], |t| {
                        let _ = t.read(&a, 0);
                    });
                    w.task_depend(&[(0, DepMode::InOut)], |t| {
                        let v = t.read(&a, 0);
                        t.write(&a, 0, v + 1);
                    });
                    w.taskwait();
                });
                w.barrier();
            });
        });
    });
    assert_eq!(result.race_count(), 0, "{:?}", result.races);
}

#[test]
fn taskwait_orders_task_against_continuation() {
    // Without taskwait the creator's continuation races with the task it
    // just spawned; with taskwait the write is ordered after the body.
    let racy = pipeline("task-nowait", |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task(|t| {
                        t.write(&a, 0, 1);
                    });
                    w.write(&a, 0, 2); // continuation: concurrent with the task
                    w.taskwait();
                });
                w.barrier();
            });
        });
    });
    assert!(racy.race_count() >= 1, "{:?}", racy.races);

    let clean = pipeline("task-wait", |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task(|t| {
                        t.write(&a, 0, 1);
                    });
                    w.taskwait();
                    w.write(&a, 0, 2); // ordered after the drained task
                });
                w.barrier();
            });
        });
    });
    assert_eq!(clean.race_count(), 0, "{:?}", clean.races);
}

#[test]
fn taskgroup_orders_group_but_not_outside_tasks() {
    // A write after taskgroup-end is ordered against the group's tasks,
    // but a task created *before* the group is still outstanding — the
    // group end does not wait for it.
    let clean = pipeline("taskgroup-clean", |sim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.taskgroup(|w| {
                        w.task(|t| {
                            t.write(&a, 0, 1);
                        });
                    });
                    w.write(&a, 0, 2); // ordered after the group's task
                });
                w.barrier();
            });
        });
    });
    assert_eq!(clean.race_count(), 0, "{:?}", clean.races);

    let racy = pipeline("taskgroup-outside", |sim| {
        let a = sim.alloc::<u64>(1, 0);
        let b = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.master(|| {
                    w.task(|t| {
                        t.write(&a, 0, 1); // outside the group
                    });
                    w.taskgroup(|w| {
                        w.task(|t| {
                            t.write(&b, 0, 1);
                        });
                    });
                    w.write(&a, 0, 2); // races with the pre-group task
                    w.taskwait();
                });
                w.barrier();
            });
        });
    });
    assert!(racy.race_count() >= 1, "{:?}", racy.races);
}

#[test]
fn dynamic_schedule_chunk_boundaries() {
    // Disjoint per-iteration accesses stay clean under dynamic
    // scheduling; a loop-carried dependency races at chunk boundaries
    // owned by different threads.
    let clean = pipeline("dyn-clean", |sim| {
        let a = sim.alloc::<f64>(256, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_dynamic_pinned(0..256, 16, |i| {
                    let v = w.read(&a, i);
                    w.write(&a, i, v + 1.0);
                });
            });
        });
    });
    assert_eq!(clean.race_count(), 0, "{:?}", clean.races);

    let racy = pipeline("dyn-carried", |sim| {
        let a = sim.alloc::<i64>(256, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_dynamic_pinned(1..256, 16, |i| {
                    let v = w.read(&a, i - 1);
                    w.write(&a, i, v + 1);
                });
            });
        });
    });
    assert!(racy.race_count() >= 1, "{:?}", racy.races);
}

#[test]
fn guided_schedule_disjoint_is_clean() {
    let result = pipeline("guided-clean", |sim| {
        let a = sim.alloc::<f64>(512, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_guided_pinned(0..512, 8, |i| {
                    w.write(&a, i, i as f64);
                });
            });
        });
    });
    assert_eq!(result.race_count(), 0, "{:?}", result.races);
}

#[test]
fn ordered_clause_serializes_the_shared_update() {
    // The same accumulator update races under a plain nowait dynamic
    // loop, and is serialized (lock-protected, turn-ordered) under an
    // `ordered` region.
    let racy = pipeline("ordered-without", |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_dynamic_pinned(0..64, 4, |_i| {
                    let v = w.read(&c, 0);
                    w.write(&c, 0, v + 1);
                });
            });
        });
    });
    assert!(racy.race_count() >= 1, "{:?}", racy.races);

    let clean = pipeline("ordered-with", |sim| {
        let c = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                w.for_static_ordered(0..64, |i, ol| {
                    w.ordered(ol, i, || {
                        let v = w.read(&c, 0);
                        w.write(&c, 0, v + 1);
                    });
                });
            });
        });
    });
    assert_eq!(clean.race_count(), 0, "{:?}", clean.races);
}

#[test]
fn parallel_analysis_matches_sequential() {
    let make = |tag: &str, cfg: AnalysisConfig| {
        pipeline_with(tag, cfg, |sim| {
            let a = sim.alloc::<i64>(2000, 0);
            let c = sim.alloc::<u64>(1, 0);
            sim.run(|ctx| {
                ctx.parallel(4, |w| {
                    w.for_static(1..2000, |i| {
                        let v = w.read(&a, i - 1);
                        w.write(&a, i, v + 1);
                    });
                    let v = w.read(&c, 0);
                    w.write(&c, 0, v + 1);
                });
            });
        })
    };
    let seq = make("par-seq", AnalysisConfig::sequential());
    let par = make("par-par", AnalysisConfig::default().with_workers(8));
    let keys = |r: &AnalysisResult| -> Vec<_> { r.races.iter().map(|x| x.key).collect() };
    assert_eq!(keys(&seq), keys(&par));
    assert_eq!(seq.stats.events, par.stats.events);
    assert_eq!(seq.stats.trees_built, par.stats.trees_built);
}

#[test]
fn ilp_solver_matches_diophantine() {
    let make = |tag: &str, solver: SolverChoice| {
        pipeline_with(tag, AnalysisConfig::sequential().with_solver(solver), |sim| {
            let a = sim.alloc::<f64>(512, 0.0);
            sim.run(|ctx| {
                ctx.parallel(2, |w| {
                    // Interleaved halves with a one-element overlap.
                    let lo = w.team_index() * 255;
                    for i in lo..lo + 257 {
                        w.write(&a, i, 1.0);
                    }
                    w.barrier();
                });
            });
        })
    };
    let dio = make("ilp-a", SolverChoice::Diophantine);
    let ilp = make("ilp-b", SolverChoice::Ilp);
    assert_eq!(dio.race_count(), ilp.race_count());
    assert!(dio.race_count() >= 1);
}

#[test]
fn small_chunks_match_large_chunks() {
    let make = |tag: &str, chunk: usize| {
        pipeline_with(tag, AnalysisConfig::sequential().with_chunk_bytes(chunk), |sim| {
            let a = sim.alloc::<i64>(800, 0);
            sim.run(|ctx| {
                ctx.parallel(3, |w| {
                    w.for_static(1..800, |i| {
                        let v = w.read(&a, i - 1);
                        w.write(&a, i, v);
                    });
                });
            });
        })
    };
    let small = make("chunk-small", 7);
    let large = make("chunk-large", 1 << 20);
    assert_eq!(small.race_count(), large.race_count());
    assert_eq!(small.stats.events, large.stats.events);
    assert_eq!(small.stats.nodes, large.stats.nodes);
}

#[test]
fn suppressions_silence_triaged_races() {
    // Two distinct racy cells; suppressing this test file's path hides
    // both, suppressing a non-matching pattern hides none.
    let program = |sim: &OmpSim| {
        let a = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.write(&a, 0, w.team_index());
            });
        });
    };
    let dir = session_dir("suppress");
    run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| program(sim)).unwrap();
    let session = SessionDir::new(&dir);

    let unsuppressed = analyze(&session, &AnalysisConfig::sequential()).unwrap();
    assert_eq!(unsuppressed.race_count(), 1);

    let miss = analyze(&session, &AnalysisConfig::sequential().with_suppression("no_such_file.rs"))
        .unwrap();
    assert_eq!(miss.race_count(), 1);
    assert_eq!(miss.stats.races_suppressed, 0);

    let hit =
        analyze(&session, &AnalysisConfig::sequential().with_suppression("end_to_end.rs")).unwrap();
    assert_eq!(hit.race_count(), 0);
    assert_eq!(hit.stats.races_suppressed, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_sessions_error_instead_of_panicking() {
    // A valid session, then three kinds of damage: truncated log, log
    // bytes corrupted, meta pointing past the end. The analyzer must
    // return io::Error in each case — never panic, never fabricate races.
    let dir = session_dir("corrupt");
    run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
        let a = sim.alloc::<f64>(2000, 0.0);
        sim.run(|ctx| {
            ctx.parallel(3, |w| {
                w.for_static(0..2000, |i| {
                    w.write(&a, i, i as f64);
                });
            });
        });
    })
    .unwrap();
    let session = SessionDir::new(&dir);
    assert!(analyze(&session, &AnalysisConfig::sequential()).is_ok(), "sane before damage");

    let tid0_log = session.thread_log(0).exists().then(|| session.thread_log(0));
    let victim = tid0_log.unwrap_or_else(|| session.thread_log(1));

    // 1. Truncate the log mid-frame.
    let original = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &original[..original.len() / 2]).unwrap();
    assert!(analyze(&session, &AnalysisConfig::sequential()).is_err(), "truncated log");

    // 2. Flip bytes inside the compressed payload.
    let mut corrupted = original.clone();
    let mid = corrupted.len() / 2;
    for b in &mut corrupted[mid..mid + 8.min(original.len() - mid)] {
        *b ^= 0xA5;
    }
    std::fs::write(&victim, &corrupted).unwrap();
    assert!(analyze(&session, &AnalysisConfig::sequential()).is_err(), "corrupt payload");

    // 3. Restore the log but damage the metadata to reference beyond EOF.
    std::fs::write(&victim, &original).unwrap();
    let meta_path = victim.with_extension("meta");
    let meta_text = std::fs::read_to_string(&meta_path).unwrap();
    let inflated = meta_text
        .lines()
        .map(|line| {
            let mut cols: Vec<String> = line.split('\t').map(str::to_string).collect();
            let size_idx = cols.len() - 1;
            cols[size_idx] = "999999999".to_string();
            cols.join("\t")
        })
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&meta_path, inflated).unwrap();
    assert!(analyze(&session, &AnalysisConfig::sequential()).is_err(), "meta past EOF");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn focus_regions_restricts_analysis() {
    // Two racy regions; focusing on one must report only its races (and
    // do strictly less work).
    let dir = session_dir("focus");
    run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
        let a = sim.alloc::<u64>(1, 0);
        let b = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.write(&a, 0, w.team_index()); // region 0 race
            });
            ctx.parallel(2, |w| {
                w.write(&b, 0, w.team_index()); // region 1 race
            });
        });
    })
    .unwrap();
    let session = SessionDir::new(&dir);
    let all = analyze(&session, &AnalysisConfig::sequential()).unwrap();
    assert_eq!(all.race_count(), 2);
    let only_r1 =
        analyze(&session, &AnalysisConfig::sequential().with_focus_regions(vec![1])).unwrap();
    assert_eq!(only_r1.race_count(), 1);
    assert!(only_r1.stats.events < all.stats.events, "less log data streamed");
    let none =
        analyze(&session, &AnalysisConfig::sequential().with_focus_regions(vec![99])).unwrap();
    assert_eq!(none.race_count(), 0);
    assert_eq!(none.stats.tasks, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn makespan_model_is_monotone() {
    let result = pipeline("makespan", |sim| {
        let a = sim.alloc::<f64>(500, 0.0);
        sim.run(|ctx| {
            ctx.parallel(4, |w| {
                for _phase in 0..6 {
                    w.for_static(0..500, |i| {
                        let v = w.read(&a, i);
                        w.write(&a, i, v + 1.0);
                    });
                }
            });
        });
    });
    assert!(result.task_hist.count() > 0);
    let total: f64 = result.task_hist.total_secs();
    let m1 = result.makespan(1);
    assert!((m1 - total).abs() < 1e-9, "one node does all the work");
    let mut prev = m1;
    for nodes in [2usize, 4, 8, 1000] {
        let m = result.makespan(nodes);
        assert!(m <= prev + 1e-12, "makespan must not grow with more nodes");
        assert!(m >= result.stats.max_task_secs - 1e-12, "bounded below by the longest task");
        prev = m;
    }
    assert!((result.makespan(100_000) - result.stats.max_task_secs).abs() < 1e-9);
}

/// Region-count scaling stress (the LULESH blow-up at larger scale).
/// Ignored by default — run with `cargo test -- --ignored`.
#[test]
#[ignore = "several-minute stress run; exercises O(regions^2) region classification"]
fn region_heavy_session_scales() {
    let result = pipeline_with("stress-regions", AnalysisConfig::default(), |sim| {
        let a = sim.alloc::<f64>(64, 0.0);
        sim.run(|ctx| {
            for _step in 0..5_000 {
                ctx.parallel(2, |w| {
                    w.for_static_nowait(0..64, |i| {
                        let v = w.read(&a, i);
                        w.write(&a, i, v + 1.0);
                    });
                });
            }
        });
    });
    assert_eq!(result.race_count(), 0);
    assert_eq!(result.stats.groups, 5_000);
    // All 12.5M sequential region pairs pruned by the fork-label check.
    assert_eq!(result.stats.region_pairs_skipped, 5_000u64 * 4_999 / 2);
    assert_eq!(result.stats.region_pairs_considered, 0);
}

#[test]
fn stats_are_coherent() {
    let result = pipeline("stats", |sim| {
        let a = sim.alloc::<f64>(300, 0.0);
        sim.run(|ctx| {
            ctx.parallel(3, |w| {
                w.for_static(0..300, |i| {
                    w.write(&a, i, 0.0);
                });
                w.for_static(0..300, |i| {
                    let _ = w.read(&a, i);
                });
            });
        });
    });
    let s = result.stats;
    assert_eq!(s.threads, 3);
    assert_eq!(s.groups, 3, "three barrier intervals");
    assert_eq!(s.barrier_intervals, 9);
    assert_eq!(s.events, 600);
    assert!(s.nodes <= s.events);
    assert!(s.bytes_read > 0);
    assert!(s.wall_secs > 0.0);
    assert!(s.max_task_secs <= s.wall_secs);
}

#[test]
fn obs_journals_every_stage_and_gauges_tree_memory() {
    // An instrumented analysis must journal every pipeline stage with
    // Offline-layer attribution, record solver latencies, and measure a
    // non-zero tree-memory peak through the shared gauge.
    use sword_obs::{Layer, Obs};

    let obs = Obs::new();
    let config = AnalysisConfig::sequential().with_obs(obs.clone());
    let result = pipeline_with("obs-stages", config.clone(), |sim| {
        let a = sim.alloc::<i64>(1000, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.for_static(1..1000, |i| {
                    let prev = w.read(&a, i - 1);
                    w.write(&a, i, prev + 1);
                });
            });
        });
    });
    assert_eq!(result.race_count(), 1);

    let events = obs.journal.drain();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.layer == Layer::Offline), "analyzer spans are Offline-layer");
    for stage in ["discover", "load-meta", "build-structure", "pair-schedule", "dedup-report"] {
        assert!(
            events.iter().any(|e| e.name == stage && e.dur_us.is_some()),
            "missing stage span {stage:?}"
        );
    }
    let task_span = events.iter().find(|e| e.name == "task").expect("per-task worker span");
    assert!(task_span.thread.starts_with("oa-worker-"), "got {:?}", task_span.thread);

    let snapshot: std::collections::BTreeMap<String, f64> =
        obs.registry.snapshot().into_iter().collect();
    assert_eq!(
        snapshot["sword_solver_call_nanos_count"], result.stats.solver_calls as f64,
        "every exact solve lands in the latency histogram"
    );
    assert!(snapshot["sword_analyzer_tree_mem_peak_bytes"] > 0.0);
    assert_eq!(
        snapshot["sword_analyzer_tree_mem_bytes"], 0.0,
        "all trees released once analysis finishes"
    );
    assert_eq!(config.mem_gauge.live(), 0);
    assert!(config.mem_gauge.peak() > 0);
}

#[test]
fn uninstrumented_analysis_records_nothing() {
    // The default config must stay observability-free: no journal, no
    // registry, no gauges beyond the (inert) shared MemGauge.
    let config = AnalysisConfig::sequential();
    assert!(config.obs.is_none());
    let result = pipeline_with("obs-off", config.clone(), |sim| {
        let a = sim.alloc::<i64>(100, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.for_static(0..100, |i| {
                    w.write(&a, i, 1);
                });
            });
        });
    });
    assert_eq!(result.race_count(), 0);
    // The gauge still balances even when nobody reads it.
    assert_eq!(config.mem_gauge.live(), 0);
}
