//! Incremental (live) analysis must equal one-shot batch analysis.
//!
//! The staged-replay harness makes this deterministic: a finished session
//! is copied into a replica directory whose metadata is then re-published
//! as growing watermarked prefixes — exactly what a live collector's
//! publish protocol produces — with a [`LiveAnalyzer`] polled between
//! steps. Whatever the publish cadence, the final result must match the
//! batch analyzer on the same data: same deduplicated race set with the
//! same occurrence counts, and the same comparison-effort counters
//! (`tree_pairs`, `candidate_pairs`, `solver_calls`). Tree *build*
//! counters are exempt by design — the live path caches trees across
//! polls instead of rebuilding per task.

use std::path::PathBuf;
use std::sync::Arc;

use sword_offline::{analyze, AnalysisConfig, AnalysisResult, FunnelConfig, LiveAnalyzer};
use sword_ompsim::{OmpSim, SimConfig};
use sword_runtime::{run_collected, SwordCollector, SwordConfig};
use sword_trace::{LiveStatus, SessionDir};

fn session_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sword-live-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Collects `program` into a fresh session and returns its directory.
fn record(tag: &str, program: impl FnOnce(&OmpSim)) -> PathBuf {
    let dir = session_dir(tag);
    run_collected(SwordConfig::new(&dir), SimConfig::default(), program).expect("collection");
    dir
}

/// Replays a finished session as a staged sequence of watermark
/// publishes: logs, regions, and PCs are present from the start (regions
/// may only run ahead of the rows that reference them), while each
/// thread's meta file grows by `step` rows per publish. The analyzer is
/// polled after every publish — including empty ones — and its final
/// result is returned.
fn staged_replay(
    src: &SessionDir,
    tag: &str,
    config: &AnalysisConfig,
    step: usize,
) -> AnalysisResult {
    let dir = session_dir(tag);
    let dst = SessionDir::new(&dir);
    dst.create().expect("replica dir");
    for tid in src.thread_ids().expect("thread ids") {
        std::fs::copy(src.thread_log(tid), dst.thread_log(tid)).expect("copy log");
    }
    for name in ["regions.meta", "pcs.meta"] {
        let from = src.path().join(name);
        if from.exists() {
            std::fs::copy(from, dst.path().join(name)).expect("copy table");
        }
    }
    let metas: Vec<(sword_trace::ThreadId, Vec<String>)> = src
        .thread_ids()
        .expect("thread ids")
        .into_iter()
        .map(|tid| {
            let text = std::fs::read_to_string(src.thread_meta(tid)).expect("read meta");
            (tid, text.lines().map(str::to_string).collect())
        })
        .collect();
    let max_rows = metas.iter().map(|(_, lines)| lines.len()).max().unwrap_or(0);

    let mut live = LiveAnalyzer::new(&dst, config);
    let mut revealed = 0usize;
    let mut generation = 0u64;
    loop {
        revealed = revealed.saturating_add(step).min(max_rows);
        for (tid, lines) in &metas {
            let n = revealed.min(lines.len());
            let mut body = lines[..n].join("\n");
            if n > 0 {
                body.push('\n');
            }
            dst.write_file_atomic(&dst.thread_meta(*tid), body.as_bytes())
                .expect("publish meta prefix");
        }
        generation += 1;
        dst.write_live(LiveStatus { generation, finished: revealed >= max_rows })
            .expect("publish watermark");
        let delta = live.poll().expect("poll");
        if delta.finished {
            break;
        }
    }
    // An idle poll after completion must be a no-op.
    let idle = live.poll().expect("idle poll");
    assert!(idle.new_intervals == 0 && idle.new_races.is_empty(), "idle poll changed state");
    let result = live.into_result().expect("live result");
    std::fs::remove_dir_all(&dir).unwrap();
    result
}

/// The equivalence contract: identical race report and identical
/// comparison effort (tree builds are allowed to differ — the live tree
/// cache avoids the batch path's per-task rebuilds).
fn assert_equivalent(live: &AnalysisResult, batch: &AnalysisResult) {
    let report = |r: &AnalysisResult| -> Vec<_> {
        r.races.iter().map(|x| (x.key, x.kind_a, x.kind_b, x.occurrences)).collect()
    };
    assert_eq!(report(live), report(batch), "race reports diverge");
    assert_eq!(live.stats.races, batch.stats.races);
    assert_eq!(live.stats.racy_node_pairs, batch.stats.racy_node_pairs);
    assert_eq!(live.stats.races_suppressed, batch.stats.races_suppressed);
    assert_eq!(live.stats.tree_pairs, batch.stats.tree_pairs, "tree pairs");
    assert_eq!(live.stats.candidate_pairs, batch.stats.candidate_pairs, "candidates");
    assert_eq!(live.stats.solver_calls, batch.stats.solver_calls, "solver calls");
    assert_eq!(live.stats.prescreened_pairs, batch.stats.prescreened_pairs, "prescreened");
    assert_eq!(live.stats.threads, batch.stats.threads);
    assert_eq!(live.stats.barrier_intervals, batch.stats.barrier_intervals);
    assert_eq!(live.stats.groups, batch.stats.groups);
    assert_eq!(live.stats.tasks, batch.stats.tasks);
    assert_eq!(live.stats.region_pairs_skipped, batch.stats.region_pairs_skipped);
    assert_eq!(live.stats.region_pairs_considered, batch.stats.region_pairs_considered);
}

/// A workload with intra-group races, nested concurrent regions (cross
/// tasks of both kinds), and a sequential region pair to prune.
fn mixed_workload(sim: &OmpSim) {
    let a = sim.alloc::<i64>(600, 0);
    let c = sim.alloc::<u64>(1, 0);
    let y = sim.alloc::<u64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(3, |w| {
            w.for_static(1..600, |i| {
                let v = w.read(&a, i - 1);
                w.write(&a, i, v + 1);
            });
            let v = w.read(&c, 0);
            w.write(&c, 0, v + 1);
        });
        ctx.parallel(2, |w| {
            w.parallel(2, |inner| {
                inner.write(&y, 0, inner.team_index());
            });
        });
    });
}

/// A tasking workload: racy sibling tasks, a depend chain, taskwait,
/// taskgroup, and dynamic/guided/ordered loops — every construct the
/// tasking sequencer added, in one session.
fn tasking_workload(sim: &OmpSim) {
    use sword_ompsim::DepMode;
    let x = sim.alloc::<i64>(1, 0);
    let y = sim.alloc::<i64>(1, 0);
    let a = sim.alloc::<i64>(16, 0);
    let sum = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(2, |w| {
            if w.team_index() == 0 {
                // Racy siblings on x; dep-chain-ordered pair on y.
                w.task_depend(&[], |t| t.write(&x, 0, 1));
                w.task_depend(&[], |t| t.write(&x, 0, 2));
                w.task_depend(&[(0, DepMode::Out)], |t| t.write(&y, 0, 1));
                w.task_depend(&[(0, DepMode::InOut)], |t| {
                    let v = t.read(&y, 0);
                    t.write(&y, 0, v + 1);
                });
                w.taskwait();
                w.taskgroup(|g| {
                    g.task_depend(&[], |t| t.write(&y, 0, 9));
                });
                let _ = w.read(&y, 0);
            }
            w.barrier();
            // Dynamic and guided worksharing over disjoint elements, and
            // an ordered accumulation into one shared cell.
            w.for_dynamic_pinned(0..16, 2, |i| {
                let v = w.read(&a, i);
                w.write(&a, i, v + 1);
            });
            w.for_guided_pinned(0..16, 1, |i| {
                let v = w.read(&a, i);
                w.write(&a, i, v * 2);
            });
            w.for_static_ordered(0..8, |i, ol| {
                w.ordered(ol, i, || {
                    let s = w.read(&sum, 0);
                    w.write(&sum, 0, s + i as i64);
                });
            });
        });
    });
}

fn clean_workload(sim: &OmpSim) {
    let a = sim.alloc::<f64>(512, 1.0);
    sim.run(|ctx| {
        ctx.parallel(4, |w| {
            w.for_static(0..512, |i| {
                let v = w.read(&a, i);
                w.write(&a, i, v * 2.0);
            });
        });
    });
}

#[test]
fn live_equals_batch_on_racy_workload() {
    let dir = record("racy", mixed_workload);
    let src = SessionDir::new(&dir);
    let config = AnalysisConfig::sequential();
    let batch = analyze(&src, &config).expect("batch");
    assert!(batch.race_count() >= 2, "workload must race: {:?}", batch.races);
    let live = staged_replay(&src, "racy-replay", &config, 1);
    assert_equivalent(&live, &batch);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_equals_batch_on_clean_workload() {
    let dir = record("clean", clean_workload);
    let src = SessionDir::new(&dir);
    let config = AnalysisConfig::sequential();
    let batch = analyze(&src, &config).expect("batch");
    assert_eq!(batch.race_count(), 0, "{:?}", batch.races);
    let live = staged_replay(&src, "clean-replay", &config, 2);
    assert_equivalent(&live, &batch);
    assert!(live.stats.events > 0, "log data was actually streamed");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_equals_batch_on_tasking_workload() {
    // The tasking leg of the equivalence contract: a session full of
    // task-fork labels, dep edges, taskgroup scopes, and
    // dynamic/guided/ordered loop records must replay to the identical
    // report, with byte-identical evidence, funnel on and off.
    let dir = record("tasking", tasking_workload);
    let src = SessionDir::new(&dir);
    let pcs = sword_trace::PcTable::read_from(std::io::BufReader::new(
        std::fs::File::open(src.pcs_path()).expect("pcs"),
    ))
    .expect("pc table");
    let chains = |r: &AnalysisResult| -> Vec<String> {
        r.races.iter().map(|x| format!("{}\n{}", x.render(&pcs), x.render_evidence(&pcs))).collect()
    };
    let config = AnalysisConfig::sequential();
    let batch = analyze(&src, &config).expect("batch");
    assert!(batch.race_count() >= 1, "sibling tasks must race: {:?}", batch.races);
    assert!(batch.stats.tasks > 0, "session must carry task records");
    let live = staged_replay(&src, "tasking-replay", &config, 1);
    assert_equivalent(&live, &batch);
    assert_eq!(chains(&live), chains(&batch), "tasking evidence diverged");

    let nofunnel_cfg = AnalysisConfig::sequential().with_funnel(FunnelConfig::NONE);
    let nofunnel = analyze(&src, &nofunnel_cfg).expect("funnel-off batch");
    let nofunnel_live = staged_replay(&src, "tasking-replay-nofunnel", &nofunnel_cfg, 2);
    assert_equivalent(&nofunnel_live, &nofunnel);
    assert_eq!(chains(&nofunnel), chains(&batch), "funnel changed tasking evidence");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn analysis_core_variants_are_byte_identical() {
    // The shared analysis core must not let its fast paths leak into the
    // report: mapped vs buffered log reading, memoized vs recomputed
    // verdicts, and batch vs live driving must all produce the same
    // races with byte-identical rendered evidence chains.
    let dir = record("variants", mixed_workload);
    let src = SessionDir::new(&dir);
    let pcs = sword_trace::PcTable::read_from(std::io::BufReader::new(
        std::fs::File::open(src.pcs_path()).expect("pcs"),
    ))
    .expect("pc table");
    let chains = |r: &AnalysisResult| -> Vec<String> {
        r.races.iter().map(|x| format!("{}\n{}", x.render(&pcs), x.render_evidence(&pcs))).collect()
    };
    let baseline = analyze(&src, &AnalysisConfig::sequential()).expect("default batch");
    assert!(baseline.race_count() >= 2, "workload must race");
    let buffered = analyze(
        &src,
        &AnalysisConfig::sequential().with_read_mode(sword_trace::ReadMode::Buffered),
    )
    .expect("buffered batch");
    let uncached =
        analyze(&src, &AnalysisConfig::sequential().with_verdict_cache(false)).expect("uncached");
    let live = staged_replay(&src, "variants-replay", &AnalysisConfig::sequential(), 2);
    for (name, variant) in [("buffered", &buffered), ("cache-disabled", &uncached), ("live", &live)]
    {
        assert_equivalent(variant, &baseline);
        assert_eq!(chains(variant), chains(&baseline), "{name} evidence diverged");
    }

    // The screening funnel must be result-neutral: masking every screen
    // off moves pairs from `prescreened_pairs` back into `solver_calls`
    // but cannot change verdicts, candidates, or rendered evidence.
    let nofunnel_cfg = AnalysisConfig::sequential().with_funnel(FunnelConfig::NONE);
    let nofunnel = analyze(&src, &nofunnel_cfg).expect("funnel-off batch");
    let nofunnel_live = staged_replay(&src, "variants-replay-nofunnel", &nofunnel_cfg, 2);
    assert_equivalent(&nofunnel_live, &nofunnel);
    assert_eq!(nofunnel.stats.prescreened_pairs, 0, "no screens, nothing prescreened");
    for (name, variant) in [("funnel-off", &nofunnel), ("funnel-off-live", &nofunnel_live)] {
        assert_eq!(chains(variant), chains(&baseline), "{name} evidence diverged");
        assert_eq!(
            variant.stats.candidate_pairs, baseline.stats.candidate_pairs,
            "{name} candidate count moved"
        );
        assert_eq!(
            variant.stats.solver_calls + variant.stats.prescreened_pairs,
            baseline.stats.solver_calls + baseline.stats.prescreened_pairs,
            "{name} broke decided-pair conservation"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn poll_cadence_is_invariant() {
    // One row at a time, three at a time, or everything in one publish —
    // the result must not depend on how the watermark advanced.
    let dir = record("cadence", mixed_workload);
    let src = SessionDir::new(&dir);
    let config = AnalysisConfig::sequential();
    let batch = analyze(&src, &config).expect("batch");
    for (tag, step) in [("cadence-1", 1), ("cadence-3", 3), ("cadence-all", usize::MAX)] {
        let live = staged_replay(&src, tag, &config, step);
        assert_equivalent(&live, &batch);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn focus_and_suppressions_flow_through_live() {
    let dir = record("config", |sim| {
        let a = sim.alloc::<u64>(1, 0);
        let b = sim.alloc::<u64>(1, 0);
        sim.run(|ctx| {
            ctx.parallel(2, |w| {
                w.write(&a, 0, w.team_index());
            });
            ctx.parallel(2, |w| {
                w.write(&b, 0, w.team_index());
            });
        });
    });
    let src = SessionDir::new(&dir);

    let focus = AnalysisConfig::sequential().with_focus_regions(vec![1]);
    let batch = analyze(&src, &focus).expect("batch focus");
    assert_eq!(batch.race_count(), 1);
    assert_equivalent(&staged_replay(&src, "config-focus", &focus, 1), &batch);

    let suppress = AnalysisConfig::sequential().with_suppression("live_equivalence.rs");
    let batch = analyze(&src, &suppress).expect("batch suppress");
    assert_eq!(batch.race_count(), 0);
    assert_eq!(batch.stats.races_suppressed, 2);
    assert_equivalent(&staged_replay(&src, "config-suppress", &suppress, 1), &batch);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn chunk_size_is_invariant_in_live_mode() {
    let dir = record("chunks", mixed_workload);
    let src = SessionDir::new(&dir);
    let small =
        staged_replay(&src, "chunks-small", &AnalysisConfig::sequential().with_chunk_bytes(7), 2);
    let large = staged_replay(
        &src,
        "chunks-large",
        &AnalysisConfig::sequential().with_chunk_bytes(1 << 20),
        2,
    );
    let keys =
        |r: &AnalysisResult| -> Vec<_> { r.races.iter().map(|x| (x.key, x.occurrences)).collect() };
    assert_eq!(keys(&small), keys(&large));
    assert_eq!(small.stats.candidate_pairs, large.stats.candidate_pairs);
    assert_eq!(small.stats.events, large.stats.events);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_watermarks_only_cover_durable_bytes() {
    // With the async flush pipeline (pool → compression workers → ordered
    // writer), the published watermark is allowed to trail the buffers
    // still in flight but must never run ahead of the file: at every
    // publish point, each visible meta row's byte range has to be readable
    // back from the on-disk log, while the writer is still racing.
    use std::fs::File;
    use std::io::BufReader;
    use sword_trace::{read_meta, EventDecoder, LogReader};

    let dir = session_dir("durable");
    let collector = Arc::new(
        SwordCollector::new(SwordConfig::new(&dir).buffer_events(2).compress_workers(2).live())
            .expect("collector"),
    );
    let session = collector.session().clone();
    let sim = OmpSim::with_tool_and_config(collector.clone(), SimConfig::default());
    let a = sim.alloc::<u64>(256, 0);
    let mut checked_rows = 0usize;
    sim.run(|ctx| {
        for _round in 0..5 {
            ctx.parallel(4, |w| {
                w.for_static(0..256, |i| {
                    w.write(&a, i, i);
                });
            });
            collector.publish_progress().expect("publish");
            for tid in session.thread_ids().expect("tids") {
                let meta = session.thread_meta(tid);
                if !meta.exists() {
                    continue;
                }
                let rows = read_meta(BufReader::new(File::open(meta).unwrap())).expect("meta");
                let Some(last) = rows.last() else { continue };
                // One read over everything the watermark claims: EOF here
                // would mean the watermark covered bytes not yet on disk.
                let mut reader = LogReader::new(File::open(session.thread_log(tid)).unwrap());
                let mut bytes = Vec::new();
                reader
                    .read_range(0, last.data_begin + last.size, &mut bytes)
                    .expect("published bytes must be durably readable");
                for row in &rows {
                    let range =
                        &bytes[row.data_begin as usize..(row.data_begin + row.size) as usize];
                    EventDecoder::new().decode_all(range).expect("published interval decodes");
                    checked_rows += 1;
                }
            }
        }
    });
    collector.write_pcs(&sim.export_pcs()).expect("pcs");
    assert!(collector.take_error().is_none());
    assert!(checked_rows > 0, "mid-run publishes exposed at least one interval");
    // After finalize the watermark is final and complete.
    let status = session.read_live().expect("live").expect("status");
    assert!(status.finished);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_run_polling_reports_races_before_the_run_ends() {
    // The real collector, not the replay harness: a racy first region is
    // published mid-run (deterministically, via publish_progress) and the
    // analyzer polled inside the run must already report the race while
    // the session is still unfinished and later intervals don't exist yet.
    let dir = session_dir("midrun");
    let collector = Arc::new(
        SwordCollector::new(SwordConfig::new(&dir).sync_flush().buffer_events(1).live())
            .expect("collector"),
    );
    let session = collector.session().clone();
    let config = AnalysisConfig::sequential();
    let mut live = LiveAnalyzer::new(&session, &config);
    let sim = OmpSim::with_tool_and_config(collector.clone(), SimConfig::default());
    let a = sim.alloc::<u64>(1, 0);
    let b = sim.alloc::<f64>(128, 0.0);
    let mut mid = None;
    sim.run(|ctx| {
        ctx.parallel(2, |w| {
            w.write(&a, 0, w.team_index()); // the planted race
        });
        collector.publish_progress().expect("publish");
        let delta = live.poll().expect("mid-run poll");
        mid = Some((delta.total_races, delta.finished, live.race_count()));
        // More work after the mid-run observation: a clean region.
        ctx.parallel(2, |w| {
            w.for_static(0..128, |i| {
                w.write(&b, i, i as f64);
            });
        });
    });
    collector.write_pcs(&sim.export_pcs()).expect("pcs");
    assert!(collector.take_error().is_none());

    let (mid_races, mid_finished, mid_count) = mid.expect("mid-run observation");
    assert!(!mid_finished, "session must still be in flight at the mid-run poll");
    assert!(mid_races >= 1, "the race must surface before the run ends");
    assert_eq!(mid_races, mid_count);

    // Finish the watch and compare against batch on the final session.
    let final_delta = live.poll().expect("final poll");
    assert!(final_delta.finished, "finalize marks the watermark finished");
    let live_result = live.into_result().expect("live result");
    let batch = analyze(&session, &config).expect("batch");
    assert_equivalent(&live_result, &batch);
    assert_eq!(live_result.race_count(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
