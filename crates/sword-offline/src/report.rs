//! Race-report rendering: human-readable text, the `sword explain`
//! evidence view, and machine-readable JSON.
//!
//! JSON is emitted by hand (no serialization dependency — see DESIGN.md's
//! dependency policy); the format is stable and documented here:
//!
//! ```json
//! {
//!   "races": [
//!     {"pc_lo": "file.rs:10", "pc_hi": "file.rs:20",
//!      "kind_lo": "Write", "kind_hi": "Read",
//!      "witness_addr": 268435456, "tids": [1, 2],
//!      "region": 0, "occurrences": 12,
//!      "evidence": {
//!        "a": {"pc": "file.rs:10", "kind": "Write", "tid": 1,
//!              "pid": 0, "bid": 0, "label": "[0,1][0,2]",
//!              "base": 268435456, "stride": 8, "count": 99, "size": 8,
//!              "log_begin": 0, "log_end": 840, "index": 0, "byte": 0},
//!        "b": { ... },
//!        "concurrency": ["label A = ...", "..."],
//!        "witness": {"addr": 268435456, "x0": 0, "s0": 0, "x1": 0, "s1": 0}
//!      }}
//!   ],
//!   "stats": { "threads": 4, "barrier_intervals": 8, ... }
//! }
//! ```

use std::fmt::Write as _;

use sword_trace::PcTable;

use crate::analyze::AnalysisResult;
use crate::race::AccessSite;

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one evidence side as a JSON object.
fn json_site(s: &AccessSite, pcs: &PcTable) -> String {
    format!(
        "{{\"pc\": \"{}\", \"kind\": \"{:?}\", \"tid\": {}, \"pid\": {}, \"bid\": {}, \
         \"label\": \"{}\", \"base\": {}, \"stride\": {}, \"count\": {}, \"size\": {}, \
         \"log_begin\": {}, \"log_end\": {}, \"index\": {}, \"byte\": {}}}",
        escape(&pcs.display(s.pc)),
        s.kind,
        s.tid,
        s.pid,
        s.bid,
        escape(&s.label),
        s.interval.base,
        s.interval.stride,
        s.interval.count,
        s.interval.size,
        s.log_begin,
        s.log_end,
        s.index,
        s.byte
    )
}

/// Renders an analysis result as JSON.
pub fn render_json(result: &AnalysisResult, pcs: &PcTable) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"races\": [\n");
    for (i, race) in result.races.iter().enumerate() {
        let ev = &race.evidence;
        let w = &ev.witness;
        let concurrency: Vec<String> =
            ev.concurrency.iter().map(|l| format!("\"{}\"", escape(l))).collect();
        let _ = write!(
            out,
            "    {{\"pc_lo\": \"{}\", \"pc_hi\": \"{}\", \"kind_lo\": \"{:?}\", \
             \"kind_hi\": \"{:?}\", \"witness_addr\": {}, \"tids\": [{}, {}], \
             \"region\": {}, \"occurrences\": {}, \"evidence\": {{\"a\": {}, \"b\": {}, \
             \"concurrency\": [{}], \"witness\": {{\"addr\": {}, \"x0\": {}, \"s0\": {}, \
             \"x1\": {}, \"s1\": {}}}}}}}",
            escape(&pcs.display(race.key.pc_lo)),
            escape(&pcs.display(race.key.pc_hi)),
            race.kind_a,
            race.kind_b,
            race.witness_addr,
            race.tids.0,
            race.tids.1,
            race.region,
            race.occurrences,
            json_site(&ev.a, pcs),
            json_site(&ev.b, pcs),
            concurrency.join(", "),
            w.addr,
            w.x0,
            w.s0,
            w.x1,
            w.s1
        );
        out.push_str(if i + 1 < result.races.len() { ",\n" } else { "\n" });
    }
    let s = &result.stats;
    let _ = write!(
        out,
        "  ],\n  \"stats\": {{\"threads\": {}, \"barrier_intervals\": {}, \
         \"groups\": {}, \"events\": {}, \"nodes\": {}, \"bytes_read\": {}, \
         \"candidate_pairs\": {}, \"solver_calls\": {}, \"races\": {}, \
         \"wall_secs\": {:.6}, \"max_task_secs\": {:.6}}}\n}}",
        s.threads,
        s.barrier_intervals,
        s.groups,
        s.events,
        s.nodes,
        s.bytes_read,
        s.candidate_pairs,
        s.solver_calls,
        s.races,
        s.wall_secs,
        s.max_task_secs
    );
    out.push('\n');
    out
}

/// Renders an analysis result as the standard multi-line text report.
pub fn render_text(result: &AnalysisResult, pcs: &PcTable) -> String {
    let s = &result.stats;
    let mut out = format!(
        "analyzed {} threads, {} barrier intervals, {} events in {:.2}s \
         ({} tree nodes, {} candidate pairs, {} solver calls)\n",
        s.threads,
        s.barrier_intervals,
        s.events,
        s.wall_secs,
        s.nodes,
        s.candidate_pairs,
        s.solver_calls
    );
    if result.races.is_empty() {
        out.push_str("no data races detected\n");
    } else {
        let _ = writeln!(out, "{} data race(s):", result.races.len());
        for race in &result.races {
            let _ = writeln!(out, "  {}", race.render(pcs));
        }
    }
    out
}

/// Renders the `sword explain` view of race `id` (its index in the
/// sorted race list): the one-line summary followed by the full evidence
/// chain. `None` when `id` is out of range.
pub fn render_explain(result: &AnalysisResult, pcs: &PcTable, id: usize) -> Option<String> {
    let race = result.races.get(id)?;
    let mut out = format!("race #{id} of {}\n", result.races.len());
    out.push_str(&race.render(pcs));
    out.push('\n');
    out.push('\n');
    out.push_str(&race.render_evidence(pcs));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{AnalysisResult, AnalysisStats};
    use crate::race::{Race, RaceKey};
    use sword_metrics::{DurationHist, StageTable};
    use sword_trace::AccessKind;

    fn sample_hist(secs: &[f64]) -> DurationHist {
        let mut h = DurationHist::new();
        for &s in secs {
            h.record(s);
        }
        h
    }

    fn sample() -> (AnalysisResult, PcTable) {
        let mut pcs = PcTable::new();
        let a = pcs.intern("src/ke\"rnel.rs", 10); // quote needs escaping
        let b = pcs.intern("src/kernel.rs", 20);
        let result = AnalysisResult {
            races: vec![Race {
                key: RaceKey::new(a, b),
                kind_a: AccessKind::Write,
                kind_b: AccessKind::Read,
                witness_addr: 0x100,
                tids: (1, 2),
                region: 0,
                occurrences: 3,
                evidence: crate::race::test_evidence(a, b, 0x100),
            }],
            stats: AnalysisStats { threads: 2, races: 1, ..Default::default() },
            task_hist: sample_hist(&[0.1]),
            stages: StageTable::new(),
        };
        (result, pcs)
    }

    #[test]
    fn json_shape_and_escaping() {
        let (result, pcs) = sample();
        let json = render_json(&result, &pcs);
        assert!(json.contains("\"races\": ["));
        assert!(json.contains("\\\"rnel.rs:10"), "quote escaped: {json}");
        assert!(json.contains("\"witness_addr\": 256"));
        assert!(json.contains("\"occurrences\": 3"));
        assert!(json.contains("\"stats\": {"));
        // Evidence chain is embedded per race.
        assert!(json.contains("\"evidence\": {\"a\": {"));
        assert!(json.contains("\"label\": \"[0,1][0,8]\""));
        assert!(json.contains("\"concurrency\": [\"synthetic\"]"));
        assert!(json.contains("\"witness\": {\"addr\": 256"));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn explain_renders_one_race() {
        let (result, pcs) = sample();
        let text = render_explain(&result, &pcs, 0).unwrap();
        assert!(text.starts_with("race #0 of 1\n"));
        assert!(text.contains("side A:"));
        assert!(text.contains("side B:"));
        assert!(text.contains("solver witness"));
        assert!(render_explain(&result, &pcs, 1).is_none(), "out of range");
    }

    #[test]
    fn json_empty_result() {
        let result = AnalysisResult {
            races: vec![],
            stats: AnalysisStats::default(),
            task_hist: DurationHist::new(),
            stages: StageTable::new(),
        };
        let json = render_json(&result, &PcTable::new());
        assert!(json.contains("\"races\": [\n  ]"));
    }

    #[test]
    fn text_report() {
        let (result, pcs) = sample();
        let text = render_text(&result, &pcs);
        assert!(text.contains("1 data race(s)"));
        assert!(text.contains("kernel.rs:20"));
        let empty = AnalysisResult {
            races: vec![],
            stats: AnalysisStats::default(),
            task_hist: DurationHist::new(),
            stages: StageTable::new(),
        };
        assert!(render_text(&empty, &pcs).contains("no data races detected"));
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }
}
