//! Race-report rendering: human-readable text and machine-readable JSON.
//!
//! JSON is emitted by hand (no serialization dependency — see DESIGN.md's
//! dependency policy); the format is stable and documented here:
//!
//! ```json
//! {
//!   "races": [
//!     {"pc_lo": "file.rs:10", "pc_hi": "file.rs:20",
//!      "kind_lo": "Write", "kind_hi": "Read",
//!      "witness_addr": 268435456, "tids": [1, 2],
//!      "region": 0, "occurrences": 12}
//!   ],
//!   "stats": { "threads": 4, "barrier_intervals": 8, ... }
//! }
//! ```

use std::fmt::Write as _;

use sword_trace::PcTable;

use crate::analyze::AnalysisResult;

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an analysis result as JSON.
pub fn render_json(result: &AnalysisResult, pcs: &PcTable) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"races\": [\n");
    for (i, race) in result.races.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"pc_lo\": \"{}\", \"pc_hi\": \"{}\", \"kind_lo\": \"{:?}\", \
             \"kind_hi\": \"{:?}\", \"witness_addr\": {}, \"tids\": [{}, {}], \
             \"region\": {}, \"occurrences\": {}}}",
            escape(&pcs.display(race.key.pc_lo)),
            escape(&pcs.display(race.key.pc_hi)),
            race.kind_a,
            race.kind_b,
            race.witness_addr,
            race.tids.0,
            race.tids.1,
            race.region,
            race.occurrences
        );
        out.push_str(if i + 1 < result.races.len() { ",\n" } else { "\n" });
    }
    let s = &result.stats;
    let _ = write!(
        out,
        "  ],\n  \"stats\": {{\"threads\": {}, \"barrier_intervals\": {}, \
         \"groups\": {}, \"events\": {}, \"nodes\": {}, \"bytes_read\": {}, \
         \"candidate_pairs\": {}, \"solver_calls\": {}, \"races\": {}, \
         \"wall_secs\": {:.6}, \"max_task_secs\": {:.6}}}\n}}",
        s.threads,
        s.barrier_intervals,
        s.groups,
        s.events,
        s.nodes,
        s.bytes_read,
        s.candidate_pairs,
        s.solver_calls,
        s.races,
        s.wall_secs,
        s.max_task_secs
    );
    out.push('\n');
    out
}

/// Renders an analysis result as the standard multi-line text report.
pub fn render_text(result: &AnalysisResult, pcs: &PcTable) -> String {
    let s = &result.stats;
    let mut out = format!(
        "analyzed {} threads, {} barrier intervals, {} events in {:.2}s \
         ({} tree nodes, {} candidate pairs, {} solver calls)\n",
        s.threads,
        s.barrier_intervals,
        s.events,
        s.wall_secs,
        s.nodes,
        s.candidate_pairs,
        s.solver_calls
    );
    if result.races.is_empty() {
        out.push_str("no data races detected\n");
    } else {
        let _ = writeln!(out, "{} data race(s):", result.races.len());
        for race in &result.races {
            let _ = writeln!(out, "  {}", race.render(pcs));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{AnalysisResult, AnalysisStats};
    use crate::race::{Race, RaceKey};
    use sword_metrics::StageTable;
    use sword_trace::AccessKind;

    fn sample() -> (AnalysisResult, PcTable) {
        let mut pcs = PcTable::new();
        let a = pcs.intern("src/ke\"rnel.rs", 10); // quote needs escaping
        let b = pcs.intern("src/kernel.rs", 20);
        let result = AnalysisResult {
            races: vec![Race {
                key: RaceKey::new(a, b),
                kind_a: AccessKind::Write,
                kind_b: AccessKind::Read,
                witness_addr: 0x100,
                tids: (1, 2),
                region: 0,
                occurrences: 3,
            }],
            stats: AnalysisStats { threads: 2, races: 1, ..Default::default() },
            task_secs: vec![0.1],
            stages: StageTable::new(),
        };
        (result, pcs)
    }

    #[test]
    fn json_shape_and_escaping() {
        let (result, pcs) = sample();
        let json = render_json(&result, &pcs);
        assert!(json.contains("\"races\": ["));
        assert!(json.contains("\\\"rnel.rs:10"), "quote escaped: {json}");
        assert!(json.contains("\"witness_addr\": 256"));
        assert!(json.contains("\"occurrences\": 3"));
        assert!(json.contains("\"stats\": {"));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_empty_result() {
        let result = AnalysisResult {
            races: vec![],
            stats: AnalysisStats::default(),
            task_secs: vec![],
            stages: StageTable::new(),
        };
        let json = render_json(&result, &PcTable::new());
        assert!(json.contains("\"races\": [\n  ]"));
    }

    #[test]
    fn text_report() {
        let (result, pcs) = sample();
        let text = render_text(&result, &pcs);
        assert!(text.contains("1 data race(s)"));
        assert!(text.contains("kernel.rs:20"));
        let empty = AnalysisResult {
            races: vec![],
            stats: AnalysisStats::default(),
            task_secs: vec![],
            stages: StageTable::new(),
        };
        assert!(render_text(&empty, &pcs).contains("no data races detected"));
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }
}
