//! Tree-vs-tree race checking and race reports.

use std::collections::HashMap;
use std::time::Instant;

use sword_itree::for_each_candidate_pair;
use sword_obs::Histogram;
use sword_solver::{overlap_ilp, strided_overlap_witness, IlpStatus};
use sword_trace::{AccessKind, PcId, PcTable, ThreadId};

use crate::analyze::SolverChoice;
use crate::build::BiTree;

/// Dedup key: the unordered pair of source locations, which is how the
/// paper's tables count races.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RaceKey {
    /// Smaller PC of the pair.
    pub pc_lo: PcId,
    /// Larger PC of the pair.
    pub pc_hi: PcId,
}

impl RaceKey {
    /// Builds the unordered key.
    pub fn new(a: PcId, b: PcId) -> Self {
        if a <= b {
            RaceKey { pc_lo: a, pc_hi: b }
        } else {
            RaceKey { pc_lo: b, pc_hi: a }
        }
    }
}

/// One reported data race (deduplicated source-line pair).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// Dedup key.
    pub key: RaceKey,
    /// Access kind at `pc_lo`'s side of the first witness.
    pub kind_a: AccessKind,
    /// Access kind at `pc_hi`'s side of the first witness.
    pub kind_b: AccessKind,
    /// A concrete shared address from the constraint solve.
    pub witness_addr: u64,
    /// Threads of the first witnessing pair.
    pub tids: (ThreadId, ThreadId),
    /// Region in which the first witness occurred.
    pub region: u64,
    /// How many interval pairs exhibited this source-line pair.
    pub occurrences: u64,
}

impl Race {
    /// Renders the race with resolved source locations.
    pub fn render(&self, pcs: &PcTable) -> String {
        format!(
            "race: {} ({:?}) <-> {} ({:?}) at addr {:#x} [threads {} vs {}, region {}, seen {}x]",
            pcs.display(self.key.pc_lo),
            self.kind_a,
            pcs.display(self.key.pc_hi),
            self.kind_b,
            self.witness_addr,
            self.tids.0,
            self.tids.1,
            self.region,
            self.occurrences
        )
    }
}

/// Mutable race accumulator with source-line-pair dedup.
#[derive(Debug, Default)]
pub struct RaceSet {
    races: HashMap<RaceKey, Race>,
    /// Dynamic (non-deduplicated) racy node-pair count.
    pub raw_pairs: u64,
}

impl RaceSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one racy node pair.
    pub fn record(&mut self, race: Race) {
        self.raw_pairs += 1;
        self.races.entry(race.key).and_modify(|r| r.occurrences += 1).or_insert(race);
    }

    /// Merges another set (parallel workers).
    pub fn merge(&mut self, other: RaceSet) {
        self.raw_pairs += other.raw_pairs;
        for (key, race) in other.races {
            self.races.entry(key).and_modify(|r| r.occurrences += race.occurrences).or_insert(race);
        }
    }

    /// Number of distinct races.
    pub fn len(&self) -> usize {
        self.races.len()
    }

    /// `true` when this source-line pair was already recorded.
    pub fn contains(&self, key: &RaceKey) -> bool {
        self.races.contains_key(key)
    }

    /// Iterates the distinct races in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Race> {
        self.races.values()
    }

    /// `true` when no races were recorded.
    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }

    /// Sorted race list.
    pub fn into_sorted(self) -> Vec<Race> {
        let mut v: Vec<Race> = self.races.into_values().collect();
        v.sort_by_key(|r| r.key);
        v
    }
}

/// Statistics of one tree-vs-tree comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Node pairs whose coarse ranges overlapped.
    pub candidates: u64,
    /// Exact constraint solves performed.
    pub solver_calls: u64,
}

/// Compares two interval trees and records races.
///
/// For every candidate pair (coarse `[begin,end)` overlap found through
/// the augmented tree), applies the access-compatibility conditions and
/// then the exact strided-overlap constraint with the chosen solver.
///
/// `solver_nanos`, when present, receives the latency of every exact
/// solve (the registry's `sword_solver_call_nanos` histogram); timing is
/// taken only around the solver itself, so candidate filtering stays
/// unmeasured and uninstrumented runs pay nothing.
pub fn check_pair(
    a: &BiTree,
    b: &BiTree,
    region: u64,
    solver: SolverChoice,
    races: &mut RaceSet,
    solver_nanos: Option<&Histogram>,
) -> PairStats {
    let mut stats = PairStats::default();
    for_each_candidate_pair(&a.tree, &b.tree, |ia, ma, ib, mb| {
        stats.candidates += 1;
        if !a.can_race(ma, b, mb) {
            return;
        }
        stats.solver_calls += 1;
        let t0 = solver_nanos.map(|_| Instant::now());
        let witness = match solver {
            SolverChoice::Diophantine => strided_overlap_witness(ia, ib),
            SolverChoice::Ilp => match overlap_ilp(ia, ib).solve() {
                IlpStatus::Feasible => strided_overlap_witness(ia, ib),
                _ => None,
            },
        };
        if let (Some(hist), Some(t0)) = (solver_nanos, t0) {
            hist.record(t0.elapsed().as_nanos() as u64);
        }
        if let Some(addr) = witness {
            let key = RaceKey::new(ma.pc, mb.pc);
            // Keep kinds aligned with the key's (lo, hi) order.
            let (kind_a, kind_b) =
                if ma.pc <= mb.pc { (ma.kind, mb.kind) } else { (mb.kind, ma.kind) };
            races.record(Race {
                key,
                kind_a,
                kind_b,
                witness_addr: addr,
                tids: (a.tid, b.tid),
                region,
                occurrences: 1,
            });
        }
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::AccessMeta;
    use sword_itree::{IntervalTree, StridedInterval};

    fn tree_of(tid: ThreadId, nodes: &[(StridedInterval, AccessMeta)]) -> BiTree {
        let mut tree = IntervalTree::new();
        for (iv, m) in nodes {
            tree.insert(*iv, *m);
        }
        BiTree {
            tid,
            tree,
            mutex_sets: vec![vec![], vec![7]],
            accesses: nodes.len() as u64,
            bytes_read: 0,
        }
    }

    fn meta(kind: AccessKind, pc: PcId, mset: u32) -> AccessMeta {
        AccessMeta { kind, pc, mset }
    }

    #[test]
    fn write_read_overlap_is_a_race() {
        let a =
            tree_of(0, &[(StridedInterval::new(0x100, 8, 99, 8), meta(AccessKind::Write, 1, 0))]);
        let b =
            tree_of(1, &[(StridedInterval::new(0x100, 8, 99, 8), meta(AccessKind::Read, 2, 0))]);
        let mut races = RaceSet::new();
        let hist = Histogram::default();
        let stats = check_pair(&a, &b, 0, SolverChoice::Diophantine, &mut races, Some(&hist));
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.solver_calls, 1);
        assert_eq!(hist.count(), 1, "each exact solve records one latency sample");
        assert_eq!(races.len(), 1);
        let race = races.into_sorted().pop().unwrap();
        assert_eq!(race.key, RaceKey::new(1, 2));
        assert_eq!(race.tids, (0, 1));
    }

    #[test]
    fn read_read_is_not_checked() {
        let a = tree_of(0, &[(StridedInterval::new(0x100, 8, 9, 8), meta(AccessKind::Read, 1, 0))]);
        let b = tree_of(1, &[(StridedInterval::new(0x100, 8, 9, 8), meta(AccessKind::Read, 2, 0))]);
        let mut races = RaceSet::new();
        let stats = check_pair(&a, &b, 0, SolverChoice::Diophantine, &mut races, None);
        assert_eq!(stats.solver_calls, 0);
        assert!(races.is_empty());
    }

    #[test]
    fn common_lock_suppresses() {
        let a = tree_of(0, &[(StridedInterval::single(0x100, 8), meta(AccessKind::Write, 1, 1))]);
        let b = tree_of(1, &[(StridedInterval::single(0x100, 8), meta(AccessKind::Write, 2, 1))]);
        let mut races = RaceSet::new();
        check_pair(&a, &b, 0, SolverChoice::Diophantine, &mut races, None);
        assert!(races.is_empty());
    }

    #[test]
    fn figure4_interleaved_strides_no_race() {
        // Candidate by range, rejected by the exact solve.
        let a = tree_of(0, &[(StridedInterval::new(10, 8, 4, 4), meta(AccessKind::Write, 1, 0))]);
        let b = tree_of(1, &[(StridedInterval::new(14, 8, 4, 4), meta(AccessKind::Write, 2, 0))]);
        let mut races = RaceSet::new();
        let stats = check_pair(&a, &b, 0, SolverChoice::Diophantine, &mut races, None);
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.solver_calls, 1);
        assert!(races.is_empty());
        // The ILP solver agrees.
        let mut races2 = RaceSet::new();
        check_pair(&a, &b, 0, SolverChoice::Ilp, &mut races2, None);
        assert!(races2.is_empty());
    }

    #[test]
    fn dedup_by_source_pair() {
        // Many racing interval pairs from the same two lines → one race.
        let nodes_a: Vec<_> = (0..10)
            .map(|k| {
                (StridedInterval::new(0x1000 + k * 0x100, 8, 9, 8), meta(AccessKind::Write, 1, 0))
            })
            .collect();
        let nodes_b: Vec<_> = (0..10)
            .map(|k| {
                (StridedInterval::new(0x1000 + k * 0x100, 8, 9, 8), meta(AccessKind::Read, 2, 0))
            })
            .collect();
        let a = tree_of(0, &nodes_a);
        let b = tree_of(1, &nodes_b);
        let mut races = RaceSet::new();
        check_pair(&a, &b, 0, SolverChoice::Diophantine, &mut races, None);
        assert_eq!(races.len(), 1);
        assert_eq!(races.raw_pairs, 10);
        assert_eq!(races.into_sorted()[0].occurrences, 10);
    }

    #[test]
    fn merge_accumulates() {
        let mut s1 = RaceSet::new();
        let mut s2 = RaceSet::new();
        let race = Race {
            key: RaceKey::new(5, 2),
            kind_a: AccessKind::Write,
            kind_b: AccessKind::Read,
            witness_addr: 0x10,
            tids: (0, 1),
            region: 0,
            occurrences: 1,
        };
        s1.record(race.clone());
        s2.record(race.clone());
        s2.record(Race { key: RaceKey::new(9, 9), ..race.clone() });
        s1.merge(s2);
        assert_eq!(s1.len(), 2);
        assert_eq!(s1.raw_pairs, 3);
        let sorted = s1.into_sorted();
        assert_eq!(sorted[0].key, RaceKey::new(2, 5));
        assert_eq!(sorted[0].occurrences, 2);
    }

    #[test]
    fn race_key_is_unordered() {
        assert_eq!(RaceKey::new(3, 7), RaceKey::new(7, 3));
    }

    #[test]
    fn render_resolves_locations() {
        let mut pcs = PcTable::new();
        let p1 = pcs.intern("kernel.rs", 10);
        let p2 = pcs.intern("kernel.rs", 20);
        let race = Race {
            key: RaceKey::new(p1, p2),
            kind_a: AccessKind::Write,
            kind_b: AccessKind::Read,
            witness_addr: 0xABC,
            tids: (2, 5),
            region: 3,
            occurrences: 4,
        };
        let s = race.render(&pcs);
        assert!(s.contains("kernel.rs:10"));
        assert!(s.contains("kernel.rs:20"));
        assert!(s.contains("0xabc"));
    }
}
