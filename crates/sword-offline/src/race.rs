//! Tree-vs-tree race checking, evidence chains, and race reports.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use sword_itree::for_each_candidate_pair_fp;
use sword_obs::{Histogram, SiteCounters};
use sword_osl::explain_concurrency;
use sword_solver::{congruence_admissible, OverlapWitness, StridedInterval, Tier};
use sword_trace::{AccessKind, PcId, PcTable, ThreadId};

use crate::analyze::{FunnelConfig, SolverChoice, TierCounters};
use crate::build::{AccessMeta, BiTree};
use crate::intervals::Interval;
use crate::verdicts::VerdictCache;

/// Dedup key: the unordered pair of source locations, which is how the
/// paper's tables count races.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RaceKey {
    /// Smaller PC of the pair.
    pub pc_lo: PcId,
    /// Larger PC of the pair.
    pub pc_hi: PcId,
}

impl RaceKey {
    /// Builds the unordered key.
    pub fn new(a: PcId, b: PcId) -> Self {
        if a <= b {
            RaceKey { pc_lo: a, pc_hi: b }
        } else {
            RaceKey { pc_lo: b, pc_hi: a }
        }
    }
}

/// One witnessing access of a race: where it ran, why its interval is
/// concurrent with the partner's, and where its raw events live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessSite {
    /// Interned source location.
    pub pc: PcId,
    /// Read/write/atomic classification.
    pub kind: AccessKind,
    /// Executing thread.
    pub tid: ThreadId,
    /// Parallel region id of the barrier interval.
    pub pid: u64,
    /// Barrier-interval id within the region.
    pub bid: u32,
    /// The interval's full offset-span label, rendered (`[0,1][1,2]`).
    pub label: String,
    /// The summarized strided access the solver reasoned about.
    pub interval: StridedInterval,
    /// First byte of the interval's events in `thread_{tid}.log`.
    pub log_begin: u64,
    /// One past the last byte of the interval's events.
    pub log_end: u64,
    /// The solver witness's access index into [`AccessSite::interval`]
    /// (`addr = base + stride*index + byte`).
    pub index: u64,
    /// The solver witness's byte offset within that access.
    pub byte: u64,
}

/// The full evidence chain of one reported race: both witnessing
/// accesses (in canonical order, see [`check_pair`]), the offset-span
/// derivation of why their intervals are concurrent, and the solver's
/// concrete model of the overlap constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evidence {
    /// Canonically-first witnessing access.
    pub a: AccessSite,
    /// Canonically-second witnessing access.
    pub b: AccessSite,
    /// The `osl` derivation lines (see `sword_osl::explain_concurrency`)
    /// for the two intervals' labels.
    pub concurrency: Vec<String>,
    /// The solver's variable assignment: `witness.addr = a.interval.base
    /// + a.interval.stride * witness.x0 + witness.s0`, same for side b.
    pub witness: OverlapWitness,
}

/// Ordering key of one evidence side within the session (see
/// [`Race::side_pos`]).
type SidePos = (u64, u32, u64, ThreadId, PcId, u8, u64, u64, u64, u64);

/// One reported data race (deduplicated source-line pair).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// Dedup key.
    pub key: RaceKey,
    /// Access kind at `pc_lo`'s side of the first witness.
    pub kind_a: AccessKind,
    /// Access kind at `pc_hi`'s side of the first witness.
    pub kind_b: AccessKind,
    /// A concrete shared address from the constraint solve.
    pub witness_addr: u64,
    /// Threads of the first witnessing pair.
    pub tids: (ThreadId, ThreadId),
    /// Region in which the first witness occurred.
    pub region: u64,
    /// How many interval pairs exhibited this source-line pair.
    pub occurrences: u64,
    /// Evidence chain of the first witnessing pair (canonical session
    /// order — independent of worker scheduling).
    pub evidence: Evidence,
}

impl Race {
    /// Renders the race with resolved source locations.
    pub fn render(&self, pcs: &PcTable) -> String {
        format!(
            "race: {} ({:?}) <-> {} ({:?}) at addr {:#x} [threads {} vs {}, region {}, seen {}x]",
            pcs.display(self.key.pc_lo),
            self.kind_a,
            pcs.display(self.key.pc_hi),
            self.kind_b,
            self.witness_addr,
            self.tids.0,
            self.tids.1,
            self.region,
            self.occurrences
        )
    }

    /// Renders the full evidence chain as indented text (the body of
    /// `sword explain` and of an HTML race card).
    pub fn render_evidence(&self, pcs: &PcTable) -> String {
        let ev = &self.evidence;
        let mut out = String::new();
        let side = |out: &mut String, name: &str, s: &AccessSite| {
            out.push_str(&format!(
                "{name}: {} ({:?}) on thread {}\n",
                pcs.display(s.pc),
                s.kind,
                s.tid
            ));
            out.push_str(&format!(
                "  barrier interval: region {}, interval {}, label {}\n",
                s.pid, s.bid, s.label
            ));
            out.push_str(&format!(
                "  access pattern: base {:#x}, stride {}, count {}, size {} ({} accesses)\n",
                s.interval.base,
                s.interval.stride,
                s.interval.count,
                s.interval.size,
                s.interval.len()
            ));
            out.push_str(&format!(
                "  log bytes: [{}, {}) of thread_{}.log\n",
                s.log_begin, s.log_end, s.tid
            ));
        };
        side(&mut out, "side A", &ev.a);
        side(&mut out, "side B", &ev.b);
        out.push_str("concurrency (offset-span labels):\n");
        for line in &ev.concurrency {
            out.push_str(&format!("  {line}\n"));
        }
        let w = &ev.witness;
        out.push_str("solver witness (overlap constraint model):\n");
        out.push_str(&format!(
            "  addr {:#x} = A.base {:#x} + A.stride {} * x0 {} + s0 {}\n",
            w.addr, ev.a.interval.base, ev.a.interval.stride, w.x0, w.s0
        ));
        out.push_str(&format!(
            "  addr {:#x} = B.base {:#x} + B.stride {} * x1 {} + s1 {}\n",
            w.addr, ev.b.interval.base, ev.b.interval.stride, w.x1, w.s1
        ));
        out.push_str(&format!(
            "occurrences: {} interval pair{} exhibited this source pair (first shown)\n",
            self.occurrences,
            if self.occurrences == 1 { "" } else { "s" }
        ));
        out
    }

    /// Canonical session position of one evidence side: barrier-interval
    /// coordinates first, then the access identity within the interval —
    /// two different node pairs of the *same* two intervals must not tie,
    /// or batch and live could keep different witnesses.
    fn side_pos(s: &AccessSite) -> SidePos {
        (
            s.pid,
            s.bid,
            s.log_begin,
            s.tid,
            s.pc,
            s.kind.code(),
            s.interval.base,
            s.interval.stride,
            s.interval.count,
            s.interval.size,
        )
    }

    /// Deterministic "how early in the session is this witness" rank:
    /// a witnessing *pair* exists once its later interval exists, so the
    /// primary component is the later side's position. Independent of
    /// worker scheduling and of batch-vs-live processing order, which is
    /// what makes "keep the first occurrence" reproducible.
    fn rank(&self) -> (SidePos, SidePos, u64, u64) {
        let pa = Self::side_pos(&self.evidence.a);
        let pb = Self::side_pos(&self.evidence.b);
        let (lo, hi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        (hi, lo, self.evidence.witness.addr, self.region)
    }
}

/// Mutable race accumulator with source-line-pair dedup.
///
/// Dedup keeps the evidence of the *first* occurrence in canonical
/// session order (see `Race::rank`) and counts every occurrence.
#[derive(Debug, Default)]
pub struct RaceSet {
    races: HashMap<RaceKey, Race>,
    /// Dynamic (non-deduplicated) racy node-pair count.
    pub raw_pairs: u64,
}

impl RaceSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one racy node pair.
    pub fn record(&mut self, race: Race) {
        self.raw_pairs += 1;
        match self.races.entry(race.key) {
            Entry::Occupied(mut e) => {
                let r = e.get_mut();
                r.occurrences += 1;
                if race.rank() < r.rank() {
                    let occurrences = r.occurrences;
                    *r = race;
                    r.occurrences = occurrences;
                }
            }
            Entry::Vacant(v) => {
                v.insert(race);
            }
        }
    }

    /// Merges another set (parallel workers).
    pub fn merge(&mut self, other: RaceSet) {
        self.raw_pairs += other.raw_pairs;
        for (key, race) in other.races {
            match self.races.entry(key) {
                Entry::Occupied(mut e) => {
                    let r = e.get_mut();
                    let occurrences = r.occurrences + race.occurrences;
                    if race.rank() < r.rank() {
                        *r = race;
                    }
                    r.occurrences = occurrences;
                }
                Entry::Vacant(v) => {
                    v.insert(race);
                }
            }
        }
    }

    /// Number of distinct races.
    pub fn len(&self) -> usize {
        self.races.len()
    }

    /// `true` when this source-line pair was already recorded.
    pub fn contains(&self, key: &RaceKey) -> bool {
        self.races.contains_key(key)
    }

    /// Iterates the distinct races in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Race> {
        self.races.values()
    }

    /// `true` when no races were recorded.
    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }

    /// Sorted race list.
    pub fn into_sorted(self) -> Vec<Race> {
        let mut v: Vec<Race> = self.races.into_values().collect();
        v.sort_by_key(|r| r.key);
        v
    }
}

/// Statistics of one tree-vs-tree comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Node pairs whose coarse ranges overlapped.
    pub candidates: u64,
    /// Exact constraint solves performed.
    pub solver_calls: u64,
    /// Candidate pairs rejected by the fingerprint screen before the
    /// solver (`solver_calls + prescreened` is invariant across masks).
    pub prescreened: u64,
}

/// The per-run solve context `check_pair` shares across every tree pair:
/// solver choice, funnel screen mask, the shared verdict memo, and the
/// per-tier decision counters.
#[derive(Clone, Copy)]
pub struct CompareCtx<'a> {
    /// Exact-overlap solver backend.
    pub solver: SolverChoice,
    /// Which funnel screens are active.
    pub funnel: FunnelConfig,
    /// Shared verdict memo (may be disabled).
    pub cache: &'a VerdictCache,
    /// Shared per-tier decision counters.
    pub tiers: &'a TierCounters,
}

/// One candidate pair that survived the screens, in canonical side order,
/// queued for the (optionally stride-class-sorted) solve loop.
struct PendingSolve {
    i0: StridedInterval,
    m0: AccessMeta,
    i1: StridedInterval,
    m1: AccessMeta,
    /// `true` when side 0 is the caller's `a` tree (evidence needs each
    /// side's barrier-interval provenance).
    zero_is_a: bool,
}

/// Canonical ordering key of one side of a candidate node pair. Every
/// field is scheduling-independent, and the two sides of a `check_pair`
/// always come from different threads, so the key is a strict total
/// order over the pair.
fn side_key(
    ctx: &Interval,
    iv: &StridedInterval,
    meta: &AccessMeta,
) -> (PcId, ThreadId, u64, u32, u64, u64, u64, u64, u64, u8) {
    (
        meta.pc,
        ctx.tid,
        ctx.meta.pid,
        ctx.meta.bid,
        ctx.meta.data_begin,
        iv.base,
        iv.stride,
        iv.count,
        iv.size,
        meta.kind.code(),
    )
}

/// Compares two interval trees and records races with evidence.
///
/// For every candidate pair (coarse `[begin,end)` overlap found through
/// the augmented tree), applies the access-compatibility conditions and
/// then the exact strided-overlap constraint with the solver configured
/// in `ctx`. The funnel screens in `ctx.funnel` run first: a bounding-box
/// reject over the whole tree pair, the walk-level fingerprint congruence
/// screen per candidate (counted in `prescreened`, never reaching the
/// verdict cache), and stride-class batching of the surviving solves. All
/// screens are result-neutral: verdicts, witnesses, and candidate counts
/// are byte-identical for every screen mask.
///
/// Before the solve, the two sides are put into a *canonical order* (the
/// `side_key` tuple), so the witness the solver returns — and hence
/// the whole evidence chain — is identical no matter which argument
/// order a caller used. This is what makes batch (multi-worker,
/// nondeterministic reduction order) and live (ingest order) analysis
/// produce byte-identical evidence.
///
/// `ca`/`cb` carry each tree's barrier-interval provenance (labels, log
/// byte ranges) into the evidence record.
///
/// `solver_nanos`, when present, receives the latency of every exact
/// solve (the registry's `sword_solver_call_nanos` histogram); timing is
/// taken only around the solver itself, so candidate filtering stays
/// unmeasured and uninstrumented runs pay nothing.
///
/// `sites`, when present, accumulates per-PC attribution (accesses
/// scanned, pairs checked, solver calls, racy pairs).
///
/// `ctx.cache` memoizes exact solves across structurally-identical
/// interval pairs (in canonical side order, so the memoized witness is
/// exactly the witness a fresh solve would return). `solver_calls` counts
/// *logical* solves — memo hits included — which is what keeps the
/// batch/live counter contract independent of cache state; the latency
/// histogram records actual computes only, and `ctx.tiers` records the
/// deciding funnel tier per logical solve (memoized answers replay the
/// tier that originally decided).
#[allow(clippy::too_many_arguments)]
pub fn check_pair(
    a: &BiTree,
    ca: &Interval,
    b: &BiTree,
    cb: &Interval,
    ctx: &CompareCtx<'_>,
    races: &mut RaceSet,
    solver_nanos: Option<&Histogram>,
    sites: Option<&mut SiteCounters>,
) -> PairStats {
    let mut stats = PairStats::default();
    let mut sites = sites;
    // Bounding-box reject: when the two trees' covered address ranges are
    // disjoint, the candidate walk cannot yield a single pair, so skipping
    // it is counter-neutral (candidates would be 0 either way).
    if ctx.funnel.bbox {
        if let (Some((a_lo, a_hi)), Some((b_lo, b_hi))) = (a.tree.bounds(), b.tree.bounds()) {
            if a_hi <= b_lo || b_hi <= a_lo {
                return stats;
            }
        }
    }
    let mut pending: Vec<PendingSolve> = Vec::new();
    for_each_candidate_pair_fp(&a.tree, &b.tree, |ia, fa, ma, ib, fb, mb| {
        stats.candidates += 1;
        if let Some(s) = sites.as_deref_mut() {
            s.candidate(ma.pc, ia.len(), mb.pc, ib.len());
        }
        if !a.can_race(ma, b, mb) {
            return;
        }
        // Fingerprint pre-screen: the congruence reject, run during the
        // walk from the cached node fingerprints. Rejected pairs never
        // reach the verdict cache — exactly the pairs the solver's
        // GcdReject tier would refuse, so verdicts are unchanged.
        if ctx.funnel.prescreen && !congruence_admissible(ia, fa, ib, fb) {
            stats.prescreened += 1;
            ctx.tiers.record(Tier::Prescreen);
            return;
        }
        // Canonical side order: the solve and its witness must not
        // depend on which tree was the caller's `a`.
        let zero_is_a = side_key(ca, ia, ma) <= side_key(cb, ib, mb);
        let p = if zero_is_a {
            PendingSolve { i0: *ia, m0: *ma, i1: *ib, m1: *mb, zero_is_a }
        } else {
            PendingSolve { i0: *ib, m0: *mb, i1: *ia, m1: *ma, zero_is_a }
        };
        pending.push(p);
    });
    // Batched compare: group the surviving pairs by stride class so the
    // tier dispatch in the solve loop is branch-predictable. The sort is
    // result-neutral — race dedup ranks are order-independent.
    if ctx.funnel.batch {
        pending.sort_by_key(|p| (p.i0.stride, p.i0.size, p.i1.stride, p.i1.size));
    }
    // The reported region is derived from the intervals themselves (not
    // caller bookkeeping, which differs between batch group enumeration
    // and live ingest order): the smaller region id of the two sides.
    let region = ca.meta.pid.min(cb.meta.pid);
    for p in &pending {
        let (i0, m0, i1, m1) = (&p.i0, &p.m0, &p.i1, &p.m1);
        let (c0, c1) = if p.zero_is_a { (ca, cb) } else { (cb, ca) };
        stats.solver_calls += 1;
        if let Some(s) = sites.as_deref_mut() {
            s.solve(m0.pc, m1.pc);
        }
        let (witness, tier) = ctx.cache.solve(ctx.solver, ctx.funnel.gcd, i0, i1, &mut |compute| {
            let t0 = solver_nanos.map(|_| Instant::now());
            let w = compute();
            if let (Some(hist), Some(t0)) = (solver_nanos, t0) {
                hist.record(t0.elapsed().as_nanos() as u64);
            }
            w
        });
        ctx.tiers.record(tier);
        if let Some(w) = witness {
            if let Some(s) = sites.as_deref_mut() {
                s.race(m0.pc, m1.pc);
            }
            let key = RaceKey::new(m0.pc, m1.pc);
            // Keep kinds aligned with the key's (lo, hi) order.
            let (kind_a, kind_b) =
                if m0.pc <= m1.pc { (m0.kind, m1.kind) } else { (m1.kind, m0.kind) };
            let site = |iv: &StridedInterval, meta: &AccessMeta, ctx: &Interval, x: u64, s: u64| {
                AccessSite {
                    pc: meta.pc,
                    kind: meta.kind,
                    tid: ctx.tid,
                    pid: ctx.meta.pid,
                    bid: ctx.meta.bid,
                    label: ctx.label.to_string(),
                    interval: *iv,
                    log_begin: ctx.meta.data_begin,
                    log_end: ctx.meta.data_begin + ctx.meta.size,
                    index: x,
                    byte: s,
                }
            };
            races.record(Race {
                key,
                kind_a,
                kind_b,
                witness_addr: w.addr,
                tids: (c0.tid, c1.tid),
                region,
                occurrences: 1,
                evidence: Evidence {
                    a: site(i0, m0, c0, w.x0, w.s0),
                    b: site(i1, m1, c1, w.x1, w.s1),
                    concurrency: explain_concurrency(&c0.label, &c1.label),
                    witness: w,
                },
            });
        }
    }
    stats
}

/// Test helper: a synthetic evidence record for Race-literal tests
/// across the crate.
#[cfg(test)]
pub(crate) fn test_evidence(pc_a: PcId, pc_b: PcId, addr: u64) -> Evidence {
    let site = |pc: PcId, tid: ThreadId| AccessSite {
        pc,
        kind: AccessKind::Write,
        tid,
        pid: 0,
        bid: 0,
        label: format!("[0,1][{tid},8]"),
        interval: StridedInterval::single(addr, 8),
        log_begin: tid as u64 * 1000,
        log_end: tid as u64 * 1000 + 100,
        index: 0,
        byte: 0,
    };
    Evidence {
        a: site(pc_a, 0),
        b: site(pc_b, 1),
        concurrency: vec!["synthetic".to_string()],
        witness: OverlapWitness { addr, x0: 0, s0: 0, x1: 0, s1: 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_itree::IntervalTree;
    use sword_osl::Label;
    use sword_trace::MetaRecord;

    fn tree_of(tid: ThreadId, nodes: &[(StridedInterval, AccessMeta)]) -> BiTree {
        let mut tree = IntervalTree::new();
        for (iv, m) in nodes {
            tree.insert(*iv, *m);
        }
        BiTree {
            tid,
            tree,
            mutex_sets: vec![vec![], vec![7]],
            accesses: nodes.len() as u64,
            bytes_read: 0,
        }
    }

    /// Barrier-interval provenance of a test tree: slot `tid` of one
    /// 8-wide top-level region.
    pub(crate) fn ctx_of(tid: ThreadId) -> Interval {
        Interval {
            tid,
            meta: MetaRecord {
                pid: 0,
                ppid: None,
                bid: 0,
                offset: tid as u64,
                span: 8,
                level: 1,
                data_begin: tid as u64 * 1000,
                size: 100,
            },
            label: Label::root().fork(tid as u64, 8),
        }
    }

    fn meta(kind: AccessKind, pc: PcId, mset: u32) -> AccessMeta {
        AccessMeta { kind, pc, mset }
    }

    /// Runs `check_pair` with a throwaway tier-counter set.
    #[allow(clippy::too_many_arguments)]
    fn run_pair(
        a: &BiTree,
        ca: &Interval,
        b: &BiTree,
        cb: &Interval,
        solver: SolverChoice,
        funnel: FunnelConfig,
        cache: &VerdictCache,
        races: &mut RaceSet,
        hist: Option<&Histogram>,
        sites: Option<&mut SiteCounters>,
    ) -> PairStats {
        let tiers = TierCounters::new();
        check_pair(
            a,
            ca,
            b,
            cb,
            &CompareCtx { solver, funnel, cache, tiers: &tiers },
            races,
            hist,
            sites,
        )
    }

    #[test]
    fn write_read_overlap_is_a_race() {
        let a =
            tree_of(0, &[(StridedInterval::new(0x100, 8, 99, 8), meta(AccessKind::Write, 1, 0))]);
        let b =
            tree_of(1, &[(StridedInterval::new(0x100, 8, 99, 8), meta(AccessKind::Read, 2, 0))]);
        let mut races = RaceSet::new();
        let hist = Histogram::default();
        let stats = run_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            SolverChoice::Diophantine,
            FunnelConfig::ALL,
            &VerdictCache::disabled(),
            &mut races,
            Some(&hist),
            None,
        );
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.solver_calls, 1);
        assert_eq!(hist.count(), 1, "each exact solve records one latency sample");
        assert_eq!(races.len(), 1);
        let race = races.into_sorted().pop().unwrap();
        assert_eq!(race.key, RaceKey::new(1, 2));
        assert_eq!(race.tids, (0, 1));
        // Evidence carries both coordinates and the solver model.
        assert_eq!(race.evidence.a.tid, 0);
        assert_eq!(race.evidence.b.tid, 1);
        assert_eq!(race.evidence.a.label, "[0,1][0,8]");
        assert_eq!(race.evidence.a.log_begin, 0);
        assert_eq!(race.evidence.a.log_end, 100);
        assert_eq!(race.evidence.b.log_begin, 1000);
        assert_eq!(race.evidence.witness.addr, race.witness_addr);
        assert!(race.evidence.concurrency.last().unwrap().contains("CONCURRENT"));
        // The witness model is internally consistent.
        let w = &race.evidence.witness;
        let ea = &race.evidence.a;
        assert_eq!(ea.interval.base + ea.interval.stride * w.x0 + w.s0, w.addr);
        assert_eq!(ea.index, w.x0);
        assert_eq!(ea.byte, w.s0);
    }

    #[test]
    fn evidence_is_argument_order_independent() {
        // The whole point of canonical side ordering: swapping the
        // caller's argument order must not change the recorded race.
        // A shared *enabled* cache makes the second call a memo hit, so
        // this also proves memoized evidence equals computed evidence.
        let shared = VerdictCache::new(true);
        let a =
            tree_of(0, &[(StridedInterval::new(0x100, 16, 50, 8), meta(AccessKind::Write, 3, 0))]);
        let b =
            tree_of(1, &[(StridedInterval::new(0x104, 16, 50, 8), meta(AccessKind::Write, 9, 0))]);
        let mut fwd = RaceSet::new();
        run_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            SolverChoice::Diophantine,
            FunnelConfig::ALL,
            &shared,
            &mut fwd,
            None,
            None,
        );
        let mut rev = RaceSet::new();
        run_pair(
            &b,
            &ctx_of(1),
            &a,
            &ctx_of(0),
            SolverChoice::Diophantine,
            FunnelConfig::ALL,
            &shared,
            &mut rev,
            None,
            None,
        );
        assert_eq!(shared.solve_hits(), 1, "the swapped call hit the memo");
        assert!(!fwd.is_empty(), "the pair overlaps, so a race is recorded");
        assert_eq!(fwd.into_sorted(), rev.into_sorted());
    }

    #[test]
    fn site_counters_attribute_compare_work() {
        let a =
            tree_of(0, &[(StridedInterval::new(0x100, 8, 9, 8), meta(AccessKind::Write, 1, 0))]);
        let b = tree_of(1, &[(StridedInterval::new(0x100, 8, 9, 8), meta(AccessKind::Read, 2, 0))]);
        let mut races = RaceSet::new();
        let mut sites = SiteCounters::new();
        run_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            SolverChoice::Diophantine,
            FunnelConfig::ALL,
            &VerdictCache::disabled(),
            &mut races,
            None,
            Some(&mut sites),
        );
        let table = sword_obs::SiteTable::new();
        table.absorb(sites);
        let snap = table.snapshot();
        assert_eq!(snap.len(), 2);
        let (pc1, pc2) = (snap[0].1, snap[1].1);
        assert_eq!(pc1.scanned, 10, "interval.len() accesses credited");
        assert_eq!(pc1.pairs, 1);
        assert_eq!(pc1.solver_calls, 1);
        assert_eq!(pc1.races, 1);
        assert_eq!(pc1, pc2, "both sides credited symmetrically");
    }

    #[test]
    fn read_read_is_not_checked() {
        let a = tree_of(0, &[(StridedInterval::new(0x100, 8, 9, 8), meta(AccessKind::Read, 1, 0))]);
        let b = tree_of(1, &[(StridedInterval::new(0x100, 8, 9, 8), meta(AccessKind::Read, 2, 0))]);
        let mut races = RaceSet::new();
        let stats = run_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            SolverChoice::Diophantine,
            FunnelConfig::ALL,
            &VerdictCache::disabled(),
            &mut races,
            None,
            None,
        );
        assert_eq!(stats.solver_calls, 0);
        assert!(races.is_empty());
    }

    #[test]
    fn common_lock_suppresses() {
        let a = tree_of(0, &[(StridedInterval::single(0x100, 8), meta(AccessKind::Write, 1, 1))]);
        let b = tree_of(1, &[(StridedInterval::single(0x100, 8), meta(AccessKind::Write, 2, 1))]);
        let mut races = RaceSet::new();
        run_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            SolverChoice::Diophantine,
            FunnelConfig::ALL,
            &VerdictCache::disabled(),
            &mut races,
            None,
            None,
        );
        assert!(races.is_empty());
    }

    #[test]
    fn figure4_interleaved_strides_no_race() {
        // Candidate by range, rejected before the exact solve: the two
        // stride-8 intervals occupy disjoint residues mod gcd = 8, so the
        // fingerprint prescreen retires the pair during the tree walk.
        let a = tree_of(0, &[(StridedInterval::new(10, 8, 4, 4), meta(AccessKind::Write, 1, 0))]);
        let b = tree_of(1, &[(StridedInterval::new(14, 8, 4, 4), meta(AccessKind::Write, 2, 0))]);
        let mut races = RaceSet::new();
        let tiers = TierCounters::new();
        let cache = VerdictCache::disabled();
        let stats = check_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            &CompareCtx {
                solver: SolverChoice::Diophantine,
                funnel: FunnelConfig::ALL,
                cache: &cache,
                tiers: &tiers,
            },
            &mut races,
            None,
            None,
        );
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.solver_calls, 0, "the prescreen retired the pair");
        assert_eq!(stats.prescreened, 1);
        assert_eq!(tiers.get(Tier::Prescreen), 1);
        assert!(races.is_empty());

        // With every screen masked off the pair reaches the funnel, which
        // rejects it at the congruence tier with the same verdict.
        let mut races_none = RaceSet::new();
        let tiers_none = TierCounters::new();
        let stats_none = check_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            &CompareCtx {
                solver: SolverChoice::Diophantine,
                funnel: FunnelConfig::NONE,
                cache: &cache,
                tiers: &tiers_none,
            },
            &mut races_none,
            None,
            None,
        );
        assert_eq!(stats_none.candidates, 1);
        assert_eq!(stats_none.solver_calls, 1);
        assert_eq!(stats_none.prescreened, 0);
        assert_eq!(tiers_none.get(Tier::Diophantine), 1, "gcd screen off → full search");
        assert!(races_none.is_empty());

        // The ILP solver agrees.
        let mut races2 = RaceSet::new();
        run_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            SolverChoice::Ilp,
            FunnelConfig::NONE,
            &VerdictCache::disabled(),
            &mut races2,
            None,
            None,
        );
        assert!(races2.is_empty());
    }

    #[test]
    fn dedup_by_source_pair() {
        // Many racing interval pairs from the same two lines → one race.
        let nodes_a: Vec<_> = (0..10)
            .map(|k| {
                (StridedInterval::new(0x1000 + k * 0x100, 8, 9, 8), meta(AccessKind::Write, 1, 0))
            })
            .collect();
        let nodes_b: Vec<_> = (0..10)
            .map(|k| {
                (StridedInterval::new(0x1000 + k * 0x100, 8, 9, 8), meta(AccessKind::Read, 2, 0))
            })
            .collect();
        let a = tree_of(0, &nodes_a);
        let b = tree_of(1, &nodes_b);
        let mut races = RaceSet::new();
        run_pair(
            &a,
            &ctx_of(0),
            &b,
            &ctx_of(1),
            SolverChoice::Diophantine,
            FunnelConfig::ALL,
            &VerdictCache::disabled(),
            &mut races,
            None,
            None,
        );
        assert_eq!(races.len(), 1);
        assert_eq!(races.raw_pairs, 10);
        let race = &races.into_sorted()[0];
        assert_eq!(race.occurrences, 10);
        // Dedup fairness: the kept witness is the earliest racy node pair
        // (smallest witness address here — same interval coordinates).
        assert_eq!(race.evidence.witness.addr, 0x1000);
    }

    #[test]
    fn funnel_masks_are_result_neutral() {
        // Every screen mask must yield byte-identical races; only the
        // split between `solver_calls` and `prescreened` may move.
        let a = tree_of(
            0,
            &[
                (StridedInterval::new(0x100, 8, 99, 8), meta(AccessKind::Write, 1, 0)),
                (StridedInterval::new(0x1000, 16, 50, 8), meta(AccessKind::Write, 3, 0)),
                (StridedInterval::new(0x2000, 8, 4, 4), meta(AccessKind::Write, 5, 0)),
            ],
        );
        let b = tree_of(
            1,
            &[
                (StridedInterval::new(0x104, 8, 99, 4), meta(AccessKind::Read, 2, 0)),
                (StridedInterval::new(0x1008, 16, 50, 8), meta(AccessKind::Read, 4, 0)),
                (StridedInterval::new(0x2004, 8, 4, 4), meta(AccessKind::Read, 6, 0)),
            ],
        );
        let masks = [
            FunnelConfig::ALL,
            FunnelConfig::NONE,
            FunnelConfig { gcd: false, ..FunnelConfig::ALL },
            FunnelConfig { prescreen: false, ..FunnelConfig::ALL },
            FunnelConfig { bbox: false, ..FunnelConfig::ALL },
            FunnelConfig { batch: false, ..FunnelConfig::ALL },
        ];
        let mut baseline: Option<(Vec<Race>, u64, u64)> = None;
        for funnel in masks {
            let mut races = RaceSet::new();
            let stats = run_pair(
                &a,
                &ctx_of(0),
                &b,
                &ctx_of(1),
                SolverChoice::Diophantine,
                funnel,
                &VerdictCache::disabled(),
                &mut races,
                None,
                None,
            );
            let got =
                (races.into_sorted(), stats.candidates, stats.solver_calls + stats.prescreened);
            match &baseline {
                None => baseline = Some(got),
                Some(want) => assert_eq!(&got, want, "mask {funnel:?} changed the result"),
            }
        }
        let (races, _, decided) = baseline.unwrap();
        assert!(!races.is_empty(), "the dense and in-phase pairs race");
        assert_eq!(decided, 3, "every same-slab candidate pair is decided exactly once");
    }

    #[test]
    fn dedup_keeps_first_occurrence_regardless_of_arrival_order() {
        let early = Race {
            key: RaceKey::new(1, 2),
            kind_a: AccessKind::Write,
            kind_b: AccessKind::Read,
            witness_addr: 0x10,
            tids: (0, 1),
            region: 0,
            occurrences: 1,
            evidence: test_evidence(1, 2, 0x10),
        };
        let mut late = early.clone();
        late.evidence.a.log_begin = 5000;
        late.evidence.a.bid = 3;
        late.witness_addr = 0x99;

        // Record late first, then early: the early witness must win.
        let mut s1 = RaceSet::new();
        s1.record(late.clone());
        s1.record(early.clone());
        let r1 = s1.into_sorted().pop().unwrap();
        assert_eq!(r1.occurrences, 2);
        assert_eq!(r1.evidence, early.evidence);

        // Same via merge (worker arrival order).
        let mut s2 = RaceSet::new();
        s2.record(late);
        let mut s3 = RaceSet::new();
        s3.record(early.clone());
        s2.merge(s3);
        let r2 = s2.into_sorted().pop().unwrap();
        assert_eq!(r2.occurrences, 2);
        assert_eq!(r2.evidence, early.evidence);
    }

    #[test]
    fn merge_accumulates() {
        let mut s1 = RaceSet::new();
        let mut s2 = RaceSet::new();
        let race = Race {
            key: RaceKey::new(5, 2),
            kind_a: AccessKind::Write,
            kind_b: AccessKind::Read,
            witness_addr: 0x10,
            tids: (0, 1),
            region: 0,
            occurrences: 1,
            evidence: test_evidence(2, 5, 0x10),
        };
        s1.record(race.clone());
        s2.record(race.clone());
        s2.record(Race { key: RaceKey::new(9, 9), ..race.clone() });
        s1.merge(s2);
        assert_eq!(s1.len(), 2);
        assert_eq!(s1.raw_pairs, 3);
        let sorted = s1.into_sorted();
        assert_eq!(sorted[0].key, RaceKey::new(2, 5));
        assert_eq!(sorted[0].occurrences, 2);
    }

    #[test]
    fn race_key_is_unordered() {
        assert_eq!(RaceKey::new(3, 7), RaceKey::new(7, 3));
    }

    #[test]
    fn render_resolves_locations() {
        let mut pcs = PcTable::new();
        let p1 = pcs.intern("kernel.rs", 10);
        let p2 = pcs.intern("kernel.rs", 20);
        let race = Race {
            key: RaceKey::new(p1, p2),
            kind_a: AccessKind::Write,
            kind_b: AccessKind::Read,
            witness_addr: 0xABC,
            tids: (2, 5),
            region: 3,
            occurrences: 4,
            evidence: test_evidence(p1, p2, 0xABC),
        };
        let s = race.render(&pcs);
        assert!(s.contains("kernel.rs:10"));
        assert!(s.contains("kernel.rs:20"));
        assert!(s.contains("0xabc"));
        let body = race.render_evidence(&pcs);
        assert!(body.contains("side A: kernel.rs:10"));
        assert!(body.contains("side B: kernel.rs:20"));
        assert!(body.contains("log bytes: [0, 100) of thread_0.log"));
        assert!(body.contains("solver witness"));
        assert!(body.contains("4 interval pairs"));
    }
}
