//! Shared verdict memoization for the analysis core.
//!
//! Both analysis front-ends — the batch pipeline and the live analyzer —
//! spend their time answering two kinds of questions over and over:
//!
//! * **Region-pair verdicts**: given two parallel regions' fork labels,
//!   are all their member-interval pairs concurrent, ordered, or does
//!   each pair need its own barrier-aware check? The answer depends only
//!   on the two labels' *structural identity* (their flat offset-span
//!   pair chains), so sessions with many structurally-identical region
//!   pairs (every iteration of a fork loop, every fuzz-corpus clone)
//!   re-derive the same verdict.
//! * **Solver verdicts**: given two strided intervals in canonical side
//!   order, does the exact overlap constraint have a witness? The solver
//!   is a pure function of `(i0, i1)`, so structurally-identical interval
//!   pairs — the common case when the same loop body runs in every
//!   barrier interval — always produce the *same witness*, which is what
//!   keeps memoized evidence byte-identical to recomputed evidence.
//!
//! [`VerdictCache`] memoizes both, shared by reference across pipeline
//! workers and polls. The cache can be disabled (`--no-verdict-cache`),
//! which turns every lookup into a plain compute — the equivalence tests
//! assert identical races and evidence with the cache on, off, batch,
//! and live.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use sword_osl::{Label, Ordering as OslOrdering};
use sword_solver::{solve_tiered, solve_tiered_ilp, OverlapWitness, StridedInterval, Tier};

use crate::analyze::SolverChoice;
use crate::intervals::is_prefix_related;

/// Region-pair classification, mirroring `build_structure`'s task kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionVerdict {
    /// Fork labels diverge concurrent: every member pair races-able.
    AllConcurrent,
    /// Prefix-related fork labels: per-pair barrier-aware checks.
    Filtered,
    /// Barrier/join-ordered: the whole region pair is pruned.
    Ordered,
}

/// Unordered structural key of a region pair: the two fork labels'
/// flat pair chains, smaller chain first (classification is symmetric).
type RegionKey = (Vec<u64>, Vec<u64>);

/// Structural key of a solver query: solver discriminant plus both
/// intervals *in canonical side order* (the witness depends on order, and
/// `check_pair` always queries canonically).
type SolveKey = (u8, StridedInterval, StridedInterval);

/// A memoized solver answer: the canonical witness (or `None`) plus the
/// funnel tier that decided the pair. Tiers are a pure function of the
/// key too, so memoizing them keeps per-tier counters logical —
/// identical cache on or off.
pub type SolveAnswer = (Option<OverlapWitness>, Tier);

/// The wrapper [`VerdictCache::solve`] runs around actual solver
/// computations only (never cache hits): callers hang latency recording
/// off it.
pub type SolveHook<'a> = &'a mut dyn FnMut(&dyn Fn() -> SolveAnswer) -> SolveAnswer;

/// Number of solver-memo shards (keeps worker contention low without a
/// concurrent map dependency).
const SOLVE_SHARDS: usize = 16;

#[derive(Debug, Default)]
struct Counters {
    region_hits: AtomicU64,
    region_misses: AtomicU64,
    solve_hits: AtomicU64,
    solve_misses: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    regions: Mutex<HashMap<RegionKey, RegionVerdict>>,
    solves: Vec<Mutex<HashMap<SolveKey, SolveAnswer>>>,
    counters: Counters,
}

/// Shared, cheaply-clonable verdict memo (see the module docs).
#[derive(Clone, Debug)]
pub struct VerdictCache {
    inner: Arc<Inner>,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::new(true)
    }
}

impl VerdictCache {
    /// A fresh cache; `enabled = false` makes every lookup a plain
    /// compute (the memo-free baseline).
    pub fn new(enabled: bool) -> Self {
        VerdictCache {
            inner: Arc::new(Inner {
                enabled,
                regions: Mutex::new(HashMap::new()),
                solves: (0..SOLVE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
                counters: Counters::default(),
            }),
        }
    }

    /// A disabled cache (every lookup computes).
    pub fn disabled() -> Self {
        VerdictCache::new(false)
    }

    /// `true` when memoization is on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Classifies a region pair by its fork labels, memoized on the
    /// unordered pair of flat label chains.
    pub fn region_verdict(&self, a: &Label, b: &Label) -> RegionVerdict {
        if !self.inner.enabled {
            return classify(a, b);
        }
        let (fa, fb) = (a.to_flat(), b.to_flat());
        let key = if fa <= fb { (fa, fb) } else { (fb, fa) };
        let mut memo = self.inner.regions.lock().expect("region memo poisoned");
        if let Some(v) = memo.get(&key) {
            self.inner.counters.region_hits.fetch_add(1, AtomicOrdering::Relaxed);
            return *v;
        }
        self.inner.counters.region_misses.fetch_add(1, AtomicOrdering::Relaxed);
        let verdict = classify(a, b);
        memo.insert(key, verdict);
        verdict
    }

    /// Solves the exact overlap constraint for `(i0, i1)` — canonical
    /// side order — memoized on the pair's structural identity. The
    /// solver is pure, so a memoized witness is *the* witness the solver
    /// would return, and evidence built from it is byte-identical. The
    /// deciding funnel tier is memoized alongside the witness.
    ///
    /// `gcd_screen` enables the solver-level congruence reject tier (it
    /// never changes the answer, only which tier reports the decision and
    /// how fast).
    ///
    /// `on_compute` runs around actual solves only (latency histograms
    /// must not record cache hits).
    pub fn solve(
        &self,
        solver: SolverChoice,
        gcd_screen: bool,
        i0: &StridedInterval,
        i1: &StridedInterval,
        on_compute: SolveHook<'_>,
    ) -> SolveAnswer {
        let compute = || match solver {
            SolverChoice::Diophantine => solve_tiered(i0, i1, gcd_screen),
            SolverChoice::Ilp => solve_tiered_ilp(i0, i1, gcd_screen),
        };
        if !self.inner.enabled {
            return on_compute(&compute);
        }
        let key: SolveKey = (solver as u8, *i0, *i1);
        let shard = &self.inner.solves[shard_of(&key)];
        if let Some(w) = shard.lock().expect("solver memo poisoned").get(&key) {
            self.inner.counters.solve_hits.fetch_add(1, AtomicOrdering::Relaxed);
            return *w;
        }
        // Compute outside the shard lock: a concurrent duplicate solve is
        // cheaper than serializing every distinct solve in the shard.
        self.inner.counters.solve_misses.fetch_add(1, AtomicOrdering::Relaxed);
        let answer = on_compute(&compute);
        shard.lock().expect("solver memo poisoned").insert(key, answer);
        answer
    }

    /// Region-verdict memo hits so far.
    pub fn region_hits(&self) -> u64 {
        self.inner.counters.region_hits.load(AtomicOrdering::Relaxed)
    }

    /// Region-verdict memo misses (actual classifications) so far.
    pub fn region_misses(&self) -> u64 {
        self.inner.counters.region_misses.load(AtomicOrdering::Relaxed)
    }

    /// Solver memo hits so far.
    pub fn solve_hits(&self) -> u64 {
        self.inner.counters.solve_hits.load(AtomicOrdering::Relaxed)
    }

    /// Solver memo misses (actual solves) so far.
    pub fn solve_misses(&self) -> u64 {
        self.inner.counters.solve_misses.load(AtomicOrdering::Relaxed)
    }

    /// Fraction of all verdict lookups (region + solver) answered from
    /// the memo; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.region_hits() + self.solve_hits();
        let total = hits + self.region_misses() + self.solve_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

fn shard_of(key: &SolveKey) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SOLVE_SHARDS
}

/// The (symmetric) region-pair classification itself.
fn classify(a: &Label, b: &Label) -> RegionVerdict {
    match a.compare_barrier_aware(b) {
        OslOrdering::Concurrent => RegionVerdict::AllConcurrent,
        _ if is_prefix_related(a, b) => RegionVerdict::Filtered,
        _ => RegionVerdict::Ordered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbl(chain: &[(u64, u64)]) -> Label {
        Label::from_chain(chain.iter().copied())
    }

    #[test]
    fn region_verdicts_match_direct_classification() {
        let cache = VerdictCache::new(true);
        let cases = [
            (lbl(&[(0, 1), (0, 2)]), lbl(&[(0, 1), (1, 2)]), RegionVerdict::AllConcurrent),
            (lbl(&[(0, 1)]), lbl(&[(0, 1), (0, 2)]), RegionVerdict::Filtered),
            (lbl(&[(0, 1)]), lbl(&[(1, 1)]), RegionVerdict::Ordered),
        ];
        for (a, b, want) in &cases {
            assert_eq!(cache.region_verdict(a, b), *want);
            assert_eq!(cache.region_verdict(b, a), *want, "classification is symmetric");
            assert_eq!(VerdictCache::disabled().region_verdict(a, b), *want);
        }
        assert_eq!(cache.region_misses(), 3, "one classification per distinct pair");
        assert_eq!(cache.region_hits(), 3, "swapped operands hit the unordered key");
    }

    #[test]
    fn solver_memo_returns_the_computed_witness() {
        let cache = VerdictCache::new(true);
        let i0 = StridedInterval::new(0x100, 8, 99, 8);
        let i1 = StridedInterval::new(0x104, 8, 99, 4);
        let computes = std::cell::Cell::new(0u32);
        let mut run = |f: &dyn Fn() -> SolveAnswer| {
            computes.set(computes.get() + 1);
            f()
        };
        let (w1, t1) = cache.solve(SolverChoice::Diophantine, true, &i0, &i1, &mut run);
        let (w2, t2) = cache.solve(SolverChoice::Diophantine, true, &i0, &i1, &mut run);
        assert_eq!(computes.get(), 1, "second lookup is a memo hit");
        assert_eq!((w1, t1), (w2, t2));
        assert_eq!(
            w1,
            sword_solver::strided_overlap_witness_full(&i0, &i1),
            "memo returns the pure result"
        );
        assert_eq!(t1, Tier::DenseLocate, "dense i0 against holey i1 resolves by locate");
        assert_eq!(cache.solve_hits(), 1);
        assert_eq!(cache.solve_misses(), 1);
        // Disjoint pair memoizes its None too.
        let far = StridedInterval::single(0x9999, 1);
        assert_eq!(
            cache.solve(SolverChoice::Diophantine, true, &i0, &far, &mut run),
            (None, Tier::RangeDisjoint)
        );
        assert_eq!(
            cache.solve(SolverChoice::Diophantine, true, &i0, &far, &mut run),
            (None, Tier::RangeDisjoint)
        );
        assert_eq!(computes.get(), 2);
        // The two solver choices memoize separately.
        let (w3, _) = cache.solve(SolverChoice::Ilp, true, &i0, &i1, &mut run);
        assert_eq!(computes.get(), 3);
        assert_eq!(w3, w1, "both solvers agree on the witness");
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache = VerdictCache::disabled();
        let i0 = StridedInterval::new(0x100, 8, 9, 8);
        let computes = std::cell::Cell::new(0u32);
        let mut run = |f: &dyn Fn() -> SolveAnswer| {
            computes.set(computes.get() + 1);
            f()
        };
        cache.solve(SolverChoice::Diophantine, true, &i0, &i0, &mut run);
        cache.solve(SolverChoice::Diophantine, true, &i0, &i0, &mut run);
        assert_eq!(computes.get(), 2);
        assert_eq!(cache.solve_hits() + cache.solve_misses(), 0, "no accounting when disabled");
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_combines_both_memos() {
        let cache = VerdictCache::new(true);
        let a = lbl(&[(0, 1), (0, 2)]);
        let b = lbl(&[(0, 1), (1, 2)]);
        cache.region_verdict(&a, &b); // miss
        cache.region_verdict(&a, &b); // hit
        cache.region_verdict(&a, &b); // hit
        let i = StridedInterval::new(0, 8, 9, 8);
        let mut run = |f: &dyn Fn() -> SolveAnswer| f();
        cache.solve(SolverChoice::Diophantine, true, &i, &i, &mut run); // miss
        cache.solve(SolverChoice::Diophantine, true, &i, &i, &mut run); // hit
        assert!((cache.hit_rate() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn memoized_tier_is_stable_across_hits() {
        let cache = VerdictCache::new(true);
        // Figure 4: both holey, congruence reject.
        let i0 = StridedInterval::new(10, 8, 4, 4);
        let i1 = StridedInterval::new(14, 8, 4, 4);
        let mut run = |f: &dyn Fn() -> SolveAnswer| f();
        let first = cache.solve(SolverChoice::Diophantine, true, &i0, &i1, &mut run);
        let second = cache.solve(SolverChoice::Diophantine, true, &i0, &i1, &mut run);
        assert_eq!(first, (None, Tier::GcdReject));
        assert_eq!(second, first, "hits replay the memoized tier");
        // Under --ilp the residue tier differs but the verdict agrees.
        let ilp = cache.solve(SolverChoice::Ilp, true, &i0, &i1, &mut run);
        assert_eq!(ilp, (None, Tier::GcdReject));
    }
}
