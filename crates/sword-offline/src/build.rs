//! Streaming construction of per-interval summary trees.
//!
//! An interval's events are pulled out of the log through a
//! [`LogSource`] — the zero-copy mapped image by default, the buffered
//! streaming reader as fallback — decoded in place, and folded into a
//! [`SummarizingBuilder`]: consecutive same-provenance accesses collapse
//! into strided interval-tree nodes, mutex acquire/release events maintain
//! the held-lock set attached to each node. Only an event torn across a
//! source-slice boundary is ever copied (into a small carry buffer);
//! everything else decodes straight off the source's borrowed bytes.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader};
use std::time::Instant;

use sword_itree::{IntervalTree, SummarizingBuilder};
use sword_metrics::MemGauge;
use sword_trace::{
    AccessKind, Event, EventDecoder, ImageCache, LogSource, MappedLog, MutexId, PcId, ReadMode,
    SessionDir, SourceStats, StreamSource, ThreadId,
};

use crate::intervals::Interval;
use crate::pipeline::WorkerStats;

/// Default streaming chunk: 64 KiB of encoded events at a time.
pub const DEFAULT_CHUNK_BYTES: usize = 64 << 10;

/// Metadata attached to every tree node: enough to apply the race
/// conditions and report source locations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AccessMeta {
    /// Read/write/atomic classification.
    pub kind: AccessKind,
    /// Interned source location.
    pub pc: PcId,
    /// Index into the owning [`BiTree::mutex_sets`].
    pub mset: u32,
}

/// The summarized accesses of one (thread, barrier interval).
#[derive(Debug)]
pub struct BiTree {
    /// Owning thread.
    pub tid: ThreadId,
    /// Strided intervals with access metadata.
    pub tree: IntervalTree<AccessMeta>,
    /// Interned held-mutex sets (sorted, deduplicated).
    pub mutex_sets: Vec<Vec<MutexId>>,
    /// Raw access events folded in (the paper's `N`).
    pub accesses: u64,
    /// Encoded bytes consumed.
    pub bytes_read: u64,
}

impl BiTree {
    /// Nodes in the summary tree (the paper's `M ≤ N`).
    pub fn node_count(&self) -> usize {
        self.tree.len()
    }

    /// Approximate heap footprint of this summary tree, charged to the
    /// analyzer's memory gauge while the tree is held (the Figure 6–8
    /// offline-memory rows). An estimate — the interval tree's exact
    /// allocation layout is private — counting per node the strided
    /// interval, its metadata, and red-black bookkeeping (two child
    /// links, parent, color word), plus the interned mutex sets.
    pub fn approx_bytes(&self) -> u64 {
        let per_node = std::mem::size_of::<sword_itree::StridedInterval>()
            + std::mem::size_of::<AccessMeta>()
            + 4 * std::mem::size_of::<usize>();
        let sets: usize = self
            .mutex_sets
            .iter()
            .map(|s| std::mem::size_of::<Vec<MutexId>>() + s.len() * std::mem::size_of::<MutexId>())
            .sum();
        (self.node_count() * per_node + sets) as u64
    }

    /// `true` when the two metadata records can race access-wise: at
    /// least one write, not both atomic, and disjoint mutex sets.
    pub fn can_race(&self, mine: &AccessMeta, other_tree: &BiTree, theirs: &AccessMeta) -> bool {
        if !mine.kind.is_write() && !theirs.kind.is_write() {
            return false;
        }
        if mine.kind.is_atomic() && theirs.kind.is_atomic() {
            return false;
        }
        sets_disjoint(
            &self.mutex_sets[mine.mset as usize],
            &other_tree.mutex_sets[theirs.mset as usize],
        )
    }
}

fn sets_disjoint(a: &[MutexId], b: &[MutexId]) -> bool {
    // Both sorted; merge scan.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// How many bytes of the next slice a torn-event carry tops itself up
/// with per attempt. Any single encoded event fits well within this.
const CARRY_TOP_UP: usize = 64;

/// The fold state: everything an event mutates while a tree is built.
struct Fold {
    builder: SummarizingBuilder<(PcId, u8, u8, u32), AccessMeta>,
    held: Vec<MutexId>,
    mutex_sets: Vec<Vec<MutexId>>,
    current_mset: u32,
    accesses: u64,
}

impl Fold {
    fn new() -> Fold {
        Fold {
            builder: SummarizingBuilder::new(),
            held: Vec::new(),
            mutex_sets: vec![Vec::new()],
            current_mset: 0,
            accesses: 0,
        }
    }

    fn apply(&mut self, event: Event) {
        match event {
            Event::Access(a) => {
                self.accesses += 1;
                let meta = AccessMeta { kind: a.kind, pc: a.pc, mset: self.current_mset };
                self.builder.insert_with(
                    (a.pc, a.kind.code(), a.size, self.current_mset),
                    a.addr,
                    a.size as u64,
                    || meta,
                );
            }
            Event::MutexAcquire(m) => {
                if let Err(at) = self.held.binary_search(&m) {
                    self.held.insert(at, m);
                }
                self.current_mset = intern_set(&mut self.mutex_sets, &self.held);
            }
            Event::MutexRelease(m) => {
                if let Ok(at) = self.held.binary_search(&m) {
                    self.held.remove(at);
                }
                self.current_mset = intern_set(&mut self.mutex_sets, &self.held);
            }
        }
    }
}

/// Decodes every complete event in `buf` into `fold`, returning how many
/// bytes were consumed. A partial event at the tail is left unconsumed
/// when `more` bytes are coming; with `more == false` it is a corrupt
/// stream.
fn decode_events(
    decoder: &mut EventDecoder,
    buf: &[u8],
    fold: &mut Fold,
    more: bool,
    tid: ThreadId,
) -> io::Result<usize> {
    let mut pos = 0usize;
    while pos < buf.len() {
        let mark = pos;
        match decoder.decode(buf, &mut pos) {
            Ok(event) => fold.apply(event),
            Err(_) if more => {
                // Partial event at the slice boundary: leave the tail for
                // the next slice. The decoder consumed nothing usable
                // past `mark`.
                return Ok(mark);
            }
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt event stream in tid {tid}: {e}"),
                ));
            }
        }
    }
    Ok(pos)
}

/// Builds the summary tree for one barrier interval by streaming
/// `[data_begin, data_begin + size)` out of `source`. Events decode
/// directly from the source's borrowed slices; `chunk_bytes` caps the
/// slice size on buffering sources.
pub fn build_tree(
    source: &mut dyn LogSource,
    tid: ThreadId,
    data_begin: u64,
    size: u64,
    chunk_bytes: usize,
) -> io::Result<BiTree> {
    let mut fold = Fold::new();
    let mut decoder = EventDecoder::new();
    let mut carry: Vec<u8> = Vec::new();
    let mut seen = 0u64;

    source.read_range_with(data_begin, size, chunk_bytes, &mut |slice| {
        seen += slice.len() as u64;
        let more_slices = seen < size;
        let mut s = slice;
        // Complete any event torn across the previous slice boundary:
        // top the carry up in small steps until it decodes through.
        while !carry.is_empty() && !s.is_empty() {
            let take = s.len().min(CARRY_TOP_UP);
            carry.extend_from_slice(&s[..take]);
            s = &s[take..];
            let consumed =
                decode_events(&mut decoder, &carry, &mut fold, more_slices || !s.is_empty(), tid)?;
            carry.drain(..consumed);
        }
        if !carry.is_empty() {
            return Ok(()); // slice exhausted mid-event; next slice completes it
        }
        // The fast path: decode straight off the borrowed slice.
        let consumed = decode_events(&mut decoder, s, &mut fold, more_slices, tid)?;
        carry.extend_from_slice(&s[consumed..]);
        Ok(())
    })?;

    if !carry.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trailing partial event in tid {tid}"),
        ));
    }

    let Fold { builder, mutex_sets, accesses, .. } = fold;
    Ok(BiTree { tid, tree: builder.finish(), mutex_sets, accesses, bytes_read: size })
}

fn intern_set(sets: &mut Vec<Vec<MutexId>>, held: &[MutexId]) -> u32 {
    // Linear scan: programs hold a handful of distinct lock sets per
    // interval.
    for (i, s) in sets.iter().enumerate() {
        if s.as_slice() == held {
            return i as u32;
        }
    }
    sets.push(held.to_vec());
    (sets.len() - 1) as u32
}

/// Per-worker pool of open log sources. Mapped sources are random-access
/// and opened once per thread; buffered sources stream forward and are
/// reopened on a backward request.
#[derive(Default)]
pub struct ReaderPool {
    mode: ReadMode,
    stats: SourceStats,
    /// Shared file images: pools cloned from one cache (all the workers
    /// of one analysis) load each log once between them.
    images: ImageCache,
    sources: std::collections::HashMap<ThreadId, Box<dyn LogSource + Send>>,
}

impl std::fmt::Debug for ReaderPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReaderPool")
            .field("mode", &self.mode)
            .field("open", &self.sources.len())
            .finish()
    }
}

impl ReaderPool {
    /// An empty pool in the default (mapped) read mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with an explicit read mode, reporting source
    /// activity into `stats` and sharing file images through `images`.
    pub fn with_mode(mode: ReadMode, stats: SourceStats, images: ImageCache) -> Self {
        ReaderPool { mode, stats, images, sources: std::collections::HashMap::new() }
    }

    /// Builds the tree for one interval, reusing or (re)opening the
    /// thread's log source as needed.
    pub fn build(
        &mut self,
        dir: &SessionDir,
        tid: ThreadId,
        data_begin: u64,
        size: u64,
        chunk_bytes: usize,
    ) -> io::Result<BiTree> {
        let reopen = match self.sources.get(&tid) {
            Some(s) => s.position() > data_begin,
            None => true,
        };
        if reopen {
            let path = dir.thread_log(tid);
            let source: Box<dyn LogSource + Send> = match self.mode {
                ReadMode::Mapped => {
                    Box::new(MappedLog::open_cached(&path, self.stats.clone(), &self.images)?)
                }
                ReadMode::Buffered => {
                    Box::new(StreamSource::new(BufReader::new(File::open(&path)?)))
                }
            };
            self.sources.insert(tid, source);
        }
        let source = self.sources.get_mut(&tid).expect("just inserted");
        build_tree(source.as_mut(), tid, data_begin, size, chunk_bytes)
    }
}

/// Default node budget of a [`TreeCache`] (matches a few thousand typical
/// intervals without rebuilds while staying bounded).
pub(crate) const TREE_CACHE_NODES: usize = 64 * 1024;

/// Bounded LRU cache of interval trees keyed by `(tid, data_begin)` —
/// the analysis core's tree store, shared by the batch workers (one per
/// worker) and the live analyzer. Intervals compared by many tasks are
/// built once per cache instead of once per task, while the node budget
/// keeps the per-thread memory bound.
pub(crate) struct TreeCache {
    entries: HashMap<(ThreadId, u64), CacheEntry>,
    clock: u64,
    nodes_held: usize,
    node_budget: usize,
    /// Cached tree bytes, charged on insert and credited on eviction or
    /// drop, so the analyzer's memory gauge covers every held tree.
    mem: MemGauge,
}

struct CacheEntry {
    last_use: u64,
    tree: BiTree,
}

impl TreeCache {
    pub(crate) fn new(node_budget: usize, mem: MemGauge) -> Self {
        TreeCache { entries: HashMap::new(), clock: 0, nodes_held: 0, node_budget, mem }
    }

    /// Builds and caches the tree for `member` unless already present.
    ///
    /// With `charge_hits`, a cache hit still charges the tree's build
    /// counters (trees built, nodes, events, bytes) to `stats`: the batch
    /// path's statistics then count *logical* tree requests, independent
    /// of scheduling and cache geometry — the same contract
    /// `solver_calls` keeps under the verdict memo. Only the measured
    /// build time shrinks. The live path passes `false` and keeps
    /// counting actual builds (its documented contract).
    pub(crate) fn ensure(
        &mut self,
        dir: &SessionDir,
        member: &Interval,
        chunk_bytes: usize,
        pool: &mut ReaderPool,
        stats: &mut WorkerStats,
        charge_hits: bool,
    ) -> io::Result<()> {
        let key = (member.tid, member.meta.data_begin);
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_use = self.clock;
            if charge_hits {
                stats.trees_built += 1;
                stats.nodes += e.tree.node_count() as u64;
                stats.events += e.tree.accesses;
                stats.bytes_read += e.tree.bytes_read;
            }
            return Ok(());
        }
        let t0 = Instant::now();
        let tree =
            pool.build(dir, member.tid, member.meta.data_begin, member.meta.size, chunk_bytes)?;
        stats.build_secs += t0.elapsed().as_secs_f64();
        stats.trees_built += 1;
        stats.nodes += tree.node_count() as u64;
        stats.events += tree.accesses;
        stats.bytes_read += tree.bytes_read;
        self.nodes_held += tree.node_count();
        self.mem.alloc(tree.approx_bytes());
        self.entries.insert(key, CacheEntry { last_use: self.clock, tree });
        Ok(())
    }

    /// Evicts least-recently-used trees until the node budget holds,
    /// never touching the pinned keys (the task currently compared).
    pub(crate) fn evict(&mut self, pinned: &[(ThreadId, u64)]) {
        while self.nodes_held > self.node_budget && self.entries.len() > pinned.len() {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| !pinned.contains(k))
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(key) = victim else { break };
            if let Some(e) = self.entries.remove(&key) {
                self.nodes_held -= e.tree.node_count();
                self.mem.free(e.tree.approx_bytes());
            }
        }
    }

    pub(crate) fn get(&self, key: &(ThreadId, u64)) -> Option<&BiTree> {
        self.entries.get(key).map(|e| &e.tree)
    }
}

impl Drop for TreeCache {
    /// Credits every still-cached tree back to the memory gauge, so the
    /// gauge's live value returns to zero once an analysis (and its
    /// per-worker caches) finishes while its peak keeps the measured
    /// tree memory.
    fn drop(&mut self) {
        for e in self.entries.values() {
            self.mem.free(e.tree.approx_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_trace::{EventEncoder, MemAccess};

    fn encode(events: &[Event]) -> Vec<u8> {
        let mut enc = EventEncoder::new();
        let mut buf = Vec::new();
        for e in events {
            enc.encode(e, &mut buf);
        }
        buf
    }

    fn tree_from(events: &[Event], chunk: usize) -> BiTree {
        let bytes = encode(events);
        // Wrap in a log (single frame).
        let mut w = sword_trace::LogWriter::new(Vec::new());
        w.write_block(&bytes).unwrap();
        let log = w.into_inner();
        // Build through both source kinds and require identical trees;
        // return the mapped one.
        let mut streamed = StreamSource::new(&log[..]);
        let s = build_tree(&mut streamed, 0, 0, bytes.len() as u64, chunk).unwrap();
        let mut mapped = MappedLog::from_bytes(log, SourceStats::new());
        let m = build_tree(&mut mapped, 0, 0, bytes.len() as u64, chunk).unwrap();
        assert_eq!(m.accesses, s.accesses, "mapped vs streamed accesses");
        assert_eq!(m.node_count(), s.node_count(), "mapped vs streamed nodes");
        assert_eq!(m.mutex_sets, s.mutex_sets, "mapped vs streamed mutex sets");
        let mi: Vec<_> = m.tree.iter().map(|(_, iv, meta)| (*iv, *meta)).collect();
        let si: Vec<_> = s.tree.iter().map(|(_, iv, meta)| (*iv, *meta)).collect();
        assert_eq!(mi, si, "mapped vs streamed intervals");
        m
    }

    fn acc(addr: u64, kind: AccessKind, pc: PcId) -> Event {
        Event::Access(MemAccess::new(addr, 8, kind, pc))
    }

    #[test]
    fn empty_interval() {
        let t = tree_from(&[], 64);
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.accesses, 0);
    }

    #[test]
    fn array_sweep_summarizes() {
        let events: Vec<Event> =
            (0..1000).map(|i| acc(0x1000 + i * 8, AccessKind::Write, 7)).collect();
        let t = tree_from(&events, 128);
        assert_eq!(t.accesses, 1000);
        assert_eq!(t.node_count(), 1, "one strided node");
        let (_, iv, meta) = t.tree.iter().next().unwrap();
        assert_eq!(iv.begin(), 0x1000);
        assert_eq!(iv.len(), 1000);
        assert_eq!(meta.pc, 7);
        assert_eq!(meta.kind, AccessKind::Write);
    }

    #[test]
    fn tiny_chunks_equal_big_chunks() {
        let events: Vec<Event> = (0..200)
            .flat_map(|i| {
                [
                    acc(0x1000 + i * 8, AccessKind::Read, 1),
                    acc(0x9000 + i * 16, AccessKind::Write, 2),
                ]
            })
            .collect();
        let small = tree_from(&events, 3); // force partial events at edges
        let big = tree_from(&events, 1 << 20);
        assert_eq!(small.accesses, big.accesses);
        assert_eq!(small.node_count(), big.node_count());
        let a: Vec<_> = small.tree.iter().map(|(_, iv, m)| (*iv, *m)).collect();
        let b: Vec<_> = big.tree.iter().map(|(_, iv, m)| (*iv, *m)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mutex_sets_attach_to_accesses() {
        let events = vec![
            acc(0x10, AccessKind::Write, 1), // no locks
            Event::MutexAcquire(5),
            acc(0x20, AccessKind::Write, 2), // {5}
            Event::MutexAcquire(3),
            acc(0x30, AccessKind::Write, 3), // {3,5}
            Event::MutexRelease(5),
            acc(0x40, AccessKind::Write, 4), // {3}
            Event::MutexRelease(3),
            acc(0x50, AccessKind::Write, 5), // {}
        ];
        let t = tree_from(&events, 1 << 20);
        assert_eq!(t.node_count(), 5);
        let by_pc: std::collections::HashMap<PcId, u32> =
            t.tree.iter().map(|(_, _, m)| (m.pc, m.mset)).collect();
        assert_eq!(t.mutex_sets[by_pc[&1] as usize], Vec::<MutexId>::new());
        assert_eq!(t.mutex_sets[by_pc[&2] as usize], vec![5]);
        assert_eq!(t.mutex_sets[by_pc[&3] as usize], vec![3, 5]);
        assert_eq!(t.mutex_sets[by_pc[&4] as usize], vec![3]);
        assert_eq!(t.mutex_sets[by_pc[&5] as usize], Vec::<MutexId>::new());
        // Empty set re-interned to the same id.
        assert_eq!(by_pc[&1], by_pc[&5]);
    }

    #[test]
    fn can_race_conditions() {
        let t = tree_from(
            &[
                acc(0x10, AccessKind::Read, 1),
                acc(0x20, AccessKind::Write, 2),
                acc(0x30, AccessKind::AtomicWrite, 3),
                Event::MutexAcquire(9),
                acc(0x40, AccessKind::Write, 4),
            ],
            64,
        );
        let meta_of = |pc: PcId| -> AccessMeta {
            t.tree.iter().find(|(_, _, m)| m.pc == pc).map(|(_, _, m)| *m).unwrap()
        };
        let read = meta_of(1);
        let write = meta_of(2);
        let awrite = meta_of(3);
        let locked_write = meta_of(4);
        assert!(!t.can_race(&read, &t, &read), "read-read never races");
        assert!(t.can_race(&read, &t, &write));
        assert!(t.can_race(&write, &t, &write));
        assert!(!t.can_race(&awrite, &t, &awrite), "atomic-atomic never races");
        assert!(t.can_race(&awrite, &t, &read), "atomic vs plain still races");
        assert!(t.can_race(&write, &t, &locked_write), "disjoint lock sets race");
        assert!(!t.can_race(&locked_write, &t, &locked_write), "common lock protects");
    }

    #[test]
    fn interval_slicing_from_shared_log() {
        // Two intervals back to back in one log; build each from its
        // range.
        let ev1: Vec<Event> = (0..50).map(|i| acc(i * 8, AccessKind::Write, 1)).collect();
        let ev2: Vec<Event> = (0..30).map(|i| acc(0x8000 + i * 4, AccessKind::Read, 2)).collect();
        let mut enc = EventEncoder::new();
        let mut b1 = Vec::new();
        for e in &ev1 {
            enc.encode(e, &mut b1);
        }
        enc.reset();
        let mut b2 = Vec::new();
        for e in &ev2 {
            enc.encode(e, &mut b2);
        }
        let mut w = sword_trace::LogWriter::new(Vec::new());
        w.write_block(&b1).unwrap();
        w.write_block(&b2).unwrap();
        let log = w.into_inner();

        for mapped in [false, true] {
            let mut source: Box<dyn LogSource + '_> = if mapped {
                Box::new(MappedLog::from_bytes(log.clone(), SourceStats::new()))
            } else {
                Box::new(StreamSource::new(&log[..]))
            };
            let t1 = build_tree(source.as_mut(), 0, 0, b1.len() as u64, 16).unwrap();
            let t2 = build_tree(source.as_mut(), 0, b1.len() as u64, b2.len() as u64, 16).unwrap();
            assert_eq!(t1.accesses, 50);
            assert_eq!(t2.accesses, 30);
            assert_eq!(t1.node_count(), 1);
            assert_eq!(t2.node_count(), 1);
            assert_eq!(t2.tree.iter().next().unwrap().1.begin(), 0x8000);
        }
    }

    #[test]
    fn sets_disjoint_logic() {
        assert!(sets_disjoint(&[], &[]));
        assert!(sets_disjoint(&[1, 3], &[2, 4]));
        assert!(!sets_disjoint(&[1, 3], &[3, 4]));
        assert!(sets_disjoint(&[], &[1]));
    }
}
