//! Streaming construction of per-interval summary trees.
//!
//! An interval's events are pulled out of the compressed log in bounded
//! chunks (the paper's streaming algorithm), decoded, and folded into a
//! [`SummarizingBuilder`]: consecutive same-provenance accesses collapse
//! into strided interval-tree nodes, mutex acquire/release events maintain
//! the held-lock set attached to each node.

use std::fs::File;
use std::io::{self, BufReader};

use sword_itree::{IntervalTree, SummarizingBuilder};
use sword_trace::{
    AccessKind, Event, EventDecoder, LogReader, MutexId, PcId, SessionDir, ThreadId,
};

/// Default streaming chunk: 64 KiB of encoded events at a time.
pub const DEFAULT_CHUNK_BYTES: usize = 64 << 10;

/// Metadata attached to every tree node: enough to apply the race
/// conditions and report source locations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AccessMeta {
    /// Read/write/atomic classification.
    pub kind: AccessKind,
    /// Interned source location.
    pub pc: PcId,
    /// Index into the owning [`BiTree::mutex_sets`].
    pub mset: u32,
}

/// The summarized accesses of one (thread, barrier interval).
#[derive(Debug)]
pub struct BiTree {
    /// Owning thread.
    pub tid: ThreadId,
    /// Strided intervals with access metadata.
    pub tree: IntervalTree<AccessMeta>,
    /// Interned held-mutex sets (sorted, deduplicated).
    pub mutex_sets: Vec<Vec<MutexId>>,
    /// Raw access events folded in (the paper's `N`).
    pub accesses: u64,
    /// Encoded bytes consumed.
    pub bytes_read: u64,
}

impl BiTree {
    /// Nodes in the summary tree (the paper's `M ≤ N`).
    pub fn node_count(&self) -> usize {
        self.tree.len()
    }

    /// Approximate heap footprint of this summary tree, charged to the
    /// analyzer's memory gauge while the tree is held (the Figure 6–8
    /// offline-memory rows). An estimate — the interval tree's exact
    /// allocation layout is private — counting per node the strided
    /// interval, its metadata, and red-black bookkeeping (two child
    /// links, parent, color word), plus the interned mutex sets.
    pub fn approx_bytes(&self) -> u64 {
        let per_node = std::mem::size_of::<sword_itree::StridedInterval>()
            + std::mem::size_of::<AccessMeta>()
            + 4 * std::mem::size_of::<usize>();
        let sets: usize = self
            .mutex_sets
            .iter()
            .map(|s| std::mem::size_of::<Vec<MutexId>>() + s.len() * std::mem::size_of::<MutexId>())
            .sum();
        (self.node_count() * per_node + sets) as u64
    }

    /// `true` when the two metadata records can race access-wise: at
    /// least one write, not both atomic, and disjoint mutex sets.
    pub fn can_race(&self, mine: &AccessMeta, other_tree: &BiTree, theirs: &AccessMeta) -> bool {
        if !mine.kind.is_write() && !theirs.kind.is_write() {
            return false;
        }
        if mine.kind.is_atomic() && theirs.kind.is_atomic() {
            return false;
        }
        sets_disjoint(
            &self.mutex_sets[mine.mset as usize],
            &other_tree.mutex_sets[theirs.mset as usize],
        )
    }
}

fn sets_disjoint(a: &[MutexId], b: &[MutexId]) -> bool {
    // Both sorted; merge scan.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// Builds the summary tree for one barrier interval by streaming
/// `[data_begin, data_begin + size)` out of `reader` in `chunk_bytes`
/// chunks.
pub fn build_tree<R: io::Read>(
    reader: &mut LogReader<R>,
    tid: ThreadId,
    data_begin: u64,
    size: u64,
    chunk_bytes: usize,
) -> io::Result<BiTree> {
    let mut builder: SummarizingBuilder<(PcId, u8, u8, u32), AccessMeta> =
        SummarizingBuilder::new();
    let mut decoder = EventDecoder::new();
    let mut held: Vec<MutexId> = Vec::new();
    let mut mutex_sets: Vec<Vec<MutexId>> = vec![Vec::new()];
    let mut current_mset: u32 = 0;

    let mut carry: Vec<u8> = Vec::new();
    let mut offset = data_begin;
    let end = data_begin + size;
    let mut accesses = 0u64;

    while offset < end || !carry.is_empty() {
        // Top up the carry buffer with the next chunk.
        if offset < end {
            let take = ((end - offset) as usize).min(chunk_bytes.max(1));
            reader.read_range(offset, take as u64, &mut carry)?;
            offset += take as u64;
        }
        // Decode as many complete events as the carry holds.
        let mut pos = 0usize;
        loop {
            let mark = pos;
            match decoder.decode(&carry, &mut pos) {
                Ok(event) => match event {
                    Event::Access(a) => {
                        accesses += 1;
                        let meta = AccessMeta { kind: a.kind, pc: a.pc, mset: current_mset };
                        builder.insert_with(
                            (a.pc, a.kind.code(), a.size, current_mset),
                            a.addr,
                            a.size as u64,
                            || meta,
                        );
                    }
                    Event::MutexAcquire(m) => {
                        if let Err(at) = held.binary_search(&m) {
                            held.insert(at, m);
                        }
                        current_mset = intern_set(&mut mutex_sets, &held);
                    }
                    Event::MutexRelease(m) => {
                        if let Ok(at) = held.binary_search(&m) {
                            held.remove(at);
                        }
                        current_mset = intern_set(&mut mutex_sets, &held);
                    }
                },
                Err(_) if offset < end => {
                    // Partial event at the chunk boundary: keep the tail
                    // and fetch more bytes. The decoder consumed nothing
                    // usable past `mark`.
                    pos = mark;
                    break;
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt event stream in tid {tid}: {e}"),
                    ));
                }
            }
            if pos >= carry.len() {
                break;
            }
        }
        carry.drain(..pos);
        if offset >= end && carry.is_empty() {
            break;
        }
        if offset >= end && !carry.is_empty() && pos == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trailing partial event in tid {tid}"),
            ));
        }
    }

    Ok(BiTree { tid, tree: builder.finish(), mutex_sets, accesses, bytes_read: size })
}

fn intern_set(sets: &mut Vec<Vec<MutexId>>, held: &[MutexId]) -> u32 {
    // Linear scan: programs hold a handful of distinct lock sets per
    // interval.
    for (i, s) in sets.iter().enumerate() {
        if s.as_slice() == held {
            return i as u32;
        }
    }
    sets.push(held.to_vec());
    (sets.len() - 1) as u32
}

/// Per-worker pool of open log readers with forward-seek reuse: requests
/// at non-decreasing offsets stream on; a backward request reopens the
/// file.
#[derive(Debug, Default)]
pub struct ReaderPool {
    readers: std::collections::HashMap<ThreadId, LogReader<BufReader<File>>>,
}

impl ReaderPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the tree for one interval, reusing or (re)opening the
    /// thread's log reader as needed.
    pub fn build(
        &mut self,
        dir: &SessionDir,
        tid: ThreadId,
        data_begin: u64,
        size: u64,
        chunk_bytes: usize,
    ) -> io::Result<BiTree> {
        let reopen = match self.readers.get(&tid) {
            Some(r) => r.position() > data_begin,
            None => true,
        };
        if reopen {
            let f = File::open(dir.thread_log(tid))?;
            self.readers.insert(tid, LogReader::new(BufReader::new(f)));
        }
        let reader = self.readers.get_mut(&tid).expect("just inserted");
        build_tree(reader, tid, data_begin, size, chunk_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_trace::{EventEncoder, MemAccess};

    fn encode(events: &[Event]) -> Vec<u8> {
        let mut enc = EventEncoder::new();
        let mut buf = Vec::new();
        for e in events {
            enc.encode(e, &mut buf);
        }
        buf
    }

    fn tree_from(events: &[Event], chunk: usize) -> BiTree {
        let bytes = encode(events);
        // Wrap in a log (single frame).
        let mut w = sword_trace::LogWriter::new(Vec::new());
        w.write_block(&bytes).unwrap();
        let log = w.into_inner();
        let mut r = LogReader::new(&log[..]);
        build_tree(&mut r, 0, 0, bytes.len() as u64, chunk).unwrap()
    }

    fn acc(addr: u64, kind: AccessKind, pc: PcId) -> Event {
        Event::Access(MemAccess::new(addr, 8, kind, pc))
    }

    #[test]
    fn empty_interval() {
        let t = tree_from(&[], 64);
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.accesses, 0);
    }

    #[test]
    fn array_sweep_summarizes() {
        let events: Vec<Event> =
            (0..1000).map(|i| acc(0x1000 + i * 8, AccessKind::Write, 7)).collect();
        let t = tree_from(&events, 128);
        assert_eq!(t.accesses, 1000);
        assert_eq!(t.node_count(), 1, "one strided node");
        let (_, iv, meta) = t.tree.iter().next().unwrap();
        assert_eq!(iv.begin(), 0x1000);
        assert_eq!(iv.len(), 1000);
        assert_eq!(meta.pc, 7);
        assert_eq!(meta.kind, AccessKind::Write);
    }

    #[test]
    fn tiny_chunks_equal_big_chunks() {
        let events: Vec<Event> = (0..200)
            .flat_map(|i| {
                [
                    acc(0x1000 + i * 8, AccessKind::Read, 1),
                    acc(0x9000 + i * 16, AccessKind::Write, 2),
                ]
            })
            .collect();
        let small = tree_from(&events, 3); // force partial events at edges
        let big = tree_from(&events, 1 << 20);
        assert_eq!(small.accesses, big.accesses);
        assert_eq!(small.node_count(), big.node_count());
        let a: Vec<_> = small.tree.iter().map(|(_, iv, m)| (*iv, *m)).collect();
        let b: Vec<_> = big.tree.iter().map(|(_, iv, m)| (*iv, *m)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mutex_sets_attach_to_accesses() {
        let events = vec![
            acc(0x10, AccessKind::Write, 1), // no locks
            Event::MutexAcquire(5),
            acc(0x20, AccessKind::Write, 2), // {5}
            Event::MutexAcquire(3),
            acc(0x30, AccessKind::Write, 3), // {3,5}
            Event::MutexRelease(5),
            acc(0x40, AccessKind::Write, 4), // {3}
            Event::MutexRelease(3),
            acc(0x50, AccessKind::Write, 5), // {}
        ];
        let t = tree_from(&events, 1 << 20);
        assert_eq!(t.node_count(), 5);
        let by_pc: std::collections::HashMap<PcId, u32> =
            t.tree.iter().map(|(_, _, m)| (m.pc, m.mset)).collect();
        assert_eq!(t.mutex_sets[by_pc[&1] as usize], Vec::<MutexId>::new());
        assert_eq!(t.mutex_sets[by_pc[&2] as usize], vec![5]);
        assert_eq!(t.mutex_sets[by_pc[&3] as usize], vec![3, 5]);
        assert_eq!(t.mutex_sets[by_pc[&4] as usize], vec![3]);
        assert_eq!(t.mutex_sets[by_pc[&5] as usize], Vec::<MutexId>::new());
        // Empty set re-interned to the same id.
        assert_eq!(by_pc[&1], by_pc[&5]);
    }

    #[test]
    fn can_race_conditions() {
        let t = tree_from(
            &[
                acc(0x10, AccessKind::Read, 1),
                acc(0x20, AccessKind::Write, 2),
                acc(0x30, AccessKind::AtomicWrite, 3),
                Event::MutexAcquire(9),
                acc(0x40, AccessKind::Write, 4),
            ],
            64,
        );
        let meta_of = |pc: PcId| -> AccessMeta {
            t.tree.iter().find(|(_, _, m)| m.pc == pc).map(|(_, _, m)| *m).unwrap()
        };
        let read = meta_of(1);
        let write = meta_of(2);
        let awrite = meta_of(3);
        let locked_write = meta_of(4);
        assert!(!t.can_race(&read, &t, &read), "read-read never races");
        assert!(t.can_race(&read, &t, &write));
        assert!(t.can_race(&write, &t, &write));
        assert!(!t.can_race(&awrite, &t, &awrite), "atomic-atomic never races");
        assert!(t.can_race(&awrite, &t, &read), "atomic vs plain still races");
        assert!(t.can_race(&write, &t, &locked_write), "disjoint lock sets race");
        assert!(!t.can_race(&locked_write, &t, &locked_write), "common lock protects");
    }

    #[test]
    fn interval_slicing_from_shared_log() {
        // Two intervals back to back in one log; build each from its
        // range.
        let ev1: Vec<Event> = (0..50).map(|i| acc(i * 8, AccessKind::Write, 1)).collect();
        let ev2: Vec<Event> = (0..30).map(|i| acc(0x8000 + i * 4, AccessKind::Read, 2)).collect();
        let mut enc = EventEncoder::new();
        let mut b1 = Vec::new();
        for e in &ev1 {
            enc.encode(e, &mut b1);
        }
        enc.reset();
        let mut b2 = Vec::new();
        for e in &ev2 {
            enc.encode(e, &mut b2);
        }
        let mut w = sword_trace::LogWriter::new(Vec::new());
        w.write_block(&b1).unwrap();
        w.write_block(&b2).unwrap();
        let log = w.into_inner();

        let mut r = LogReader::new(&log[..]);
        let t1 = build_tree(&mut r, 0, 0, b1.len() as u64, 16).unwrap();
        let t2 = build_tree(&mut r, 0, b1.len() as u64, b2.len() as u64, 16).unwrap();
        assert_eq!(t1.accesses, 50);
        assert_eq!(t2.accesses, 30);
        assert_eq!(t1.node_count(), 1);
        assert_eq!(t2.node_count(), 1);
        assert_eq!(t2.tree.iter().next().unwrap().1.begin(), 0x8000);
    }

    #[test]
    fn sets_disjoint_logic() {
        assert!(sets_disjoint(&[], &[]));
        assert!(sets_disjoint(&[1, 3], &[2, 4]));
        assert!(!sets_disjoint(&[1, 3], &[3, 4]));
        assert!(sets_disjoint(&[], &[1]));
    }
}
