//! Session loading: meta-data, region, and PC tables.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader};

use sword_trace::{meta, MetaRecord, PcTable, RegionRecord, SessionDir, ThreadId};

/// Everything the analyzer needs besides the log bytes themselves.
#[derive(Debug)]
pub struct LoadedSession {
    /// The session directory (log files are opened lazily from here).
    pub dir: SessionDir,
    /// Per-thread barrier-interval rows, in file order.
    pub threads: Vec<(ThreadId, Vec<MetaRecord>)>,
    /// Region table keyed by region id.
    pub regions: HashMap<u64, RegionRecord>,
    /// Program-counter table for report rendering (empty if absent).
    pub pcs: PcTable,
}

impl LoadedSession {
    /// Loads the meta-data of a session directory.
    pub fn load(dir: &SessionDir) -> io::Result<Self> {
        let mut threads = Vec::new();
        for tid in dir.thread_ids()? {
            let rows = meta::read_meta(BufReader::new(File::open(dir.thread_meta(tid))?))?;
            threads.push((tid, rows));
        }
        let regions_vec = if dir.regions_path().exists() {
            meta::read_regions(BufReader::new(File::open(dir.regions_path())?))?
        } else {
            Vec::new()
        };
        let mut regions = HashMap::with_capacity(regions_vec.len());
        for r in regions_vec {
            regions.insert(r.pid, r);
        }
        let pcs = if dir.pcs_path().exists() {
            PcTable::read_from(BufReader::new(File::open(dir.pcs_path())?))?
        } else {
            PcTable::new()
        };
        Ok(LoadedSession { dir: dir.clone(), threads, regions, pcs })
    }

    /// Total barrier intervals across all threads.
    pub fn interval_count(&self) -> usize {
        self.threads.iter().map(|(_, rows)| rows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(tag: &str) -> SessionDir {
        let dir =
            std::env::temp_dir().join(format!("sword-offline-load-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = SessionDir::new(dir);
        s.create().unwrap();
        s
    }

    #[test]
    fn loads_handwritten_session() {
        let s = tmp("basic");
        std::fs::write(s.thread_meta(0), "0\t-\t0\t0\t2\t1\t0\t100\n").unwrap();
        std::fs::write(s.thread_meta(1), "0\t-\t0\t1\t2\t1\t0\t80\n").unwrap();
        std::fs::write(s.regions_path(), "0\t-\t1\t2\t0,1\n").unwrap();
        let mut pcs = PcTable::new();
        pcs.intern("k.rs", 10);
        let mut f = File::create(s.pcs_path()).unwrap();
        pcs.write_to(&mut f).unwrap();
        f.flush().unwrap();

        let loaded = LoadedSession::load(&s).unwrap();
        assert_eq!(loaded.threads.len(), 2);
        assert_eq!(loaded.interval_count(), 2);
        assert_eq!(loaded.regions.len(), 1);
        assert_eq!(loaded.regions[&0].span, 2);
        assert_eq!(loaded.pcs.display(0), "k.rs:10");
        std::fs::remove_dir_all(loaded.dir.path()).unwrap();
    }

    #[test]
    fn missing_optional_tables_are_empty() {
        let s = tmp("sparse");
        std::fs::write(s.thread_meta(3), "").unwrap();
        let loaded = LoadedSession::load(&s).unwrap();
        assert_eq!(loaded.threads.len(), 1);
        assert_eq!(loaded.threads[0].0, 3);
        assert!(loaded.regions.is_empty());
        assert!(loaded.pcs.is_empty());
        std::fs::remove_dir_all(loaded.dir.path()).unwrap();
    }
}
