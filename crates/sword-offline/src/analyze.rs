//! Analysis orchestration: configuration, statistics, and the entry
//! points that drive the staged pipeline (the private `pipeline` module).

use std::io;
use std::time::Instant;

use sword_metrics::{DurationHist, MemGauge, StageTable};
use sword_obs::{Layer, Obs, ThreadJournal};
use sword_trace::{ImageCache, PcTable, ReadMode, SessionDir, SourceStats};

use crate::build::DEFAULT_CHUNK_BYTES;
use crate::intervals::build_structure_with;
use crate::load::LoadedSession;
use crate::pipeline;
use crate::race::{Race, RaceSet};
use crate::verdicts::VerdictCache;

/// Which exact-overlap solver to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverChoice {
    /// Number-theoretic Diophantine solve (production path).
    Diophantine,
    /// Branch-and-bound ILP (mirrors the paper's GLPK formulation).
    Ilp,
}

/// Which screening layers of the solver funnel are active. Screens are
/// pure rejects/reorderings: verdicts, witnesses, and candidate counts are
/// byte-identical whatever the mask — only `solver_calls` vs
/// `prescreened_pairs` bookkeeping and the measured time move. The dense
/// closed-form tiers are *not* maskable; they define the canonical witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FunnelConfig {
    /// Solver-level congruence reject for holey×holey pairs, plus gcd
    /// stepping inside the Diophantine scan.
    pub gcd: bool,
    /// Walk-level stride-class fingerprint screen: candidates rejected by
    /// the congruence test never reach the verdict cache.
    pub prescreen: bool,
    /// Per-region bounding-box reject in `check_pair`: tree pairs whose
    /// bounding boxes are disjoint skip the candidate walk entirely.
    pub bbox: bool,
    /// Batch surviving pairs per tree pair and sort them by stride class
    /// before solving, making tier dispatch branch-predictable.
    pub batch: bool,
}

impl Default for FunnelConfig {
    fn default() -> Self {
        FunnelConfig::ALL
    }
}

impl FunnelConfig {
    /// Every screening layer on (the production default).
    pub const ALL: FunnelConfig =
        FunnelConfig { gcd: true, prescreen: true, bbox: true, batch: true };
    /// Every screening layer off (the pre-funnel shape, for ablation).
    pub const NONE: FunnelConfig =
        FunnelConfig { gcd: false, prescreen: false, bbox: false, batch: false };

    /// Parses a `--solver-tiers` spec: `all`, `none`, or a comma-separated
    /// list of the screens to enable (`gcd`, `prescreen`, `bbox`, `batch`).
    pub fn parse(spec: &str) -> Result<FunnelConfig, String> {
        match spec {
            "all" => return Ok(FunnelConfig::ALL),
            "none" => return Ok(FunnelConfig::NONE),
            _ => {}
        }
        let mut cfg = FunnelConfig::NONE;
        for part in spec.split(',') {
            match part.trim() {
                "gcd" => cfg.gcd = true,
                "prescreen" => cfg.prescreen = true,
                "bbox" => cfg.bbox = true,
                "batch" => cfg.batch = true,
                other => {
                    return Err(format!(
                        "unknown solver tier '{other}' (expected all, none, or a \
                         comma-list of gcd/prescreen/bbox/batch)"
                    ))
                }
            }
        }
        Ok(cfg)
    }

    /// Renders the spec back (`all`, `none`, or the enabled comma-list).
    pub fn render(&self) -> String {
        if *self == FunnelConfig::ALL {
            return "all".to_string();
        }
        if *self == FunnelConfig::NONE {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.gcd {
            parts.push("gcd");
        }
        if self.prescreen {
            parts.push("prescreen");
        }
        if self.bbox {
            parts.push("bbox");
        }
        if self.batch {
            parts.push("batch");
        }
        parts.join(",")
    }
}

/// Shared per-tier decision counters (`sword_solver_tier{tier=…}`).
/// Logical-charging like the rest of the analysis core: a memoized answer
/// records the tier that originally decided the pair, so counts are
/// identical cache on or off, batch or live.
#[derive(Clone, Debug, Default)]
pub struct TierCounters {
    counts: std::sync::Arc<[std::sync::atomic::AtomicU64; sword_solver::Tier::ALL.len()]>,
}

impl TierCounters {
    /// A fresh zeroed counter set.
    pub fn new() -> Self {
        TierCounters::default()
    }

    /// Records one pair decided by `tier`.
    #[inline]
    pub fn record(&self, tier: sword_solver::Tier) {
        self.counts[tier.index()].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Pairs decided by `tier` so far.
    pub fn get(&self, tier: sword_solver::Tier) -> u64 {
        self.counts[tier.index()].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// All `(tier, count)` rows in funnel order.
    pub fn snapshot(&self) -> Vec<(sword_solver::Tier, u64)> {
        sword_solver::Tier::ALL.iter().map(|&t| (t, self.get(t))).collect()
    }
}

/// Analyzer configuration.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Worker threads comparing interval trees (the paper distributes
    /// this across cluster nodes; we distribute across cores).
    pub workers: usize,
    /// Streaming chunk size for log reads.
    pub chunk_bytes: usize,
    /// Exact-overlap solver.
    pub solver: SolverChoice,
    /// Which screening layers of the solver funnel are active
    /// (`--solver-tiers`; results are identical for every mask).
    pub funnel: FunnelConfig,
    /// Shared per-tier decision counters, surfaced as
    /// `sword_solver_tier{tier=…}` registry rows when `--obs` is on.
    pub tiers: TierCounters,
    /// Restrict analysis to these parallel-region ids (`None` = all).
    /// This is the targeted-analysis mode the per-region metadata enables
    /// (§III-B: "extract from the log file the chunk of data for a
    /// specific barrier interval") — useful when re-checking one suspect
    /// region of a huge production log. Cross-region pairs are analyzed
    /// only when *both* regions are in focus.
    pub focus_regions: Option<Vec<u64>>,
    /// Suppression patterns: a race is dropped from the report when
    /// *either* of its source locations contains one of these substrings
    /// (TSan-suppressions style — how a production user silences the
    /// triaged-benign races like HPCCG's same-value norm write while
    /// hunting new ones).
    pub suppressions: Vec<String>,
    /// Observability sink (`--obs`): pipeline stages and per-task spans
    /// go to its journal, solver latency and tree memory to its registry.
    /// `None` (the default) keeps the analyzer entirely uninstrumented.
    pub obs: Option<Obs>,
    /// Per-source-site attribution table. When present, `compare` workers
    /// accumulate per-PC counters (accesses scanned, pairs checked,
    /// solver calls, races) and fold them in here; `None` (the default)
    /// keeps the compare hot path attribution-free. Separate from `obs`
    /// so the overhead of attribution itself can be measured against a
    /// clean baseline.
    pub sites: Option<sword_obs::SiteTable>,
    /// Live bytes held in interval trees, updated as workers (or the
    /// live analyzer's cache) build and drop trees. Shared by `clone`;
    /// its peak is the analyzer's measured tree memory (Figures 6–8).
    pub mem_gauge: MemGauge,
    /// How per-thread logs are read: zero-copy mapped images (default)
    /// or buffered forward streaming (`--read-mode buffered`).
    pub read_mode: ReadMode,
    /// Shared log-source activity counters (bytes mapped, arena reuse),
    /// surfaced as registry rows when `--obs` is on.
    pub source_stats: SourceStats,
    /// Shared store of loaded log images: every worker's reader pool
    /// draws from it, so each log file is read once per analysis rather
    /// than once per worker. Fresh (empty) per config by default.
    pub image_cache: ImageCache,
    /// Memoize region-pair and solver verdicts across structurally
    /// identical work (`--no-verdict-cache` turns this off; verdicts and
    /// evidence are identical either way, only the work is).
    pub verdict_cache: bool,
    /// Node budget of the analysis core's interval-tree cache — one per
    /// batch worker, one for the live analyzer. Intervals touched by many
    /// comparison tasks are built once per cache instead of once per
    /// task; `0` disables reuse (every task rebuilds its trees, the
    /// pre-core shape). Statistics count logical tree requests either
    /// way, so results and counters are identical — only the measured
    /// tree-build time changes.
    pub tree_cache_nodes: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            solver: SolverChoice::Diophantine,
            funnel: FunnelConfig::ALL,
            tiers: TierCounters::new(),
            focus_regions: None,
            suppressions: Vec::new(),
            obs: None,
            sites: None,
            mem_gauge: MemGauge::new(),
            read_mode: ReadMode::default(),
            source_stats: SourceStats::new(),
            image_cache: ImageCache::new(),
            verdict_cache: true,
            tree_cache_nodes: crate::build::TREE_CACHE_NODES,
        }
    }
}

impl AnalysisConfig {
    /// Single-threaded configuration (deterministic scheduling for
    /// tests/debugging).
    pub fn sequential() -> Self {
        AnalysisConfig { workers: 1, ..AnalysisConfig::default() }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the solver.
    pub fn with_solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the funnel screen mask (`--solver-tiers`).
    pub fn with_funnel(mut self, funnel: FunnelConfig) -> Self {
        self.funnel = funnel;
        self
    }

    /// Overrides the streaming chunk size.
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes.max(1);
        self
    }

    /// Restricts analysis to the given region ids.
    pub fn with_focus_regions(mut self, regions: Vec<u64>) -> Self {
        self.focus_regions = Some(regions);
        self
    }

    /// Adds a suppression pattern (substring of a source location).
    pub fn with_suppression(mut self, pattern: impl Into<String>) -> Self {
        self.suppressions.push(pattern.into());
        self
    }

    /// Attaches an observability sink (journal + metrics registry).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Overrides the log read mode (mapped vs buffered).
    pub fn with_read_mode(mut self, mode: ReadMode) -> Self {
        self.read_mode = mode;
        self
    }

    /// Enables or disables the shared verdict cache.
    pub fn with_verdict_cache(mut self, enabled: bool) -> Self {
        self.verdict_cache = enabled;
        self
    }

    /// Overrides the per-worker tree-cache node budget (`0` disables
    /// tree reuse entirely).
    pub fn with_tree_cache_nodes(mut self, nodes: usize) -> Self {
        self.tree_cache_nodes = nodes;
        self
    }

    /// Attaches a per-site attribution table; compare workers will fold
    /// per-PC counters into it. Whole-table totals are additionally
    /// registered as registry sources when `--obs` is also on.
    pub fn with_site_attribution(mut self, sites: sword_obs::SiteTable) -> Self {
        self.sites = Some(sites);
        self
    }

    /// The analyzer's journal recorder for `thread`, when `--obs` is on.
    pub(crate) fn journal_for(&self, thread: impl Into<String>) -> Option<ThreadJournal> {
        self.obs.as_ref().map(|o| o.journal.for_thread(Layer::Offline, thread))
    }

    /// The solver-latency histogram handle, when `--obs` is on.
    pub(crate) fn solver_hist(&self) -> Option<sword_obs::Histogram> {
        self.obs.as_ref().map(|o| {
            o.registry
                .histogram("sword_solver_call_nanos", "Exact strided-overlap solve latency (ns)")
        })
    }

    /// Registers the tree-memory gauge as registry sources (idempotent:
    /// re-registering replaces the previous closure over the same gauge).
    pub(crate) fn register_mem_sources(&self) {
        if let Some(obs) = &self.obs {
            let g = self.mem_gauge.clone();
            obs.registry.source(
                "sword_analyzer_tree_mem_bytes",
                "Live bytes held in the analyzer's interval trees",
                move || g.live() as f64,
            );
            let g = self.mem_gauge.clone();
            obs.registry.source(
                "sword_analyzer_tree_mem_peak_bytes",
                "Peak bytes held in the analyzer's interval trees",
                move || g.peak() as f64,
            );
            if let Some(sites) = &self.sites {
                sites.register_totals(&obs.registry);
            }
        }
    }

    /// Registers the analysis core's activity rows (idempotent, like
    /// [`AnalysisConfig::register_mem_sources`]): log bytes mapped, arena
    /// recycling, and the verdict cache's hit accounting.
    pub(crate) fn register_core_sources(&self, cache: &VerdictCache) {
        if let Some(obs) = &self.obs {
            let s = self.source_stats.clone();
            obs.registry.source(
                "sword_log_mapped_bytes",
                "Log bytes held as zero-copy in-memory images",
                move || s.bytes_mapped() as f64,
            );
            let s = self.source_stats.clone();
            obs.registry.source(
                "sword_arena_reuse_total",
                "Frame decodes that recycled an existing decompression arena",
                move || s.arena_reuses() as f64,
            );
            let s = self.source_stats.clone();
            obs.registry.source(
                "sword_arena_alloc_total",
                "Frame decodes that had to grow a decompression arena",
                move || s.arena_allocs() as f64,
            );
            let c = cache.clone();
            obs.registry.source(
                "sword_verdict_cache_hits_total",
                "Region-pair and solver verdicts answered from the shared memo",
                move || (c.region_hits() + c.solve_hits()) as f64,
            );
            let c = cache.clone();
            obs.registry.source(
                "sword_verdict_cache_misses_total",
                "Region-pair and solver verdicts actually computed",
                move || (c.region_misses() + c.solve_misses()) as f64,
            );
            let c = cache.clone();
            obs.registry.source(
                "sword_verdict_cache_hit_rate",
                "Fraction of verdict lookups answered from the shared memo",
                move || c.hit_rate(),
            );
            for tier in sword_solver::Tier::ALL {
                let t = self.tiers.clone();
                obs.registry.source(
                    &format!("sword_solver_tier{{tier=\"{}\"}}", tier.as_str()),
                    "Candidate pairs decided by this layer of the solver funnel",
                    move || t.get(tier) as f64,
                );
            }
        }
    }
}

/// Aggregate statistics of one analysis run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AnalysisStats {
    /// Threads (log files) in the session.
    pub threads: u64,
    /// Barrier intervals (meta rows).
    pub barrier_intervals: u64,
    /// Interval groups (`(pid, bid)` classes).
    pub groups: u64,
    /// Comparison tasks executed.
    pub tasks: u64,
    /// Interval trees built (includes rebuilds across tasks).
    pub trees_built: u64,
    /// Total tree nodes (the paper's `M`).
    pub nodes: u64,
    /// Raw access events folded into trees (the paper's `N`).
    pub events: u64,
    /// Uncompressed log bytes streamed.
    pub bytes_read: u64,
    /// Tree pairs compared.
    pub tree_pairs: u64,
    /// Candidate node pairs (coarse range overlap).
    pub candidate_pairs: u64,
    /// Exact constraint solves.
    pub solver_calls: u64,
    /// Candidate pairs rejected by the walk-level fingerprint screen
    /// before reaching the solver (`solver_calls + prescreened_pairs` is
    /// invariant across funnel masks).
    pub prescreened_pairs: u64,
    /// Region pairs pruned as sequential.
    pub region_pairs_skipped: u64,
    /// Region pairs that produced cross tasks.
    pub region_pairs_considered: u64,
    /// Distinct races (source-line pairs).
    pub races: u64,
    /// Racy node pairs before dedup.
    pub racy_node_pairs: u64,
    /// Distinct races dropped by suppression patterns.
    pub races_suppressed: u64,
    /// Total analysis wall time (the paper's single-node OA column).
    pub wall_secs: f64,
    /// Longest single task (proxy for the paper's distributed MT column:
    /// with one task per node, the makespan is the longest task).
    pub max_task_secs: f64,
}

/// Analysis output: deduplicated races and statistics.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Races sorted by source-location pair.
    pub races: Vec<Race>,
    /// Run statistics.
    pub stats: AnalysisStats,
    /// Fixed-bucket histogram of per-task wall seconds, for the
    /// distributed-analysis model (bounded regardless of task count).
    pub task_hist: DurationHist,
    /// Per-stage wall time and throughput of the pipeline
    /// (discover, load-meta, build-structure, pair-schedule, tree-build,
    /// compare, dedup-report).
    pub stages: StageTable,
}

impl AnalysisResult {
    /// Number of distinct races.
    pub fn race_count(&self) -> usize {
        self.races.len()
    }

    /// Models distributing the comparison tasks over `nodes` cluster
    /// nodes (the paper runs its offline analysis "across a cluster of
    /// nodes"): longest-processing-time-first greedy assignment over the
    /// task histogram's bucket means, returning the makespan.
    /// `makespan(1)` is exactly the total task time (bucket means
    /// preserve the sum); with more nodes than tasks it converges to the
    /// longest task ([`AnalysisStats::max_task_secs`], which the
    /// histogram keeps exactly).
    pub fn makespan(&self, nodes: usize) -> f64 {
        let nodes = nodes.max(1);
        let mut sorted: Vec<(f64, u64)> = self.task_hist.buckets().collect();
        sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut loads = vec![0.0f64; nodes];
        for (mean, count) in sorted {
            for _ in 0..count {
                let min = loads
                    .iter_mut()
                    .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("nodes >= 1");
                *min += mean;
            }
        }
        // Bucket means smooth individual samples, but no schedule can
        // beat the longest task; clamping to the exact maximum keeps the
        // many-node limit exact.
        loads.into_iter().fold(0.0, f64::max).max(self.task_hist.max_secs())
    }
}

/// Records one finished stage into the analyzer's journal (no-op when
/// observability is off): the span covers `[start of stage, now]` on the
/// given recorder, with one summary argument.
pub(crate) fn journal_stage(
    journal: &Option<ThreadJournal>,
    name: &str,
    start_us: Option<u64>,
    arg: (&str, f64),
) {
    if let (Some(j), Some(start)) = (journal, start_us) {
        let dur = j.now_us().saturating_sub(start);
        j.span_closed(name, start, dur, vec![(arg.0.to_string(), arg.1)]);
    }
}

/// Loads a session directory and analyzes it, timing the discover and
/// load-meta stages along with the pipeline proper.
pub fn analyze(dir: &SessionDir, config: &AnalysisConfig) -> io::Result<AnalysisResult> {
    let journal = config.journal_for("analyzer");
    let mut stages = StageTable::new();
    let t0 = Instant::now();
    let s0 = journal.as_ref().map(|j| j.now_us());
    let threads = dir.thread_ids()?;
    stages.record("discover", t0.elapsed().as_secs_f64(), threads.len() as u64, 0);
    journal_stage(&journal, "discover", s0, ("threads", threads.len() as f64));
    let t0 = Instant::now();
    let s0 = journal.as_ref().map(|j| j.now_us());
    let session = LoadedSession::load(dir)?;
    stages.record("load-meta", t0.elapsed().as_secs_f64(), session.interval_count() as u64, 0);
    journal_stage(&journal, "load-meta", s0, ("intervals", session.interval_count() as f64));
    analyze_with_stages(&session, config, stages)
}

/// Analyzes an already-loaded session.
pub fn analyze_loaded(
    session: &LoadedSession,
    config: &AnalysisConfig,
) -> io::Result<AnalysisResult> {
    analyze_with_stages(session, config, StageTable::new())
}

fn analyze_with_stages(
    session: &LoadedSession,
    config: &AnalysisConfig,
    mut stages: StageTable,
) -> io::Result<AnalysisResult> {
    let start = Instant::now();
    let journal = config.journal_for("analyzer");
    config.register_mem_sources();
    let cache = VerdictCache::new(config.verdict_cache);
    config.register_core_sources(&cache);
    let t0 = Instant::now();
    let s0 = journal.as_ref().map(|j| j.now_us());
    let structure = build_structure_with(session, &cache)?;
    stages.record("build-structure", t0.elapsed().as_secs_f64(), structure.groups.len() as u64, 0);
    journal_stage(&journal, "build-structure", s0, ("groups", structure.groups.len() as f64));
    let mut stats = AnalysisStats {
        threads: session.threads.len() as u64,
        barrier_intervals: session.interval_count() as u64,
        groups: structure.groups.len() as u64,
        region_pairs_skipped: structure.region_pairs_skipped,
        region_pairs_considered: structure.region_pairs_considered,
        ..AnalysisStats::default()
    };

    let (races, worker_stats, scheduled) =
        pipeline::run(session, &structure, config, &cache, &mut stages)?;
    stats.tasks = scheduled;
    stats.trees_built = worker_stats.trees_built;
    stats.nodes = worker_stats.nodes;
    stats.events = worker_stats.events;
    stats.bytes_read = worker_stats.bytes_read;
    stats.tree_pairs = worker_stats.tree_pairs;
    stats.candidate_pairs = worker_stats.candidates;
    stats.solver_calls = worker_stats.solver_calls;
    stats.prescreened_pairs = worker_stats.prescreened;
    stats.max_task_secs = worker_stats.max_task_secs;
    let race_list = finalize_races(races, &session.pcs, &config.suppressions, &mut stats);
    stats.wall_secs = start.elapsed().as_secs_f64();
    Ok(AnalysisResult { races: race_list, stats, task_hist: worker_stats.task_hist, stages })
}

/// Turns an accumulated race set into the final sorted, suppressed report
/// list, filling the race-count statistics. Shared by the batch pipeline
/// and the live analyzer so both report identically.
pub(crate) fn finalize_races(
    races: RaceSet,
    pcs: &PcTable,
    suppressions: &[String],
    stats: &mut AnalysisStats,
) -> Vec<Race> {
    stats.racy_node_pairs = races.raw_pairs;
    let mut race_list = races.into_sorted();
    if !suppressions.is_empty() {
        let suppressed = |pc: sword_trace::PcId| {
            let loc = pcs.display(pc);
            suppressions.iter().any(|pat| loc.contains(pat.as_str()))
        };
        let before = race_list.len();
        race_list.retain(|r| !suppressed(r.key.pc_lo) && !suppressed(r.key.pc_hi));
        stats.races_suppressed = (before - race_list.len()) as u64;
    }
    stats.races = race_list.len() as u64;
    race_list
}
