//! Analysis orchestration: task scheduling, parallel workers, statistics.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use sword_trace::SessionDir;

use crate::build::{ReaderPool, DEFAULT_CHUNK_BYTES};
use crate::intervals::{build_structure, intervals_concurrent, Group, Task};
use crate::load::LoadedSession;
use crate::race::{check_pair, Race, RaceSet};

/// Which exact-overlap solver to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverChoice {
    /// Number-theoretic Diophantine solve (production path).
    Diophantine,
    /// Branch-and-bound ILP (mirrors the paper's GLPK formulation).
    Ilp,
}

/// Analyzer configuration.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Worker threads comparing interval trees (the paper distributes
    /// this across cluster nodes; we distribute across cores).
    pub workers: usize,
    /// Streaming chunk size for log reads.
    pub chunk_bytes: usize,
    /// Exact-overlap solver.
    pub solver: SolverChoice,
    /// Restrict analysis to these parallel-region ids (`None` = all).
    /// This is the targeted-analysis mode the per-region metadata enables
    /// (§III-B: "extract from the log file the chunk of data for a
    /// specific barrier interval") — useful when re-checking one suspect
    /// region of a huge production log. Cross-region pairs are analyzed
    /// only when *both* regions are in focus.
    pub focus_regions: Option<Vec<u64>>,
    /// Suppression patterns: a race is dropped from the report when
    /// *either* of its source locations contains one of these substrings
    /// (TSan-suppressions style — how a production user silences the
    /// triaged-benign races like HPCCG's same-value norm write while
    /// hunting new ones).
    pub suppressions: Vec<String>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            solver: SolverChoice::Diophantine,
            focus_regions: None,
            suppressions: Vec::new(),
        }
    }
}

impl AnalysisConfig {
    /// Single-threaded configuration (deterministic scheduling for
    /// tests/debugging).
    pub fn sequential() -> Self {
        AnalysisConfig { workers: 1, ..AnalysisConfig::default() }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the solver.
    pub fn with_solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the streaming chunk size.
    pub fn with_chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes.max(1);
        self
    }

    /// Restricts analysis to the given region ids.
    pub fn with_focus_regions(mut self, regions: Vec<u64>) -> Self {
        self.focus_regions = Some(regions);
        self
    }

    /// Adds a suppression pattern (substring of a source location).
    pub fn with_suppression(mut self, pattern: impl Into<String>) -> Self {
        self.suppressions.push(pattern.into());
        self
    }
}

/// Aggregate statistics of one analysis run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AnalysisStats {
    /// Threads (log files) in the session.
    pub threads: u64,
    /// Barrier intervals (meta rows).
    pub barrier_intervals: u64,
    /// Interval groups (`(pid, bid)` classes).
    pub groups: u64,
    /// Comparison tasks executed.
    pub tasks: u64,
    /// Interval trees built (includes rebuilds across tasks).
    pub trees_built: u64,
    /// Total tree nodes (the paper's `M`).
    pub nodes: u64,
    /// Raw access events folded into trees (the paper's `N`).
    pub events: u64,
    /// Uncompressed log bytes streamed.
    pub bytes_read: u64,
    /// Tree pairs compared.
    pub tree_pairs: u64,
    /// Candidate node pairs (coarse range overlap).
    pub candidate_pairs: u64,
    /// Exact constraint solves.
    pub solver_calls: u64,
    /// Region pairs pruned as sequential.
    pub region_pairs_skipped: u64,
    /// Region pairs that produced cross tasks.
    pub region_pairs_considered: u64,
    /// Distinct races (source-line pairs).
    pub races: u64,
    /// Racy node pairs before dedup.
    pub racy_node_pairs: u64,
    /// Distinct races dropped by suppression patterns.
    pub races_suppressed: u64,
    /// Total analysis wall time (the paper's single-node OA column).
    pub wall_secs: f64,
    /// Longest single task (proxy for the paper's distributed MT column:
    /// with one task per node, the makespan is the longest task).
    pub max_task_secs: f64,
}

/// Analysis output: deduplicated races and statistics.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Races sorted by source-location pair.
    pub races: Vec<Race>,
    /// Run statistics.
    pub stats: AnalysisStats,
    /// Wall seconds of every comparison task (unordered), for the
    /// distributed-analysis model.
    pub task_secs: Vec<f64>,
}

impl AnalysisResult {
    /// Number of distinct races.
    pub fn race_count(&self) -> usize {
        self.races.len()
    }

    /// Models distributing the comparison tasks over `nodes` cluster
    /// nodes (the paper runs its offline analysis "across a cluster of
    /// nodes"): longest-processing-time-first greedy assignment, returning
    /// the makespan. `makespan(1)` ≈ single-node work; with more nodes
    /// than tasks it converges to the longest task
    /// ([`AnalysisStats::max_task_secs`]).
    pub fn makespan(&self, nodes: usize) -> f64 {
        let nodes = nodes.max(1);
        let mut sorted = self.task_secs.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let mut loads = vec![0.0f64; nodes];
        for t in sorted {
            let min = loads
                .iter_mut()
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .expect("nodes >= 1");
            *min += t;
        }
        loads.into_iter().fold(0.0, f64::max)
    }
}

/// Loads a session directory and analyzes it.
pub fn analyze(dir: &SessionDir, config: &AnalysisConfig) -> io::Result<AnalysisResult> {
    let session = LoadedSession::load(dir)?;
    analyze_loaded(&session, config)
}

/// Analyzes an already-loaded session.
pub fn analyze_loaded(
    session: &LoadedSession,
    config: &AnalysisConfig,
) -> io::Result<AnalysisResult> {
    let start = Instant::now();
    let structure = build_structure(session);
    let mut stats = AnalysisStats {
        threads: session.threads.len() as u64,
        barrier_intervals: session.interval_count() as u64,
        groups: structure.groups.len() as u64,
        tasks: structure.tasks.len() as u64,
        region_pairs_skipped: structure.region_pairs_skipped,
        region_pairs_considered: structure.region_pairs_considered,
        ..AnalysisStats::default()
    };

    // Targeted analysis: keep only tasks whose regions are in focus.
    let in_focus = |group: usize| -> bool {
        match &config.focus_regions {
            None => true,
            Some(focus) => focus.contains(&structure.groups[group].pid),
        }
    };
    // Order tasks by file position so each worker's reader pool streams
    // forward instead of reopening.
    let mut tasks: Vec<Task> = structure
        .tasks
        .iter()
        .filter(|t| match t {
            Task::Intra { group } => in_focus(*group),
            Task::Cross { a, b, .. } => in_focus(*a) && in_focus(*b),
        })
        .cloned()
        .collect();
    stats.tasks = tasks.len() as u64;
    let group_pos = |g: usize| -> u64 {
        structure.groups[g].members.iter().map(|m| m.meta.data_begin).min().unwrap_or(0)
    };
    tasks.sort_by_key(|t| match t {
        Task::Intra { group } => group_pos(*group),
        Task::Cross { a, b, .. } => group_pos(*a).min(group_pos(*b)),
    });

    let next = AtomicUsize::new(0);
    let merged: Mutex<(RaceSet, WorkerStats)> =
        Mutex::new((RaceSet::new(), WorkerStats::default()));
    let error: Mutex<Option<io::Error>> = Mutex::new(None);
    let workers = config.workers.max(1).min(tasks.len().max(1));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut pool = ReaderPool::new();
                let mut local_races = RaceSet::new();
                let mut local = WorkerStats::default();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(idx) else { break };
                    let t0 = Instant::now();
                    let result = run_task(
                        session,
                        &structure.groups,
                        task,
                        config,
                        &mut pool,
                        &mut local_races,
                        &mut local,
                    );
                    let dt = t0.elapsed().as_secs_f64();
                    if dt > local.max_task_secs {
                        local.max_task_secs = dt;
                    }
                    local.task_secs.push(dt);
                    if let Err(e) = result {
                        *error.lock() = Some(e);
                        break;
                    }
                }
                let mut m = merged.lock();
                m.0.merge(local_races);
                m.1.merge(&local);
                drop(m);
            });
        }
    });

    if let Some(e) = error.lock().take() {
        return Err(e);
    }
    let (races, worker_stats) = merged.into_inner();
    stats.trees_built = worker_stats.trees_built;
    stats.nodes = worker_stats.nodes;
    stats.events = worker_stats.events;
    stats.bytes_read = worker_stats.bytes_read;
    stats.tree_pairs = worker_stats.tree_pairs;
    stats.candidate_pairs = worker_stats.candidates;
    stats.solver_calls = worker_stats.solver_calls;
    stats.max_task_secs = worker_stats.max_task_secs;
    stats.racy_node_pairs = races.raw_pairs;
    let mut race_list = races.into_sorted();
    if !config.suppressions.is_empty() {
        let suppressed = |pc: sword_trace::PcId| {
            let loc = session.pcs.display(pc);
            config.suppressions.iter().any(|pat| loc.contains(pat.as_str()))
        };
        let before = race_list.len();
        race_list.retain(|r| !suppressed(r.key.pc_lo) && !suppressed(r.key.pc_hi));
        stats.races_suppressed = (before - race_list.len()) as u64;
    }
    stats.races = race_list.len() as u64;
    stats.wall_secs = start.elapsed().as_secs_f64();
    Ok(AnalysisResult { races: race_list, stats, task_secs: worker_stats.task_secs })
}

#[derive(Clone, Debug, Default)]
struct WorkerStats {
    trees_built: u64,
    nodes: u64,
    events: u64,
    bytes_read: u64,
    tree_pairs: u64,
    candidates: u64,
    solver_calls: u64,
    max_task_secs: f64,
    task_secs: Vec<f64>,
}

impl WorkerStats {
    fn merge(&mut self, other: &WorkerStats) {
        self.trees_built += other.trees_built;
        self.nodes += other.nodes;
        self.events += other.events;
        self.bytes_read += other.bytes_read;
        self.tree_pairs += other.tree_pairs;
        self.candidates += other.candidates;
        self.solver_calls += other.solver_calls;
        if other.max_task_secs > self.max_task_secs {
            self.max_task_secs = other.max_task_secs;
        }
        self.task_secs.extend_from_slice(&other.task_secs);
    }
}

fn build_group_trees(
    session: &LoadedSession,
    group: &Group,
    config: &AnalysisConfig,
    pool: &mut ReaderPool,
    stats: &mut WorkerStats,
) -> io::Result<Vec<(usize, crate::build::BiTree)>> {
    let mut trees = Vec::with_capacity(group.members.len());
    for (i, member) in group.members.iter().enumerate() {
        if member.meta.size == 0 {
            continue; // empty interval: nothing to race
        }
        let tree = pool.build(
            &session.dir,
            member.tid,
            member.meta.data_begin,
            member.meta.size,
            config.chunk_bytes,
        )?;
        stats.trees_built += 1;
        stats.nodes += tree.node_count() as u64;
        stats.events += tree.accesses;
        stats.bytes_read += tree.bytes_read;
        if tree.node_count() > 0 {
            trees.push((i, tree));
        }
    }
    Ok(trees)
}

fn run_task(
    session: &LoadedSession,
    groups: &[Group],
    task: &Task,
    config: &AnalysisConfig,
    pool: &mut ReaderPool,
    races: &mut RaceSet,
    stats: &mut WorkerStats,
) -> io::Result<()> {
    match *task {
        Task::Intra { group } => {
            let g = &groups[group];
            let trees = build_group_trees(session, g, config, pool, stats)?;
            for i in 0..trees.len() {
                for j in i + 1..trees.len() {
                    stats.tree_pairs += 1;
                    let pair_stats =
                        check_pair(&trees[i].1, &trees[j].1, g.pid, config.solver, races);
                    stats.candidates += pair_stats.candidates;
                    stats.solver_calls += pair_stats.solver_calls;
                }
            }
        }
        Task::Cross { a, b, all_concurrent } => {
            let ga = &groups[a];
            let gb = &groups[b];
            // Build in file-position order for the reader pool's sake.
            let (first, second) = if ga.members.iter().map(|m| m.meta.data_begin).min()
                <= gb.members.iter().map(|m| m.meta.data_begin).min()
            {
                (ga, gb)
            } else {
                (gb, ga)
            };
            let trees_first = build_group_trees(session, first, config, pool, stats)?;
            let trees_second = build_group_trees(session, second, config, pool, stats)?;
            for (ia, ta) in &trees_first {
                for (ib, tb) in &trees_second {
                    let ma = &first.members[*ia];
                    let mb = &second.members[*ib];
                    if !all_concurrent && !intervals_concurrent(ma, mb) {
                        continue;
                    }
                    if ma.tid == mb.tid {
                        continue;
                    }
                    stats.tree_pairs += 1;
                    let pair_stats = check_pair(ta, tb, first.pid, config.solver, races);
                    stats.candidates += pair_stats.candidates;
                    stats.solver_calls += pair_stats.solver_calls;
                }
            }
        }
    }
    Ok(())
}
