//! The SWORD offline race analyzer (§III-B of the paper).
//!
//! Consumes a session directory written by `sword-runtime` and reports
//! data races:
//!
//! 1. **Load** the per-thread meta-data files (Table I rows), the region
//!    table, and the PC table ([`load::LoadedSession`]).
//! 2. **Reconstruct concurrency**: each barrier interval's full
//!    offset-span label is its region's fork label extended by the row's
//!    `[offset, span]` pair; two intervals may race iff their labels
//!    compare concurrent under the barrier-aware offset-span rule
//!    ([`sword_osl::Label::compare_barrier_aware`] — case 1/2 of the
//!    paper plus the bid ordering the paper applies within a region).
//!    Interval pairs are enumerated region-pair-wise so that sequential
//!    region pairs are skipped wholesale ([`intervals`]).
//! 3. **Stream** each interval's events out of the compressed log in
//!    chunks (never materializing a log in memory) and summarize them
//!    into an augmented red-black interval tree of strided intervals with
//!    access metadata — operation, size, PC, held-mutex set ([`build`]).
//! 4. **Compare** trees of concurrent intervals: coarse range overlap via
//!    the tree's `max_end` augmentation, then the exact strided-overlap
//!    constraint (Diophantine solve, or the branch-and-bound ILP that
//!    mirrors the paper's GLPK formulation), plus the write/atomic/mutex
//!    side conditions ([`race`]).
//!
//! Races are deduplicated by unordered source-location pair, which is how
//! the paper's tables count them.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod build;
pub mod intervals;
pub mod live;
pub mod load;
mod pipeline;
pub mod race;
pub mod report;
pub mod verdicts;

pub use analyze::{
    analyze, analyze_loaded, AnalysisConfig, AnalysisResult, AnalysisStats, FunnelConfig,
    SolverChoice, TierCounters,
};
pub use live::{LiveAnalyzer, PollDelta};
pub use load::LoadedSession;
pub use race::{AccessSite, Evidence, Race, RaceKey};
pub use report::{render_explain, render_json, render_text};
pub use verdicts::{RegionVerdict, VerdictCache};
