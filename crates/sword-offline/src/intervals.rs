//! Concurrency reconstruction: barrier intervals, full offset-span
//! labels, interval groups, and the enumeration of comparison tasks.

use std::collections::HashMap;
use std::io;

use sword_osl::{Label, Ordering as OslOrdering};
use sword_trace::{MetaRecord, ThreadId};

use crate::load::LoadedSession;
use crate::verdicts::{RegionVerdict, VerdictCache};

/// One barrier interval of one thread, with its reconstructed full label.
#[derive(Clone, Debug)]
pub struct Interval {
    /// Owning thread (log file).
    pub tid: ThreadId,
    /// The Table-I row.
    pub meta: MetaRecord,
    /// Full offset-span label: region fork label · `[offset, span]`.
    pub label: Label,
}

/// All barrier intervals of one `(pid, bid)` — the members are pairwise
/// concurrent (same region generation, different threads).
#[derive(Clone, Debug)]
pub struct Group {
    /// Region id.
    pub pid: u64,
    /// Barrier-interval id within the region.
    pub bid: u32,
    /// Member intervals, one per participating thread.
    pub members: Vec<Interval>,
}

/// A unit of comparison work for the analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Task {
    /// Compare all member pairs within one group (same region & bid).
    Intra {
        /// Group index.
        group: usize,
    },
    /// Compare members across two groups of *different* regions.
    Cross {
        /// First group index.
        a: usize,
        /// Second group index.
        b: usize,
        /// When `true`, every cross pair is concurrent (the regions' fork
        /// labels already diverge); when `false`, each member pair must be
        /// checked with the barrier-aware label comparison (ancestor
        /// nesting).
        all_concurrent: bool,
    },
}

/// The reconstructed concurrency structure.
#[derive(Debug, Default)]
pub struct Structure {
    /// Interval groups.
    pub groups: Vec<Group>,
    /// Comparison tasks (group-level).
    pub tasks: Vec<Task>,
    /// Region pairs skipped because their fork labels proved them
    /// sequential (whole cross products pruned).
    pub region_pairs_skipped: u64,
    /// Region pairs considered (tasks emitted).
    pub region_pairs_considered: u64,
}

/// Reconstructs one interval's full label from its meta row and the
/// region table.
///
/// A row whose region record is missing is `InvalidData`: without the
/// fork label the interval cannot be placed in the concurrency
/// structure, and guessing (an empty prefix) would make it look
/// root-level and falsely concurrent with everything — a truncated
/// region table must degrade to a clean error, never to invented races.
pub fn full_label(session: &LoadedSession, row: &MetaRecord) -> io::Result<Label> {
    full_label_from(&session.regions, row)
}

/// [`full_label`] against a bare region table (the live analyzer grows
/// its table incrementally, without a [`LoadedSession`]).
pub fn full_label_from(
    regions: &HashMap<u64, sword_trace::RegionRecord>,
    row: &MetaRecord,
) -> io::Result<Label> {
    let Some(region) = regions.get(&row.pid) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "meta row references region {} absent from the region table (truncated session?)",
                row.pid
            ),
        ));
    };
    let fork = region.fork_label();
    let mut pairs: Vec<(u64, u64)> = fork.pairs().iter().map(|p| (p.offset, p.span)).collect();
    pairs.push((row.offset, row.span));
    Ok(Label::from_chain(pairs))
}

/// Builds groups and comparison tasks from loaded meta-data.
///
/// Region-pair pruning: for two distinct regions `P`, `Q`, all member
/// labels share the regions' fork labels as prefixes, so
///
/// * if the fork labels diverge (compare concurrent), *every* member pair
///   diverges identically → one `Cross { all_concurrent: true }` task per
///   group pair;
/// * if one fork label is a proper prefix of the other (ancestor
///   nesting), member verdicts vary → `Cross { all_concurrent: false }`
///   tasks with per-pair label checks;
/// * otherwise the fork labels are barrier/join-ordered and so is every
///   member pair → the whole region pair is skipped.
pub fn build_structure(session: &LoadedSession) -> io::Result<Structure> {
    build_structure_with(session, &VerdictCache::disabled())
}

/// [`build_structure`] with region-pair classification routed through a
/// shared [`VerdictCache`] — the batch pipeline and the live analyzer
/// both key their verdicts on fork-label structure, so a structure built
/// here warms the same memo `check_pair` workers consult.
pub fn build_structure_with(
    session: &LoadedSession,
    cache: &VerdictCache,
) -> io::Result<Structure> {
    // Group rows by (pid, bid).
    let mut index: HashMap<(u64, u32), usize> = HashMap::new();
    let mut groups: Vec<Group> = Vec::new();
    for (tid, rows) in &session.threads {
        for row in rows {
            let key = (row.pid, row.bid);
            let gidx = *index.entry(key).or_insert_with(|| {
                groups.push(Group { pid: row.pid, bid: row.bid, members: Vec::new() });
                groups.len() - 1
            });
            groups[gidx].members.push(Interval {
                tid: *tid,
                meta: row.clone(),
                label: full_label(session, row)?,
            });
        }
    }
    // Deterministic order regardless of directory iteration.
    groups.sort_by_key(|g| (g.pid, g.bid));

    let mut tasks = Vec::new();
    // Intra-group tasks: members of the same (pid, bid) are concurrent
    // whenever the group has more than one thread.
    for (i, g) in groups.iter().enumerate() {
        if g.members.len() > 1 {
            tasks.push(Task::Intra { group: i });
        }
    }

    // Region-level classification.
    let mut region_groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, g) in groups.iter().enumerate() {
        region_groups.entry(g.pid).or_default().push(i);
    }
    let mut pids: Vec<u64> = region_groups.keys().copied().collect();
    pids.sort_unstable();

    let fork_label = |pid: u64| -> Label {
        session.regions.get(&pid).map(|r| r.fork_label()).unwrap_or_else(Label::empty)
    };

    let mut skipped = 0u64;
    let mut considered = 0u64;
    for (pi, &p) in pids.iter().enumerate() {
        let fp = fork_label(p);
        for &q in &pids[pi + 1..] {
            let fq = fork_label(q);
            match cache.region_verdict(&fp, &fq) {
                RegionVerdict::AllConcurrent => {
                    considered += 1;
                    for &ga in &region_groups[&p] {
                        for &gb in &region_groups[&q] {
                            tasks.push(Task::Cross { a: ga, b: gb, all_concurrent: true });
                        }
                    }
                }
                RegionVerdict::Filtered => {
                    // Ancestor nesting (or identical fork labels): member
                    // pairs must be checked individually.
                    considered += 1;
                    for &ga in &region_groups[&p] {
                        for &gb in &region_groups[&q] {
                            tasks.push(Task::Cross { a: ga, b: gb, all_concurrent: false });
                        }
                    }
                }
                RegionVerdict::Ordered => {
                    // Fork labels are barrier/join-ordered at a divergent
                    // pair → all member pairs inherit the ordering.
                    skipped += 1;
                }
            }
        }
    }

    Ok(Structure {
        groups,
        tasks,
        region_pairs_skipped: skipped,
        region_pairs_considered: considered,
    })
}

/// `true` when one label's pair sequence is a (possibly equal) prefix of
/// the other's.
pub(crate) fn is_prefix_related(a: &Label, b: &Label) -> bool {
    let (short, long) =
        if a.depth() <= b.depth() { (a.pairs(), b.pairs()) } else { (b.pairs(), a.pairs()) };
    long[..short.len()] == *short
}

/// Decides whether two intervals may race, per the barrier-aware
/// offset-span rule. Used for `Cross { all_concurrent: false }` member
/// pairs (and directly by tests).
pub fn intervals_concurrent(a: &Interval, b: &Interval) -> bool {
    if a.tid == b.tid {
        return false;
    }
    a.label.compare_barrier_aware(&b.label) == OslOrdering::Concurrent
}

/// `true` when `row` is an explicit task's body interval: the single row
/// a task pseudo-region's executing thread emits, labeled
/// `fork_label · [1, TASK_SPAN]`. Continuation rows carry offset 0 under
/// the same pseudo-region and are *not* task rows.
pub fn is_task_row(row: &MetaRecord) -> bool {
    row.span == sword_osl::TASK_SPAN && row.offset == 1
}

/// `true` when `a` and `b` are task-body intervals ordered by the task
/// dependence graph: one task's pseudo-region is reachable from the
/// other's over `depend` predecessor edges (in either direction).
///
/// Sibling tasks' labels diverge at their `[0/1, TASK_SPAN]` pairs and
/// compare concurrent — the dependence partial order layers *above* the
/// labels, exactly as the sequencer enforces it at run time. A task's
/// body cannot span a barrier, so ordering the two body rows is the
/// whole ordering.
pub fn dep_ordered(
    regions: &HashMap<u64, sword_trace::RegionRecord>,
    a: &Interval,
    b: &Interval,
) -> bool {
    if !is_task_row(&a.meta) || !is_task_row(&b.meta) {
        return false;
    }
    dep_reachable(regions, a.meta.pid, b.meta.pid) || dep_reachable(regions, b.meta.pid, a.meta.pid)
}

/// DFS over `depend` predecessor edges: `true` when `to` is in `from`'s
/// dependence closure (i.e. `to`'s task completes before `from` starts).
fn dep_reachable(regions: &HashMap<u64, sword_trace::RegionRecord>, from: u64, to: u64) -> bool {
    let mut seen: Vec<u64> = Vec::new();
    let mut stack: Vec<u64> = regions.get(&from).map(|r| r.deps.clone()).unwrap_or_default();
    while let Some(pid) = stack.pop() {
        if pid == to {
            return true;
        }
        if !seen.contains(&pid) {
            seen.push(pid);
            if let Some(r) = regions.get(&pid) {
                stack.extend(r.deps.iter().copied());
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_trace::{PcTable, RegionRecord, SessionDir};

    fn meta_row(
        pid: u64,
        ppid: Option<u64>,
        bid: u32,
        offset: u64,
        span: u64,
        level: u32,
    ) -> MetaRecord {
        MetaRecord { pid, ppid, bid, offset, span, level, data_begin: 0, size: 0 }
    }

    fn session_with(
        threads: Vec<(ThreadId, Vec<MetaRecord>)>,
        regions: Vec<RegionRecord>,
    ) -> LoadedSession {
        let mut map = HashMap::new();
        for r in regions {
            map.insert(r.pid, r);
        }
        LoadedSession {
            dir: SessionDir::new("/nonexistent"),
            threads,
            regions: map,
            pcs: PcTable::new(),
        }
    }

    #[test]
    fn same_region_same_bid_grouped() {
        // One region, 2 threads, 2 barrier intervals each.
        let region = RegionRecord {
            pid: 0,
            ppid: None,
            level: 1,
            span: 2,
            fork_label: vec![0, 1],
            deps: vec![],
        };
        let s = session_with(
            vec![
                (0, vec![meta_row(0, None, 0, 0, 2, 1), meta_row(0, None, 1, 2, 2, 1)]),
                (1, vec![meta_row(0, None, 0, 1, 2, 1), meta_row(0, None, 1, 3, 2, 1)]),
            ],
            vec![region],
        );
        let st = build_structure(&s).unwrap();
        assert_eq!(st.groups.len(), 2);
        assert!(st.groups.iter().all(|g| g.members.len() == 2));
        // Two intra tasks, no cross tasks (single region).
        assert_eq!(st.tasks.len(), 2);
        assert!(st.tasks.iter().all(|t| matches!(t, Task::Intra { .. })));
    }

    #[test]
    fn sequential_regions_pruned() {
        // Two top-level regions forked one after the other: fork labels
        // [0,1] and [1,1].
        let r0 = RegionRecord {
            pid: 0,
            ppid: None,
            level: 1,
            span: 2,
            fork_label: vec![0, 1],
            deps: vec![],
        };
        let r1 = RegionRecord {
            pid: 1,
            ppid: None,
            level: 1,
            span: 2,
            fork_label: vec![1, 1],
            deps: vec![],
        };
        let s = session_with(
            vec![
                (0, vec![meta_row(0, None, 0, 0, 2, 1), meta_row(1, None, 0, 0, 2, 1)]),
                (1, vec![meta_row(0, None, 0, 1, 2, 1), meta_row(1, None, 0, 1, 2, 1)]),
            ],
            vec![r0, r1],
        );
        let st = build_structure(&s).unwrap();
        assert_eq!(st.groups.len(), 2);
        assert_eq!(st.region_pairs_skipped, 1);
        assert_eq!(st.region_pairs_considered, 0);
        assert_eq!(st.tasks.len(), 2, "only the intra tasks remain");
    }

    #[test]
    fn nested_concurrent_regions_cross_all() {
        // Outer region 0 forks threads [0,1][i,2]; each forks an inner
        // region. Inner fork labels [0,1][0,2] and [0,1][1,2] diverge →
        // concurrent.
        let outer = RegionRecord {
            pid: 0,
            ppid: None,
            level: 1,
            span: 2,
            fork_label: vec![0, 1],
            deps: vec![],
        };
        let inner_a = RegionRecord {
            pid: 1,
            ppid: Some(0),
            level: 2,
            span: 2,
            fork_label: vec![0, 1, 0, 2],
            deps: vec![],
        };
        let inner_b = RegionRecord {
            pid: 2,
            ppid: Some(0),
            level: 2,
            span: 2,
            fork_label: vec![0, 1, 1, 2],
            deps: vec![],
        };
        let s = session_with(
            vec![
                (0, vec![meta_row(0, None, 0, 0, 2, 1)]),
                (1, vec![meta_row(0, None, 0, 1, 2, 1)]),
                (2, vec![meta_row(1, Some(0), 0, 0, 2, 2)]),
                (3, vec![meta_row(1, Some(0), 0, 1, 2, 2)]),
                (4, vec![meta_row(2, Some(0), 0, 0, 2, 2)]),
                (5, vec![meta_row(2, Some(0), 0, 1, 2, 2)]),
            ],
            vec![outer, inner_a, inner_b],
        );
        let st = build_structure(&s).unwrap();
        // inner_a vs inner_b: fork labels concurrent → all_concurrent.
        let cross_ab = st
            .tasks
            .iter()
            .filter(|t| matches!(t, Task::Cross { all_concurrent: true, .. }))
            .count();
        assert_eq!(cross_ab, 1);
        // outer vs inner_a and outer vs inner_b: prefix-related → filtered
        // cross tasks.
        let cross_filtered = st
            .tasks
            .iter()
            .filter(|t| matches!(t, Task::Cross { all_concurrent: false, .. }))
            .count();
        assert_eq!(cross_filtered, 2);
    }

    #[test]
    fn prefix_related_member_filtering() {
        // Outer thread 0's interval vs its own nested region's threads:
        // sequential (ancestor). Outer thread 1's interval vs that nested
        // region: concurrent (R3 of Figure 2).
        let outer = RegionRecord {
            pid: 0,
            ppid: None,
            level: 1,
            span: 2,
            fork_label: vec![0, 1],
            deps: vec![],
        };
        let inner = RegionRecord {
            pid: 1,
            ppid: Some(0),
            level: 2,
            span: 2,
            fork_label: vec![0, 1, 0, 2],
            deps: vec![],
        };
        let s = session_with(
            vec![
                (0, vec![meta_row(0, None, 0, 0, 2, 1)]),
                (1, vec![meta_row(0, None, 0, 1, 2, 1)]),
                (2, vec![meta_row(1, Some(0), 0, 0, 2, 2)]),
            ],
            vec![outer, inner],
        );
        let st = build_structure(&s).unwrap();
        let outer_group = st.groups.iter().find(|g| g.pid == 0).unwrap();
        let inner_group = st.groups.iter().find(|g| g.pid == 1).unwrap();
        let outer0 = outer_group.members.iter().find(|m| m.tid == 0).unwrap();
        let outer1 = outer_group.members.iter().find(|m| m.tid == 1).unwrap();
        let inner0 = &inner_group.members[0];
        assert!(
            !intervals_concurrent(outer0, inner0),
            "forker's interval is ordered against its nested region"
        );
        assert!(
            intervals_concurrent(outer1, inner0),
            "sibling outer thread races with the nested region"
        );
    }

    #[test]
    fn missing_region_record_is_invalid_data() {
        // A meta row whose region record is gone (truncated region
        // table) must fail cleanly: an empty-prefix fallback would make
        // the interval look root-level and invent races. Found by the
        // fuzzer's truncate-regions fault injection.
        let s = session_with(vec![(0, vec![meta_row(7, None, 0, 0, 2, 1)])], vec![]);
        let err = build_structure(&s).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("region 7"), "{err}");
        let err = full_label(&s, &meta_row(7, None, 0, 0, 2, 1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn same_tid_never_concurrent() {
        let a = Interval {
            tid: 3,
            meta: meta_row(0, None, 0, 0, 2, 1),
            label: Label::from_chain([(0, 1), (0, 2)]),
        };
        let b = Interval {
            tid: 3,
            meta: meta_row(1, None, 0, 1, 2, 1),
            label: Label::from_chain([(0, 1), (1, 2)]),
        };
        assert!(!intervals_concurrent(&a, &b));
    }
}
