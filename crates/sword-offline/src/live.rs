//! Incremental analysis of in-progress sessions.
//!
//! [`LiveAnalyzer`] follows a session that a live-publishing collector
//! (`SwordConfig::live`) is still writing: every [`poll`] ingests the
//! barrier intervals newly covered by the flush watermark and analyzes
//! exactly the *new* interval pairs — each new interval against the
//! intervals already seen (new×old) and against the other arrivals of
//! the same poll (new×new). Because every unordered interval pair is
//! compared exactly once, with the same region-pair pruning, per-pair
//! concurrency checks, and solver as the batch pipeline, the
//! deduplicated race set grows monotonically toward **exactly** the
//! batch result: once the session finishes, [`into_result`] equals
//! `analyze` on the finished directory (same race keys and occurrence
//! counts, same `tree_pairs`/`candidate_pairs`/`solver_calls`; tree
//! *build* counters differ because the live path caches trees instead
//! of rebuilding per task).
//!
//! Processing is sequential within a poll (`AnalysisConfig::workers` is
//! ignored here); interval trees are kept in a bounded LRU cache so a
//! long watch holds O(budget) nodes, not the whole log.
//!
//! [`poll`]: LiveAnalyzer::poll
//! [`into_result`]: LiveAnalyzer::into_result

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader};
use std::time::Instant;

use sword_metrics::{DurationHist, StageTable};
use sword_obs::{Gauge, Histogram, SiteCounters, ThreadJournal};
use sword_osl::Label;
use sword_trace::{PcTable, RegionRecord, SessionDir, SessionPoller};

use crate::analyze::{finalize_races, AnalysisConfig, AnalysisResult, AnalysisStats};
use crate::build::{ReaderPool, TreeCache};
use crate::intervals::{dep_ordered, full_label_from, intervals_concurrent, Group, Interval};
use crate::pipeline::WorkerStats;
use crate::race::{check_pair, CompareCtx, Race, RaceSet};
use crate::verdicts::{RegionVerdict, VerdictCache};

/// What one [`LiveAnalyzer::poll`] produced.
#[derive(Clone, Debug, Default)]
pub struct PollDelta {
    /// Barrier intervals newly ingested.
    pub new_intervals: usize,
    /// Region records newly ingested.
    pub new_regions: usize,
    /// Tree pairs compared by this poll.
    pub tree_pairs: u64,
    /// Races whose source-line pair was first seen this poll.
    pub new_races: Vec<Race>,
    /// Distinct races accumulated so far.
    pub total_races: usize,
    /// Live watermark generation at poll time (`None` before the first
    /// publish and for sessions without a watermark file).
    pub generation: Option<u64>,
    /// `true` once the session's metadata is complete — either the
    /// watermark says `finished` or the session has no watermark at all
    /// (pre-live sessions are complete by definition).
    pub finished: bool,
}

/// Incremental analyzer over a (possibly still running) session.
pub struct LiveAnalyzer {
    dir: SessionDir,
    config: AnalysisConfig,
    poller: SessionPoller,
    regions: HashMap<u64, RegionRecord>,
    pcs: PcTable,
    pcs_loaded: bool,
    groups: Vec<Group>,
    group_index: HashMap<(u64, u32), usize>,
    /// Region-pair verdicts, keyed by unordered `(min pid, max pid)` — a
    /// pid-level fast path in front of the structural [`VerdictCache`].
    verdicts: HashMap<(u64, u64), RegionVerdict>,
    /// The shared structural verdict memo (region classification by fork
    /// label shape plus solver witnesses), identical to the batch
    /// pipeline's.
    verdict_cache: VerdictCache,
    races: RaceSet,
    worker: WorkerStats,
    stages: StageTable,
    cache: TreeCache,
    pool: ReaderPool,
    poll_hist: DurationHist,
    finished: bool,
    /// `--obs` recorders (all `None` when observability is off): the
    /// poller's journal thread, the publish-staleness gauge, and the
    /// solver-latency histogram shared with the batch pipeline.
    journal: Option<ThreadJournal>,
    lag_gauge: Option<Gauge>,
    solver_hist: Option<Histogram>,
    /// Per-site attribution accumulator (`AnalysisConfig::sites`),
    /// folded into the shared table by [`LiveAnalyzer::into_result`].
    site_acc: Option<SiteCounters>,
}

impl LiveAnalyzer {
    /// Creates an analyzer that has ingested nothing yet.
    pub fn new(dir: &SessionDir, config: &AnalysisConfig) -> Self {
        config.register_mem_sources();
        let journal = config.journal_for("live-poller");
        let lag_gauge = config.obs.as_ref().map(|o| {
            o.registry.gauge(
                "sword_live_poller_lag_us",
                "Age of the newest watermark publish when the poller ingested it (us)",
            )
        });
        let solver_hist = config.solver_hist();
        let verdict_cache = VerdictCache::new(config.verdict_cache);
        config.register_core_sources(&verdict_cache);
        LiveAnalyzer {
            dir: dir.clone(),
            config: config.clone(),
            poller: SessionPoller::new(dir),
            regions: HashMap::new(),
            pcs: PcTable::new(),
            pcs_loaded: false,
            groups: Vec::new(),
            group_index: HashMap::new(),
            verdicts: HashMap::new(),
            verdict_cache,
            races: RaceSet::new(),
            worker: WorkerStats::default(),
            stages: StageTable::new(),
            cache: TreeCache::new(config.tree_cache_nodes, config.mem_gauge.clone()),
            pool: ReaderPool::with_mode(
                config.read_mode,
                config.source_stats.clone(),
                config.image_cache.clone(),
            ),
            poll_hist: DurationHist::new(),
            finished: false,
            journal,
            lag_gauge,
            solver_hist,
            site_acc: config.sites.as_ref().map(|_| SiteCounters::new()),
        }
    }

    /// `true` once a poll has observed the session as complete.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Distinct races accumulated so far.
    pub fn race_count(&self) -> usize {
        self.races.len()
    }

    /// The per-stage timing table accumulated across polls.
    pub fn stages(&self) -> &StageTable {
        &self.stages
    }

    /// The PC table as currently loaded (may be empty until the run
    /// persists it).
    pub fn pcs(&self) -> &PcTable {
        &self.pcs
    }

    /// Ingests and analyzes everything newly published since the last
    /// poll.
    pub fn poll(&mut self) -> io::Result<PollDelta> {
        let poll_start = Instant::now();
        let span_start = self.journal.as_ref().map(|j| j.now_us());
        // Poller lag: how stale the newest publish is at the moment the
        // poller ingests it — the watermark file's age. A growing value
        // means polls are falling behind the collector's publish cadence.
        if let Some(gauge) = &self.lag_gauge {
            if let Ok(age) = std::fs::metadata(self.dir.live_path())
                .and_then(|m| m.modified())
                .map(|t| t.elapsed().unwrap_or_default())
            {
                gauge.set(age.as_micros() as u64);
            }
        }
        let t0 = Instant::now();
        let session_delta = self.poller.poll()?;
        self.stages.record(
            "load-meta",
            t0.elapsed().as_secs_f64(),
            session_delta.interval_count() as u64,
            0,
        );
        let mut delta = PollDelta {
            new_regions: session_delta.new_regions.len(),
            generation: session_delta.status.map(|s| s.generation),
            finished: session_delta.status.is_none_or(|s| s.finished),
            ..PollDelta::default()
        };
        self.finished = delta.finished;
        // Regions first: any pid a new row references is covered by this
        // (or an earlier) region snapshot, never a later one.
        for r in session_delta.new_regions {
            self.regions.insert(r.pid, r);
        }
        if !self.pcs_loaded && self.dir.pcs_path().exists() {
            self.pcs = PcTable::read_from(BufReader::new(File::open(self.dir.pcs_path())?))?;
            self.pcs_loaded = true;
        }

        // Label the new intervals and order them by file position so the
        // reader pool streams forward.
        let t0 = Instant::now();
        let mut fresh: Vec<Interval> = Vec::new();
        for (tid, rows) in session_delta.new_rows {
            for row in rows {
                let label = full_label_from(&self.regions, &row)?;
                fresh.push(Interval { tid, meta: row, label });
            }
        }
        fresh.sort_by_key(|iv| iv.meta.data_begin);
        delta.new_intervals = fresh.len();
        self.stages.record("build-structure", t0.elapsed().as_secs_f64(), fresh.len() as u64, 0);

        let before = self.worker.clone();
        let mut poll_races = RaceSet::new();
        for interval in fresh {
            self.ingest(interval, &mut poll_races)?;
        }
        delta.tree_pairs = self.worker.tree_pairs - before.tree_pairs;
        self.stages.record(
            "tree-build",
            self.worker.build_secs - before.build_secs,
            self.worker.trees_built - before.trees_built,
            self.worker.bytes_read - before.bytes_read,
        );
        self.stages.record(
            "compare",
            self.worker.compare_secs - before.compare_secs,
            delta.tree_pairs,
            0,
        );

        // Dedup/report stage: fold this poll's races into the session
        // set, surfacing the source-line pairs seen for the first time.
        let t0 = Instant::now();
        delta.new_races =
            poll_races.iter().filter(|r| !self.races.contains(&r.key)).cloned().collect();
        delta.new_races.sort_by_key(|r| r.key);
        self.races.merge(poll_races);
        delta.total_races = self.races.len();
        self.stages.record(
            "dedup-report",
            t0.elapsed().as_secs_f64(),
            delta.new_races.len() as u64,
            0,
        );
        let secs = poll_start.elapsed().as_secs_f64();
        if secs > self.worker.max_task_secs {
            self.worker.max_task_secs = secs;
        }
        self.poll_hist.record(secs);
        if let (Some(j), Some(start)) = (&self.journal, span_start) {
            let dur = j.now_us().saturating_sub(start);
            j.span_closed(
                "poll",
                start,
                dur,
                vec![
                    ("new_intervals".to_string(), delta.new_intervals as f64),
                    ("tree_pairs".to_string(), delta.tree_pairs as f64),
                    ("new_races".to_string(), delta.new_races.len() as f64),
                ],
            );
        }
        Ok(delta)
    }

    /// Polls until the session reports finished, then returns the final
    /// analysis result. Equivalent to batch `analyze` on the finished
    /// directory (see the module docs for the exact sense).
    pub fn into_result(mut self) -> io::Result<AnalysisResult> {
        if !self.finished {
            self.poll()?;
        }
        if !self.pcs_loaded && self.dir.pcs_path().exists() {
            self.pcs = PcTable::read_from(BufReader::new(File::open(self.dir.pcs_path())?))?;
            self.pcs_loaded = true;
        }
        if let (Some(table), Some(acc)) = (&self.config.sites, self.site_acc.take()) {
            table.absorb(acc);
        }
        // Region-pair accounting over *all* pid pairs, exactly as the
        // batch structure pass counts them (including pairs no comparison
        // ever touched, e.g. regions with only empty intervals).
        let mut pids: Vec<u64> = Vec::new();
        for g in &self.groups {
            if !pids.contains(&g.pid) {
                pids.push(g.pid);
            }
        }
        pids.sort_unstable();
        let mut skipped = 0u64;
        let mut considered = 0u64;
        for (i, &p) in pids.iter().enumerate() {
            for &q in &pids[i + 1..] {
                match self.verdict(p, q) {
                    RegionVerdict::Ordered => skipped += 1,
                    _ => considered += 1,
                }
            }
        }
        // Reconstruct the batch task count: one intra task per in-focus
        // multi-member group, one cross task per group pair of every
        // considered, in-focus region pair.
        let in_focus = |pid: u64| -> bool {
            self.config.focus_regions.as_ref().is_none_or(|f| f.contains(&pid))
        };
        let mut tasks = 0u64;
        for g in &self.groups {
            if g.members.len() > 1 && in_focus(g.pid) {
                tasks += 1;
            }
        }
        let mut region_groups: HashMap<u64, u64> = HashMap::new();
        for g in &self.groups {
            *region_groups.entry(g.pid).or_insert(0) += 1;
        }
        for (i, &p) in pids.iter().enumerate() {
            for &q in &pids[i + 1..] {
                if self.verdicts[&(p.min(q), p.max(q))] != RegionVerdict::Ordered
                    && in_focus(p)
                    && in_focus(q)
                {
                    tasks += region_groups[&p] * region_groups[&q];
                }
            }
        }

        let mut stats = AnalysisStats {
            threads: self.poller.thread_count() as u64,
            barrier_intervals: self.poller.rows_seen() as u64,
            groups: self.groups.len() as u64,
            tasks,
            region_pairs_skipped: skipped,
            region_pairs_considered: considered,
            trees_built: self.worker.trees_built,
            nodes: self.worker.nodes,
            events: self.worker.events,
            bytes_read: self.worker.bytes_read,
            tree_pairs: self.worker.tree_pairs,
            candidate_pairs: self.worker.candidates,
            solver_calls: self.worker.solver_calls,
            prescreened_pairs: self.worker.prescreened,
            max_task_secs: self.worker.max_task_secs,
            wall_secs: self.poll_hist.total_secs(),
            ..AnalysisStats::default()
        };
        let races = finalize_races(self.races, &self.pcs, &self.config.suppressions, &mut stats);
        Ok(AnalysisResult { races, stats, task_hist: self.poll_hist, stages: self.stages })
    }

    fn fork_label(&self, pid: u64) -> Label {
        self.regions.get(&pid).map(|r| r.fork_label()).unwrap_or_else(Label::empty)
    }

    /// Region-pair verdict with pid-level memoization (fork labels are
    /// immutable once a region record exists, so the verdict is stable);
    /// misses classify through the shared structural [`VerdictCache`], so
    /// regions with identical fork-label shapes resolve once across the
    /// whole watch.
    fn verdict(&mut self, p: u64, q: u64) -> RegionVerdict {
        let key = (p.min(q), p.max(q));
        if let Some(v) = self.verdicts.get(&key) {
            return *v;
        }
        let fp = self.fork_label(key.0);
        let fq = self.fork_label(key.1);
        let verdict = self.verdict_cache.region_verdict(&fp, &fq);
        self.verdicts.insert(key, verdict);
        verdict
    }

    fn in_focus(&self, pid: u64) -> bool {
        self.config.focus_regions.as_ref().is_none_or(|f| f.contains(&pid))
    }

    /// Analyzes one new interval against everything already ingested,
    /// then adds it to its group.
    ///
    /// Partner enumeration mirrors the batch task rules exactly: members
    /// of the interval's own `(pid, bid)` group are compared minus
    /// same-tid pairs (task chains fragment a thread's log, so one group
    /// can hold several same-tid fragments); groups of the same region
    /// but a different barrier interval are never compared; groups of
    /// other regions follow the memoized region-pair verdict — every pair
    /// for concurrent fork labels (minus same-tid), per-pair
    /// barrier-aware checks for prefix-related labels, nothing for
    /// ordered labels — and `depend`-ordered task-body pairs are skipped
    /// exactly as the batch cross arm skips them.
    fn ingest(&mut self, interval: Interval, races: &mut RaceSet) -> io::Result<()> {
        let pid = interval.meta.pid;
        let group_key = (pid, interval.meta.bid);
        let home = *self.group_index.entry(group_key).or_insert_with(|| {
            self.groups.push(Group { pid, bid: interval.meta.bid, members: Vec::new() });
            self.groups.len() - 1
        });

        if interval.meta.size > 0 && self.in_focus(pid) {
            // Resolve region-pair verdicts first (needs `&mut self` for
            // the memo table), then enumerate members immutably.
            let other_pids: Vec<u64> = self
                .groups
                .iter()
                .map(|g| g.pid)
                .filter(|&p| p != pid && self.in_focus(p))
                .collect();
            for p in other_pids {
                self.verdict(pid, p);
            }
            let mut partners: Vec<(usize, usize)> = Vec::new();
            for (gi, group) in self.groups.iter().enumerate() {
                let verdict = if gi == home {
                    // Intra semantics: every member pair counts.
                    RegionVerdict::AllConcurrent
                } else if group.pid == pid || !self.in_focus(group.pid) {
                    continue;
                } else {
                    self.verdicts[&(pid.min(group.pid), pid.max(group.pid))]
                };
                if verdict == RegionVerdict::Ordered {
                    continue;
                }
                for (mi, member) in group.members.iter().enumerate() {
                    if member.meta.size == 0 {
                        continue;
                    }
                    match verdict {
                        RegionVerdict::AllConcurrent => {
                            // Same-tid members are program-ordered — this
                            // covers both cross pairs and the same-tid
                            // fragments a task chain leaves in one group.
                            if member.tid == interval.tid {
                                continue;
                            }
                        }
                        RegionVerdict::Filtered => {
                            if !intervals_concurrent(&interval, member) {
                                continue;
                            }
                        }
                        RegionVerdict::Ordered => unreachable!("skipped above"),
                    }
                    if gi != home && dep_ordered(&self.regions, &interval, member) {
                        continue;
                    }
                    partners.push((gi, mi));
                }
            }

            let new_key = (interval.tid, interval.meta.data_begin);
            if !partners.is_empty() {
                self.cache.ensure(
                    &self.dir,
                    &interval,
                    self.config.chunk_bytes,
                    &mut self.pool,
                    &mut self.worker,
                    false,
                )?;
            }
            for (gi, mi) in partners {
                let member = self.groups[gi].members[mi].clone();
                let member_key = (member.tid, member.meta.data_begin);
                self.cache.ensure(
                    &self.dir,
                    &member,
                    self.config.chunk_bytes,
                    &mut self.pool,
                    &mut self.worker,
                    false,
                )?;
                self.cache.evict(&[new_key, member_key]);
                let (Some(ta), Some(tb)) = (self.cache.get(&new_key), self.cache.get(&member_key))
                else {
                    continue;
                };
                if ta.node_count() == 0 || tb.node_count() == 0 {
                    continue;
                }
                self.worker.tree_pairs += 1;
                let t0 = Instant::now();
                let pair_stats = check_pair(
                    ta,
                    &interval,
                    tb,
                    &member,
                    &CompareCtx {
                        solver: self.config.solver,
                        funnel: self.config.funnel,
                        cache: &self.verdict_cache,
                        tiers: &self.config.tiers,
                    },
                    races,
                    self.solver_hist.as_ref(),
                    self.site_acc.as_mut(),
                );
                self.worker.compare_secs += t0.elapsed().as_secs_f64();
                self.worker.candidates += pair_stats.candidates;
                self.worker.solver_calls += pair_stats.solver_calls;
                self.worker.prescreened += pair_stats.prescreened;
            }
        }

        self.groups[home].members.push(interval);
        Ok(())
    }
}
