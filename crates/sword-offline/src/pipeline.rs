//! The staged streaming pipeline behind [`crate::analyze_loaded`].
//!
//! The offline phase runs as explicit stages:
//!
//! ```text
//! discover ─ load-meta ─ build-structure ─┐            (caller, timed)
//!                                         ▼
//!                  pair-schedule ──(per-worker deques)──► workers
//!                  (filter + sort + deal)  + stealing    tree-build
//!                                                        compare
//!                                         ┌──(result channel)──┘
//!                                         ▼
//!                                    dedup-report
//!                                 (streaming reducer)
//! ```
//!
//! The scheduler filters tasks to the focus regions, sorts them by file
//! position so each worker's reader pool streams forward, and deals
//! contiguous chunks into one deque per worker. Workers drain their own
//! deque front-to-back (preserving the position ordering) and steal a
//! batch from the back of a victim's deque when they run dry, so the
//! pool stays saturated even when task costs are skewed. Results stream
//! through a bounded channel into a reducer that merges each task's race
//! set the moment it arrives instead of waiting for a global barrier.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel::{bounded, Sender, TrySendError};
use sword_metrics::{DurationHist, StageTable};
use sword_obs::{Counter, FlowPhase, Histogram, Obs, SiteCounters};

use crate::analyze::{journal_stage, AnalysisConfig};
use crate::build::{ReaderPool, TreeCache};
use crate::intervals::{dep_ordered, intervals_concurrent, Group, Structure, Task};
use crate::load::LoadedSession;
use crate::race::{check_pair, CompareCtx, RaceSet};
use crate::verdicts::VerdictCache;

/// Most tasks a worker grabs from a victim's deque in one steal.
const STEAL_BATCH: usize = 16;

/// Per-worker counters, accumulated across tasks and merged by the
/// reducer.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkerStats {
    pub trees_built: u64,
    pub nodes: u64,
    pub events: u64,
    pub bytes_read: u64,
    pub tree_pairs: u64,
    pub candidates: u64,
    pub solver_calls: u64,
    /// Candidate pairs retired by the fingerprint prescreen before they
    /// reached the solver (`solver_calls + prescreened` is invariant
    /// across funnel configurations).
    pub prescreened: u64,
    pub max_task_secs: f64,
    /// Fixed-footprint histogram of per-task durations.
    pub task_hist: DurationHist,
    /// Wall time inside tree construction (the tree-build stage).
    pub build_secs: f64,
    /// Wall time inside tree comparison (the compare stage).
    pub compare_secs: f64,
}

impl WorkerStats {
    pub(crate) fn merge(&mut self, other: &WorkerStats) {
        self.trees_built += other.trees_built;
        self.nodes += other.nodes;
        self.events += other.events;
        self.bytes_read += other.bytes_read;
        self.tree_pairs += other.tree_pairs;
        self.candidates += other.candidates;
        self.solver_calls += other.solver_calls;
        self.prescreened += other.prescreened;
        if other.max_task_secs > self.max_task_secs {
            self.max_task_secs = other.max_task_secs;
        }
        self.task_hist.merge(&other.task_hist);
        self.build_secs += other.build_secs;
        self.compare_secs += other.compare_secs;
    }
}

/// What one comparison task produced.
struct TaskOutcome {
    races: RaceSet,
    stats: WorkerStats,
    secs: f64,
    /// Causal-flow id minted by the worker's task span, so the reducer's
    /// merge instant continues the scheduler → worker → reducer chain.
    flow: Option<u64>,
}

/// Causal-tracing handles for the analyzer pipeline: the task-deque wait
/// histogram, the live task-queue depth, and the result-channel
/// backpressure counter. Present exactly when `--obs` is on.
struct PipelineObs {
    obs: Obs,
    task_wait_us: Histogram,
    queue_depth: Arc<AtomicU64>,
    backpressure: Counter,
}

impl PipelineObs {
    fn new(obs: &Obs, scheduled: u64) -> PipelineObs {
        let queue_depth = Arc::new(AtomicU64::new(scheduled));
        let d = Arc::clone(&queue_depth);
        obs.registry.source(
            "sword_task_queue_depth",
            "comparison tasks still waiting in the worker deques",
            move || d.load(Ordering::Relaxed) as f64,
        );
        PipelineObs {
            obs: obs.clone(),
            task_wait_us: obs.registry.histogram(
                "sword_task_queue_wait_us",
                "schedule-to-dequeue wait of a comparison task",
            ),
            queue_depth,
            backpressure: obs.registry.counter(
                "sword_result_backpressure_total",
                "worker sends that blocked on a full result channel",
            ),
        }
    }

    /// Notes one task leaving the deques: settles the depth gauge and
    /// records its wait since the scheduler dealt the deques.
    fn note_dequeue(&self, dealt_us: u64) {
        // Saturating: a stolen task can be counted on a slightly stale
        // depth; never underflow.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| Some(d.saturating_sub(1)));
        self.task_wait_us.record(self.obs.journal.now_us().saturating_sub(dealt_us));
    }
}

/// Sends a worker's result, counting result-channel backpressure: a full
/// channel means the reducer is the bottleneck, so the blocked send is
/// tallied before falling back to the blocking path.
fn send_outcome(
    tx: &Sender<io::Result<TaskOutcome>>,
    obs: Option<&PipelineObs>,
    msg: io::Result<TaskOutcome>,
) -> bool {
    let msg = match obs {
        Some(p) => match tx.try_send(msg) {
            Ok(()) => return true,
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(msg)) => {
                p.backpressure.inc();
                msg
            }
        },
        None => msg,
    };
    tx.send(msg).is_ok()
}

/// Pops the next task for worker `wi`: its own deque's front first, and
/// when that runs dry, a batch stolen from the back of the first
/// non-empty victim (back-stealing leaves the victim the file positions
/// it was already streaming toward). Tasks are only ever dealt before
/// the workers start, so an all-empty sweep means the pool is drained.
fn next_task(deques: &[Mutex<VecDeque<Task>>], wi: usize) -> Option<Task> {
    if let Some(t) = deques[wi].lock().expect("task deque lock").pop_front() {
        return Some(t);
    }
    let n = deques.len();
    for off in 1..n {
        let vi = (wi + off) % n;
        let mut stolen: VecDeque<Task> = VecDeque::new();
        {
            let mut victim = deques[vi].lock().expect("task deque lock");
            let grab = victim.len().div_ceil(2).min(STEAL_BATCH);
            for _ in 0..grab {
                let t = victim.pop_back().expect("grab bounded by len");
                stolen.push_front(t);
            }
        }
        if let Some(first) = stolen.pop_front() {
            if !stolen.is_empty() {
                deques[wi].lock().expect("task deque lock").extend(stolen);
            }
            return Some(first);
        }
    }
    None
}

/// Runs the scheduler → workers → reducer stages over a reconstructed
/// structure and returns the merged race set and counters, recording
/// per-stage wall time and throughput into `stages`.
pub(crate) fn run(
    session: &LoadedSession,
    structure: &Structure,
    config: &AnalysisConfig,
    cache: &VerdictCache,
    stages: &mut StageTable,
) -> io::Result<(RaceSet, WorkerStats, u64)> {
    let workers = config.workers.max(1);

    // Stage: pair-schedule. Filters tasks to the focus regions, orders
    // them by file position (group positions are computed once up front,
    // not re-derived inside the sort comparator), and deals contiguous
    // chunks into per-worker deques.
    let sched_journal = config.journal_for("oa-scheduler");
    let sched_s0 = sched_journal.as_ref().map(|j| j.now_us());
    let sched_t0 = Instant::now();
    let in_focus = |group: usize| -> bool {
        match &config.focus_regions {
            None => true,
            Some(focus) => focus.contains(&structure.groups[group].pid),
        }
    };
    let group_pos: Vec<u64> = structure
        .groups
        .iter()
        .map(|g| g.members.iter().map(|m| m.meta.data_begin).min().unwrap_or(0))
        .collect();
    let mut tasks: Vec<Task> = structure
        .tasks
        .iter()
        .filter(|t| match t {
            Task::Intra { group } => in_focus(*group),
            Task::Cross { a, b, .. } => in_focus(*a) && in_focus(*b),
        })
        .cloned()
        .collect();
    tasks.sort_by_key(|t| match t {
        Task::Intra { group } => group_pos[*group],
        Task::Cross { a, b, .. } => group_pos[*a].min(group_pos[*b]),
    });
    let scheduled = tasks.len() as u64;
    let deques: Vec<Mutex<VecDeque<Task>>> = {
        let chunk = tasks.len().div_ceil(workers).max(1);
        let mut dealt = tasks.into_iter();
        (0..workers).map(|_| Mutex::new(dealt.by_ref().take(chunk).collect())).collect()
    };
    let schedule_secs = sched_t0.elapsed().as_secs_f64();
    journal_stage(&sched_journal, "pair-schedule", sched_s0, ("tasks", scheduled as f64));
    let pipe_obs = config.obs.as_ref().map(|o| PipelineObs::new(o, scheduled));
    // All tasks are dealt at one moment; each task's deque wait is
    // measured from here.
    let dealt_us = pipe_obs.as_ref().map(|p| p.obs.journal.now_us()).unwrap_or(0);

    let (result_tx, result_rx) = bounded::<io::Result<TaskOutcome>>(2 * workers);

    let mut races = RaceSet::new();
    let mut merged = WorkerStats::default();
    let mut first_error: Option<io::Error> = None;
    let mut dedup_secs = 0.0f64;
    let mut outcomes = 0u64;

    std::thread::scope(|s| {
        // Stage: tree-build + compare, on `workers` threads.
        for wi in 0..workers {
            let result_tx = result_tx.clone();
            let deques = &deques;
            let pipe_obs = pipe_obs.as_ref();
            s.spawn(move || {
                let mut pool = ReaderPool::with_mode(
                    config.read_mode,
                    config.source_stats.clone(),
                    config.image_cache.clone(),
                );
                // Per-worker tree cache: intervals shared by the worker's
                // tasks are built once, not once per task. Its drop
                // credits the memory gauge before the scope joins.
                let mut trees = TreeCache::new(config.tree_cache_nodes, config.mem_gauge.clone());
                let journal = config.journal_for(format!("oa-worker-{wi}"));
                let solver_hist = config.solver_hist();
                // Per-worker attribution accumulator (lock-free on the
                // hot path), folded into the shared table once at exit.
                let mut site_acc = config.sites.as_ref().map(|_| SiteCounters::new());
                while let Some(task) = next_task(deques, wi) {
                    if let Some(p) = pipe_obs {
                        p.note_dequeue(dealt_us);
                    }
                    let s0 = journal.as_ref().map(|j| j.now_us());
                    let t0 = Instant::now();
                    let mut task_races = RaceSet::new();
                    let mut local = WorkerStats::default();
                    let result = run_task(
                        session,
                        &structure.groups,
                        &task,
                        config,
                        cache,
                        &mut pool,
                        &mut trees,
                        &mut task_races,
                        &mut local,
                        solver_hist.as_ref(),
                        &mut site_acc,
                    );
                    let secs = t0.elapsed().as_secs_f64();
                    // The task span starts this outcome's causal flow;
                    // the reducer's merge instant ends it.
                    let flow = pipe_obs.map(|p| p.obs.journal.next_flow_id());
                    if let (Some(j), Some(s0)) = (&journal, s0) {
                        j.span_closed_flow(
                            "task",
                            s0,
                            j.now_us().saturating_sub(s0),
                            vec![("tree_pairs".to_string(), local.tree_pairs as f64)],
                            flow.map(|f| (f, FlowPhase::Start)),
                        );
                    }
                    let msg = result.map(|()| TaskOutcome {
                        races: task_races,
                        stats: local,
                        secs,
                        flow,
                    });
                    if !send_outcome(&result_tx, pipe_obs, msg) {
                        break;
                    }
                }
                if let (Some(table), Some(acc)) = (&config.sites, site_acc.take()) {
                    table.absorb(acc);
                }
            });
        }
        drop(result_tx);

        // Stage: dedup-report. Merges every task's races as it arrives.
        let reduce_journal = config.journal_for("oa-reducer");
        let reduce_s0 = reduce_journal.as_ref().map(|j| j.now_us());
        for msg in result_rx.iter() {
            match msg {
                Ok(outcome) => {
                    let t0 = Instant::now();
                    if let (Some(j), Some(flow)) = (&reduce_journal, outcome.flow) {
                        j.instant_flow(
                            "merge",
                            vec![("task_secs".to_string(), outcome.secs)],
                            Some((flow, FlowPhase::End)),
                        );
                    }
                    races.merge(outcome.races);
                    merged.merge(&outcome.stats);
                    if outcome.secs > merged.max_task_secs {
                        merged.max_task_secs = outcome.secs;
                    }
                    merged.task_hist.record(outcome.secs);
                    outcomes += 1;
                    dedup_secs += t0.elapsed().as_secs_f64();
                }
                // Keep draining after an error so no worker blocks on a
                // full result channel; the scope still joins everything.
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        journal_stage(&reduce_journal, "dedup-report", reduce_s0, ("outcomes", outcomes as f64));
    });

    if let Some(e) = first_error {
        return Err(e);
    }
    stages.record("pair-schedule", schedule_secs, scheduled, 0);
    stages.record("tree-build", merged.build_secs, merged.trees_built, merged.bytes_read);
    stages.record("compare", merged.compare_secs, merged.tree_pairs, 0);
    stages.record("dedup-report", dedup_secs, outcomes, 0);
    Ok((races, merged, scheduled))
}

/// Ensures the trees of a group's non-empty members are in the worker's
/// cache, returning each such member's index and cache key. Cache hits
/// still charge the logical build counters (see [`TreeCache::ensure`]),
/// so the merged statistics are identical whatever the cache geometry.
fn ensure_group_trees(
    session: &LoadedSession,
    group: &Group,
    config: &AnalysisConfig,
    pool: &mut ReaderPool,
    trees: &mut TreeCache,
    stats: &mut WorkerStats,
) -> io::Result<Vec<(usize, (sword_trace::ThreadId, u64))>> {
    let mut keys = Vec::with_capacity(group.members.len());
    for (i, member) in group.members.iter().enumerate() {
        if member.meta.size == 0 {
            continue; // empty interval: nothing to race
        }
        trees.ensure(&session.dir, member, config.chunk_bytes, pool, stats, true)?;
        keys.push((i, (member.tid, member.meta.data_begin)));
    }
    Ok(keys)
}

/// Executes one comparison task against the worker's tree cache: the
/// task's trees are ensured (built on miss, reused on hit), the cache is
/// trimmed to budget with the task's keys pinned, and every qualifying
/// pair is compared out of the cache.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_task(
    session: &LoadedSession,
    groups: &[Group],
    task: &Task,
    config: &AnalysisConfig,
    cache: &VerdictCache,
    pool: &mut ReaderPool,
    trees: &mut TreeCache,
    races: &mut RaceSet,
    stats: &mut WorkerStats,
    solver_hist: Option<&Histogram>,
    sites: &mut Option<SiteCounters>,
) -> io::Result<()> {
    match *task {
        Task::Intra { group } => {
            let g = &groups[group];
            let keys = ensure_group_trees(session, g, config, pool, trees, stats)?;
            let pinned: Vec<_> = keys.iter().map(|(_, k)| *k).collect();
            trees.evict(&pinned);
            let t0 = Instant::now();
            for i in 0..keys.len() {
                for j in i + 1..keys.len() {
                    let (ia, ka) = keys[i];
                    let (ib, kb) = keys[j];
                    // Tasking sessions fragment a thread's log around task
                    // chains, so one (pid, bid) group can hold several
                    // same-tid fragments — program order, never a race.
                    if g.members[ia].tid == g.members[ib].tid {
                        continue;
                    }
                    let (ta, tb) =
                        (trees.get(&ka).expect("pinned"), trees.get(&kb).expect("pinned"));
                    if ta.node_count() == 0 || tb.node_count() == 0 {
                        continue;
                    }
                    stats.tree_pairs += 1;
                    let pair_stats = check_pair(
                        ta,
                        &g.members[ia],
                        tb,
                        &g.members[ib],
                        &CompareCtx {
                            solver: config.solver,
                            funnel: config.funnel,
                            cache,
                            tiers: &config.tiers,
                        },
                        races,
                        solver_hist,
                        sites.as_mut(),
                    );
                    stats.candidates += pair_stats.candidates;
                    stats.solver_calls += pair_stats.solver_calls;
                    stats.prescreened += pair_stats.prescreened;
                }
            }
            stats.compare_secs += t0.elapsed().as_secs_f64();
        }
        Task::Cross { a, b, all_concurrent } => {
            let ga = &groups[a];
            let gb = &groups[b];
            // Build in file-position order for the reader pool's sake.
            let (first, second) = if ga.members.iter().map(|m| m.meta.data_begin).min()
                <= gb.members.iter().map(|m| m.meta.data_begin).min()
            {
                (ga, gb)
            } else {
                (gb, ga)
            };
            let keys_first = ensure_group_trees(session, first, config, pool, trees, stats)?;
            let keys_second = ensure_group_trees(session, second, config, pool, trees, stats)?;
            let pinned: Vec<_> =
                keys_first.iter().chain(keys_second.iter()).map(|(_, k)| *k).collect();
            trees.evict(&pinned);
            let t0 = Instant::now();
            for &(ia, ka) in &keys_first {
                for &(ib, kb) in &keys_second {
                    let ma = &first.members[ia];
                    let mb = &second.members[ib];
                    if !all_concurrent && !intervals_concurrent(ma, mb) {
                        continue;
                    }
                    if ma.tid == mb.tid {
                        continue;
                    }
                    // Task dependence edges order whole task bodies; the
                    // labels alone say "concurrent" for siblings, so the
                    // `depend` partial order is layered on explicitly.
                    if dep_ordered(&session.regions, ma, mb) {
                        continue;
                    }
                    let (ta, tb) =
                        (trees.get(&ka).expect("pinned"), trees.get(&kb).expect("pinned"));
                    if ta.node_count() == 0 || tb.node_count() == 0 {
                        continue;
                    }
                    stats.tree_pairs += 1;
                    let pair_stats = check_pair(
                        ta,
                        ma,
                        tb,
                        mb,
                        &CompareCtx {
                            solver: config.solver,
                            funnel: config.funnel,
                            cache,
                            tiers: &config.tiers,
                        },
                        races,
                        solver_hist,
                        sites.as_mut(),
                    );
                    stats.candidates += pair_stats.candidates;
                    stats.solver_calls += pair_stats.solver_calls;
                    stats.prescreened += pair_stats.prescreened;
                }
            }
            stats.compare_secs += t0.elapsed().as_secs_f64();
        }
    }
    Ok(())
}
