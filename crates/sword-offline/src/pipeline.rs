//! The staged streaming pipeline behind [`crate::analyze_loaded`].
//!
//! The offline phase runs as explicit stages connected by bounded
//! channels with backpressure:
//!
//! ```text
//! discover ─ load-meta ─ build-structure ─┐            (caller, timed)
//!                                         ▼
//!                  pair-schedule ──(task channel)──► workers
//!                  (filter + sort)                   tree-build
//!                                                    compare
//!                                         ┌──(result channel)──┘
//!                                         ▼
//!                                    dedup-report
//!                                 (streaming reducer)
//! ```
//!
//! The scheduler filters tasks to the focus regions and sorts them by
//! file position so each worker's reader pool streams forward; workers
//! pull tasks, build interval trees, and compare them; the reducer merges
//! each task's race set the moment it arrives instead of waiting for a
//! global barrier. Both channels are bounded at twice the worker count,
//! so a slow stage throttles its producer rather than buffering the
//! whole task list or result set.

use std::io;
use std::time::Instant;

use crossbeam::channel::bounded;
use sword_metrics::StageTable;
use sword_obs::{Histogram, SiteCounters};

use crate::analyze::{journal_stage, AnalysisConfig};
use crate::build::ReaderPool;
use crate::intervals::{intervals_concurrent, Group, Structure, Task};
use crate::load::LoadedSession;
use crate::race::{check_pair, RaceSet};

/// Per-worker counters, accumulated across tasks and merged by the
/// reducer.
#[derive(Clone, Debug, Default)]
pub(crate) struct WorkerStats {
    pub trees_built: u64,
    pub nodes: u64,
    pub events: u64,
    pub bytes_read: u64,
    pub tree_pairs: u64,
    pub candidates: u64,
    pub solver_calls: u64,
    pub max_task_secs: f64,
    pub task_secs: Vec<f64>,
    /// Wall time inside tree construction (the tree-build stage).
    pub build_secs: f64,
    /// Wall time inside tree comparison (the compare stage).
    pub compare_secs: f64,
}

impl WorkerStats {
    pub(crate) fn merge(&mut self, other: &WorkerStats) {
        self.trees_built += other.trees_built;
        self.nodes += other.nodes;
        self.events += other.events;
        self.bytes_read += other.bytes_read;
        self.tree_pairs += other.tree_pairs;
        self.candidates += other.candidates;
        self.solver_calls += other.solver_calls;
        if other.max_task_secs > self.max_task_secs {
            self.max_task_secs = other.max_task_secs;
        }
        self.task_secs.extend_from_slice(&other.task_secs);
        self.build_secs += other.build_secs;
        self.compare_secs += other.compare_secs;
    }
}

/// What one comparison task produced.
struct TaskOutcome {
    races: RaceSet,
    stats: WorkerStats,
    secs: f64,
}

/// Runs the scheduler → workers → reducer stages over a reconstructed
/// structure and returns the merged race set and counters, recording
/// per-stage wall time and throughput into `stages`.
pub(crate) fn run(
    session: &LoadedSession,
    structure: &Structure,
    config: &AnalysisConfig,
    stages: &mut StageTable,
) -> io::Result<(RaceSet, WorkerStats, u64)> {
    let workers = config.workers.max(1);
    let (task_tx, task_rx) = bounded::<Task>(2 * workers);
    let (result_tx, result_rx) = bounded::<io::Result<TaskOutcome>>(2 * workers);

    let mut races = RaceSet::new();
    let mut merged = WorkerStats::default();
    let mut first_error: Option<io::Error> = None;
    let mut dedup_secs = 0.0f64;
    let mut outcomes = 0u64;

    let (scheduled, schedule_secs) = std::thread::scope(|s| {
        // Stage: pair-schedule. Filters to the focus regions, orders tasks
        // by file position, and feeds them downstream under backpressure.
        let scheduler = s.spawn(move || {
            let journal = config.journal_for("oa-scheduler");
            let s0 = journal.as_ref().map(|j| j.now_us());
            let t0 = Instant::now();
            let in_focus = |group: usize| -> bool {
                match &config.focus_regions {
                    None => true,
                    Some(focus) => focus.contains(&structure.groups[group].pid),
                }
            };
            let group_pos = |g: usize| -> u64 {
                structure.groups[g].members.iter().map(|m| m.meta.data_begin).min().unwrap_or(0)
            };
            let mut tasks: Vec<Task> = structure
                .tasks
                .iter()
                .filter(|t| match t {
                    Task::Intra { group } => in_focus(*group),
                    Task::Cross { a, b, .. } => in_focus(*a) && in_focus(*b),
                })
                .cloned()
                .collect();
            tasks.sort_by_key(|t| match t {
                Task::Intra { group } => group_pos(*group),
                Task::Cross { a, b, .. } => group_pos(*a).min(group_pos(*b)),
            });
            let scheduled = tasks.len() as u64;
            let secs = t0.elapsed().as_secs_f64();
            journal_stage(&journal, "pair-schedule", s0, ("tasks", scheduled as f64));
            for task in tasks {
                // A send fails only when every worker is gone (error
                // shutdown); the error itself arrives via the results.
                if task_tx.send(task).is_err() {
                    break;
                }
            }
            (scheduled, secs)
        });

        // Stage: tree-build + compare, on `workers` threads.
        for wi in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            s.spawn(move || {
                let mut pool = ReaderPool::new();
                let journal = config.journal_for(format!("oa-worker-{wi}"));
                let solver_hist = config.solver_hist();
                // Per-worker attribution accumulator (lock-free on the
                // hot path), folded into the shared table once at exit.
                let mut site_acc = config.sites.as_ref().map(|_| SiteCounters::new());
                for task in task_rx.iter() {
                    let s0 = journal.as_ref().map(|j| j.now_us());
                    let t0 = Instant::now();
                    let mut task_races = RaceSet::new();
                    let mut local = WorkerStats::default();
                    let result = run_task(
                        session,
                        &structure.groups,
                        &task,
                        config,
                        &mut pool,
                        &mut task_races,
                        &mut local,
                        solver_hist.as_ref(),
                        &mut site_acc,
                    );
                    let secs = t0.elapsed().as_secs_f64();
                    journal_stage(&journal, "task", s0, ("tree_pairs", local.tree_pairs as f64));
                    let msg =
                        result.map(|()| TaskOutcome { races: task_races, stats: local, secs });
                    if result_tx.send(msg).is_err() {
                        break;
                    }
                }
                if let (Some(table), Some(acc)) = (&config.sites, site_acc.take()) {
                    table.absorb(acc);
                }
            });
        }
        drop(task_rx);
        drop(result_tx);

        // Stage: dedup-report. Merges every task's races as it arrives.
        let reduce_journal = config.journal_for("oa-reducer");
        let reduce_s0 = reduce_journal.as_ref().map(|j| j.now_us());
        for msg in result_rx.iter() {
            match msg {
                Ok(outcome) => {
                    let t0 = Instant::now();
                    races.merge(outcome.races);
                    merged.merge(&outcome.stats);
                    if outcome.secs > merged.max_task_secs {
                        merged.max_task_secs = outcome.secs;
                    }
                    merged.task_secs.push(outcome.secs);
                    outcomes += 1;
                    dedup_secs += t0.elapsed().as_secs_f64();
                }
                // Keep draining after an error so no worker blocks on a
                // full result channel; the scope still joins everything.
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        journal_stage(&reduce_journal, "dedup-report", reduce_s0, ("outcomes", outcomes as f64));
        scheduler.join().expect("scheduler stage does not panic")
    });

    if let Some(e) = first_error {
        return Err(e);
    }
    stages.record("pair-schedule", schedule_secs, scheduled, 0);
    stages.record("tree-build", merged.build_secs, merged.trees_built, merged.bytes_read);
    stages.record("compare", merged.compare_secs, merged.tree_pairs, 0);
    stages.record("dedup-report", dedup_secs, outcomes, 0);
    Ok((races, merged, scheduled))
}

/// Builds the non-empty interval trees of a group's members, tagged with
/// the member index. Retained trees are charged to the analyzer's memory
/// gauge; [`release_trees`] credits them back when the task drops them.
pub(crate) fn build_group_trees(
    session: &LoadedSession,
    group: &Group,
    config: &AnalysisConfig,
    pool: &mut ReaderPool,
    stats: &mut WorkerStats,
) -> io::Result<Vec<(usize, crate::build::BiTree)>> {
    let t0 = Instant::now();
    let mut trees = Vec::with_capacity(group.members.len());
    for (i, member) in group.members.iter().enumerate() {
        if member.meta.size == 0 {
            continue; // empty interval: nothing to race
        }
        let tree = pool.build(
            &session.dir,
            member.tid,
            member.meta.data_begin,
            member.meta.size,
            config.chunk_bytes,
        )?;
        stats.trees_built += 1;
        stats.nodes += tree.node_count() as u64;
        stats.events += tree.accesses;
        stats.bytes_read += tree.bytes_read;
        if tree.node_count() > 0 {
            config.mem_gauge.alloc(tree.approx_bytes());
            trees.push((i, tree));
        }
    }
    stats.build_secs += t0.elapsed().as_secs_f64();
    Ok(trees)
}

/// Credits a task's trees back to the memory gauge as they go out of
/// scope, so the gauge's live value tracks trees actually held across
/// all workers and its peak is the analyzer's measured tree memory.
fn release_trees(config: &AnalysisConfig, trees: &[(usize, crate::build::BiTree)]) {
    for (_, tree) in trees {
        config.mem_gauge.free(tree.approx_bytes());
    }
}

/// Executes one comparison task.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_task(
    session: &LoadedSession,
    groups: &[Group],
    task: &Task,
    config: &AnalysisConfig,
    pool: &mut ReaderPool,
    races: &mut RaceSet,
    stats: &mut WorkerStats,
    solver_hist: Option<&Histogram>,
    sites: &mut Option<SiteCounters>,
) -> io::Result<()> {
    match *task {
        Task::Intra { group } => {
            let g = &groups[group];
            let trees = build_group_trees(session, g, config, pool, stats)?;
            let t0 = Instant::now();
            for i in 0..trees.len() {
                for j in i + 1..trees.len() {
                    stats.tree_pairs += 1;
                    let pair_stats = check_pair(
                        &trees[i].1,
                        &g.members[trees[i].0],
                        &trees[j].1,
                        &g.members[trees[j].0],
                        config.solver,
                        races,
                        solver_hist,
                        sites.as_mut(),
                    );
                    stats.candidates += pair_stats.candidates;
                    stats.solver_calls += pair_stats.solver_calls;
                }
            }
            stats.compare_secs += t0.elapsed().as_secs_f64();
            release_trees(config, &trees);
        }
        Task::Cross { a, b, all_concurrent } => {
            let ga = &groups[a];
            let gb = &groups[b];
            // Build in file-position order for the reader pool's sake.
            let (first, second) = if ga.members.iter().map(|m| m.meta.data_begin).min()
                <= gb.members.iter().map(|m| m.meta.data_begin).min()
            {
                (ga, gb)
            } else {
                (gb, ga)
            };
            let trees_first = build_group_trees(session, first, config, pool, stats)?;
            let trees_second = build_group_trees(session, second, config, pool, stats)?;
            let t0 = Instant::now();
            for (ia, ta) in &trees_first {
                for (ib, tb) in &trees_second {
                    let ma = &first.members[*ia];
                    let mb = &second.members[*ib];
                    if !all_concurrent && !intervals_concurrent(ma, mb) {
                        continue;
                    }
                    if ma.tid == mb.tid {
                        continue;
                    }
                    stats.tree_pairs += 1;
                    let pair_stats = check_pair(
                        ta,
                        ma,
                        tb,
                        mb,
                        config.solver,
                        races,
                        solver_hist,
                        sites.as_mut(),
                    );
                    stats.candidates += pair_stats.candidates;
                    stats.solver_calls += pair_stats.solver_calls;
                }
            }
            stats.compare_secs += t0.elapsed().as_secs_f64();
            release_trees(config, &trees_first);
            release_trees(config, &trees_second);
        }
    }
    Ok(())
}
