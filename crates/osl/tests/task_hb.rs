//! Satellite: the task-extended label concurrency relation must be symmetric
//! and agree with a brute-force happens-before oracle over the task graph for
//! small random programs.
//!
//! The model: one parallel region of `width` threads running `rounds` barrier
//! intervals. Within an interval each thread executes a random action list of
//! plain work, explicit-task creations (chained binary task forks), `taskwait`
//! (label restored to the interval base), and balanced `taskgroup` scopes
//! (label restored to the group-entry label). Tasks do not themselves create
//! tasks and `taskwait` does not appear inside a `taskgroup` — the same
//! restrictions the runtime enforces.
//!
//! The oracle enumerates every code segment the execution produces and builds
//! the happens-before relation directly from the operational semantics:
//! program order, creation edges, sync-completion edges (taskwait, taskgroup
//! end), and the all-to-all barrier edge between intervals. Task dependences
//! are deliberately absent: `depend` edges are layered above the labels by the
//! analyzers, not encoded in them.

use proptest::prelude::*;
use sword_osl::{Label, Ordering};

#[derive(Clone, Debug)]
enum GroupAct {
    Work,
    Create,
}

#[derive(Clone, Debug)]
enum Act {
    Work,
    Create,
    Taskwait,
    Taskgroup(Vec<GroupAct>),
}

#[derive(Clone, Debug)]
struct Program {
    width: usize,
    /// rounds[r][t] = action list for thread t in barrier interval r.
    rounds: Vec<Vec<Vec<Act>>>,
}

struct Segment {
    label: Label,
    round: usize,
}

/// Mutable simulation state for one thread's interval.
struct Sim {
    segs: Vec<Segment>,
    edges: Vec<(usize, usize)>,
}

impl Sim {
    fn push(&mut self, label: Label, round: usize) -> usize {
        self.segs.push(Segment { label, round });
        self.segs.len() - 1
    }

    /// Advance the thread to a new continuation segment (program order).
    fn step(&mut self, cur: &mut usize, label: Label, round: usize) {
        let next = self.push(label, round);
        self.edges.push((*cur, next));
        *cur = next;
    }

    /// Create a task off the current label: a creation edge to the task
    /// segment plus a program-order step onto the continuation label.
    fn create(
        &mut self,
        cur: &mut usize,
        label: &mut Label,
        fork_seq: &mut u64,
        children: &mut Vec<(usize, bool)>,
        in_group: bool,
        round: usize,
    ) {
        let e = *fork_seq;
        *fork_seq += 1;
        let task = self.push(label.task_label(e), round);
        self.edges.push((*cur, task));
        children.push((task, in_group));
        *label = label.task_continuation(e);
        self.step(cur, label.clone(), round);
    }
}

/// Simulate `p`, producing every segment plus the intra-round HB edges.
/// Cross-round ordering is implied by the barrier and handled by comparing
/// `round` fields, so edges only ever connect same-round segments.
fn simulate(p: &Program) -> (Vec<Segment>, Vec<(usize, usize)>) {
    let team = Label::root().fork_point(0);
    let mut sim = Sim { segs: Vec::new(), edges: Vec::new() };
    // Fork sequence counters survive across rounds, mirroring the runtime.
    let mut fork_seq: Vec<u64> = vec![1; p.width];
    for (r, round) in p.rounds.iter().enumerate() {
        for (t, acts) in round.iter().enumerate() {
            let base = {
                let mut l = team.fork(t as u64, p.width as u64);
                for _ in 0..r {
                    l = l.bump();
                }
                l
            };
            let mut label = base.clone();
            // Children awaiting a sync: (segment id, created inside the
            // innermost open taskgroup?).
            let mut children: Vec<(usize, bool)> = Vec::new();
            let mut cur = sim.push(label.clone(), r);
            for act in acts {
                match act {
                    Act::Work => sim.step(&mut cur, label.clone(), r),
                    Act::Create => {
                        sim.create(&mut cur, &mut label, &mut fork_seq[t], &mut children, false, r)
                    }
                    Act::Taskwait => {
                        label = base.clone();
                        let next = sim.push(label.clone(), r);
                        sim.edges.push((cur, next));
                        for (task, _) in children.drain(..) {
                            sim.edges.push((task, next));
                        }
                        cur = next;
                    }
                    Act::Taskgroup(body) => {
                        let entry = label.clone();
                        for g in body {
                            match g {
                                GroupAct::Work => sim.step(&mut cur, label.clone(), r),
                                GroupAct::Create => sim.create(
                                    &mut cur,
                                    &mut label,
                                    &mut fork_seq[t],
                                    &mut children,
                                    true,
                                    r,
                                ),
                            }
                        }
                        // Group end: wait for in-group tasks only, restore
                        // the entry label. Pre-group tasks stay outstanding.
                        label = entry;
                        let next = sim.push(label.clone(), r);
                        sim.edges.push((cur, next));
                        children.retain(|&(task, in_group)| {
                            if in_group {
                                sim.edges.push((task, next));
                            }
                            !in_group
                        });
                        cur = next;
                    }
                }
            }
            // The closing barrier waits for outstanding tasks; no explicit
            // edges needed because every round-r segment precedes round r+1.
        }
    }
    (sim.segs, sim.edges)
}

/// Brute-force happens-before: same-round reachability over the edge list,
/// plus the barrier rule (earlier round precedes later round).
fn hb(segs: &[Segment], edges: &[(usize, usize)], a: usize, b: usize) -> bool {
    if segs[a].round != segs[b].round {
        return segs[a].round < segs[b].round;
    }
    let mut seen = vec![false; segs.len()];
    let mut stack = vec![a];
    seen[a] = true;
    while let Some(n) = stack.pop() {
        if n == b {
            return true;
        }
        for &(x, y) in edges {
            if x == n && !seen[y] {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    false
}

fn group_act() -> impl Strategy<Value = GroupAct> {
    prop_oneof![Just(GroupAct::Work), Just(GroupAct::Create)]
}

fn act() -> impl Strategy<Value = Act> {
    prop_oneof![
        Just(Act::Work),
        Just(Act::Create),
        Just(Act::Taskwait),
        prop::collection::vec(group_act(), 0..4).prop_map(Act::Taskgroup),
    ]
}

fn program() -> impl Strategy<Value = Program> {
    // Draw enough action lists for the largest shape (3 rounds × 3 threads)
    // and slice to the drawn dimensions.
    (2usize..=3, 1usize..=3, prop::collection::vec(prop::collection::vec(act(), 0..5), 9)).prop_map(
        |(width, rounds, mut lists)| {
            let rounds =
                (0..rounds).map(|_| (0..width).map(|_| lists.pop().unwrap()).collect()).collect();
            Program { width, rounds }
        },
    )
}

proptest! {
    #[test]
    fn labels_agree_with_brute_force_happens_before(p in program()) {
        let (segs, edges) = simulate(&p);
        for a in 0..segs.len() {
            for b in (a + 1)..segs.len() {
                let fwd = segs[a].label.compare_barrier_aware(&segs[b].label);
                let rev = segs[b].label.compare_barrier_aware(&segs[a].label);
                // Symmetry: concurrency is mutual, order flips.
                prop_assert_eq!(
                    fwd == Ordering::Concurrent,
                    rev == Ordering::Concurrent,
                    "asymmetric relation for {:?} vs {:?}",
                    segs[a].label,
                    segs[b].label
                );
                let ordered = hb(&segs, &edges, a, b)
                    || hb(&segs, &edges, b, a)
                    || segs[a].label == segs[b].label;
                prop_assert_eq!(
                    fwd.is_sequential(),
                    ordered,
                    "label {:?} vs {:?}: labels say {:?}, oracle says ordered={}",
                    segs[a].label,
                    segs[b].label,
                    fwd,
                    ordered
                );
            }
        }
    }
}
