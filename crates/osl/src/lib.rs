//! Offset-span labels for concurrency discovery in nested fork-join programs.
//!
//! SWORD's offline phase must decide whether two accesses collected by two
//! different threads *could* have raced, without relying on the
//! happens-before relation of the particular schedule (which can mask
//! races, Fig. 1 of the paper). It does so with *offset-span labels*
//! (Mellor-Crummey, "On-the-fly detection of data races for programs with
//! nested fork-join parallelism", 1991): every execution point of every
//! thread is tagged with a sequence of `[offset, span]` pairs describing its
//! lineage in the fork-join tree, and a purely syntactic comparison of two
//! labels decides whether the points are sequentially ordered or concurrent.
//!
//! The rules implemented here are exactly the ones the paper states (§II):
//! two labels are **sequential** when either
//!
//! * **case 1**: one is a proper prefix of the other, or
//! * **case 2**: they share a (possibly empty) prefix `P` and continue with
//!   pairs `[o_x, s]` / `[o_y, s]` of the *same span* such that
//!   `o_x < o_y` and `o_x ≡ o_y (mod s)`;
//!
//! otherwise they are **concurrent**.
//!
//! Label construction mirrors the runtime events:
//!
//! * the initial thread has label `[0, 1]`;
//! * a thread's `k`-th fork (0-based) of `s` threads from label `L` gives
//!   child `i` the label `L · [k, 1] · [i, s]` — the span-1
//!   [`Label::fork_point`] pair makes the join ordering between the
//!   thread's successive teams a case-2 ordering (`[k,1]` before
//!   `[k+1,1]`, same slot) without touching the thread's own pair;
//! * a barrier inside a team bumps each member's last pair by the span, so
//!   successive *barrier intervals* of the same thread slot are case-2
//!   sequential (and cross-slot intervals are ordered by
//!   [`Label::compare_barrier_aware`]).
//!
//! Note (also §II of the paper and [`Label::sequential`] docs): OSL alone
//! deliberately does *not* order different thread slots across a barrier —
//! within one parallel region that ordering comes from comparing barrier
//! ids, which the offline analyzer does before ever consulting OSL (or,
//! equivalently, from [`Label::compare_barrier_aware`]).
//!
//! # Example
//!
//! ```
//! use sword_osl::{Label, Ordering};
//!
//! // Figure 2 of the paper: a 2-thread outer region whose workers each
//! // fork a 2-thread inner region.
//! let root = Label::root();                 // [0,1]
//! let outer0 = root.fork(0, 2);             // [0,1][0,2]
//! let outer1 = root.fork(1, 2);             // [0,1][1,2]
//! let inner_a = outer0.fork(1, 2);          // [0,1][0,2][1,2]
//!
//! // Sibling outer threads may race; the inner region races with the
//! // *other* outer thread (the paper's R3) but is ordered against its
//! // own forker.
//! assert_eq!(outer0.compare(&outer1), Ordering::Concurrent);
//! assert_eq!(inner_a.compare(&outer1), Ordering::Concurrent);
//! assert_eq!(outer0.compare(&inner_a), Ordering::Before);
//!
//! // Barrier crossings bump the innermost offset by the span; the
//! // barrier-aware comparison orders all slots across it.
//! let after_barrier = outer1.bump();        // [0,1][3,2]
//! assert_eq!(outer0.compare_barrier_aware(&after_barrier), Ordering::Before);
//! ```

#![forbid(unsafe_code)]

use std::fmt;

/// Span sentinel marking a pair as one side of an explicit-task creation
/// fork (rather than a real team fork of that width).
///
/// An OpenMP `task` construct creates work that runs concurrently with the
/// creating thread's continuation. We encode **each creation** as a binary
/// pseudo-fork of the creator's current label `L`: the creator's
/// continuation relabels to `L · [e, 1] · [0, TASK_SPAN]`
/// ([`Label::task_continuation`]) and the new task becomes
/// `L · [e, 1] · [1, TASK_SPAN]` ([`Label::task_label`]), where `e` is the
/// creator's fork sequence (shared with nested-parallel
/// [`Label::fork_point`]s).
///
/// Chaining creations — the next task forks off the *continuation* label —
/// makes `concurrent(a, b)` exact for task segments:
///
/// * continuation code after a creation diverges from the task at the
///   `[0, TASK_SPAN]` / `[1, TASK_SPAN]` pair (same span, generation 0):
///   concurrent;
/// * creator code *before* a creation is a proper label prefix of the
///   task: ordered (the staircase "earlier continuation chunks precede
///   later tasks" falls out of nesting depth);
/// * a task-scheduling point that waits on children (`taskwait`,
///   `taskgroup` end, any barrier) simply *restores* the label from which
///   the synced chain grew, so post-sync code is again a prefix of every
///   synced task — and `taskgroup` scoping is exactly a partial restore:
///   tasks created before the group keep diverging at their own creation
///   pair and stay concurrent with post-group code.
///
/// Only slots 0 and 1 of the pseudo-team are ever occupied and no barrier
/// bumps these pairs, so the huge span never meets the generation rule; it
/// exists purely so task forks are distinguishable from real two-thread
/// teams (for [`explain_concurrency`] derivations and the analyzer's
/// structural classification).
///
/// Task *dependences* (`depend(in/out/inout)`) are deliberately **not**
/// encoded in labels: they induce arbitrary partial orders over siblings
/// (e.g. `t1 out(x); t2 in(y); t3 in(x)` leaves `t2 ∥ t3` with `t1 ≺ t3`
/// only), which label comparison cannot express. They travel as explicit
/// edges in the trace's region table instead, and the analyzer consults
/// them only for task-segment pairs.
pub const TASK_SPAN: u64 = 1 << 32;

/// One `[offset, span]` pair of an offset-span label.
///
/// `span` is the number of threads spawned by the fork this pair originates
/// from; `offset` distinguishes siblings and grows by `span` at each
/// barrier/join crossing, so `offset % span` recovers the thread slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pair {
    /// Offset within (and across barrier generations of) the fork.
    pub offset: u64,
    /// Number of threads spawned by the originating fork. Always ≥ 1.
    pub span: u64,
}

impl Pair {
    /// Creates a pair; `span` must be non-zero.
    #[inline]
    pub fn new(offset: u64, span: u64) -> Self {
        assert!(span > 0, "offset-span pair with zero span");
        Pair { offset, span }
    }

    /// The thread slot this pair denotes within its fork (`offset % span`).
    #[inline]
    pub fn slot(&self) -> u64 {
        self.offset % self.span
    }

    /// How many barrier/join boundaries this pair has crossed
    /// (`offset / span`).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.offset / self.span
    }
}

impl fmt::Debug for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.offset, self.span)
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.offset, self.span)
    }
}

/// Result of comparing two offset-span labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ordering {
    /// The labels denote the same execution point.
    Equal,
    /// The left label's point is sequentially ordered before the right's.
    Before,
    /// The left label's point is sequentially ordered after the right's.
    After,
    /// Neither is ordered before the other: the points may race.
    Concurrent,
}

impl Ordering {
    /// `true` when the two points cannot run at the same time.
    #[inline]
    pub fn is_sequential(self) -> bool {
        !matches!(self, Ordering::Concurrent)
    }
}

/// An offset-span label: a sequence of [`Pair`]s from the root fork to the
/// innermost enclosing fork of an execution point.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Label {
    pairs: Vec<Pair>,
}

impl Label {
    /// The label of the initial (master) thread: `[0, 1]`.
    pub fn root() -> Self {
        Label { pairs: vec![Pair::new(0, 1)] }
    }

    /// An empty label. Only useful as a building block for
    /// [`Label::from_chain`]; an empty label compares as a prefix of every
    /// other label (hence sequential-before everything).
    pub fn empty() -> Self {
        Label { pairs: Vec::new() }
    }

    /// Builds a label from an explicit chain of `(offset, span)` pairs,
    /// outermost first. This is how the offline analyzer reconstructs
    /// labels from the per-barrier-interval metadata rows chained through
    /// parent-region ids.
    pub fn from_chain<I: IntoIterator<Item = (u64, u64)>>(chain: I) -> Self {
        Label { pairs: chain.into_iter().map(|(o, s)| Pair::new(o, s)).collect() }
    }

    /// The pairs of this label, outermost fork first.
    #[inline]
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// Number of pairs, i.e. the nesting depth of forks.
    #[inline]
    pub fn depth(&self) -> usize {
        self.pairs.len()
    }

    /// `true` for labels with no pairs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The innermost pair, if any.
    #[inline]
    pub fn last(&self) -> Option<Pair> {
        self.pairs.last().copied()
    }

    /// Label of child `index` when this thread forks a team of `span`
    /// threads: `self · [index, span]`.
    ///
    /// `index` must be `< span`.
    pub fn fork(&self, index: u64, span: u64) -> Label {
        assert!(span > 0, "fork with zero span");
        assert!(index < span, "fork child index {index} out of span {span}");
        let mut pairs = Vec::with_capacity(self.pairs.len() + 1);
        pairs.extend_from_slice(&self.pairs);
        pairs.push(Pair::new(index, span));
        Label { pairs }
    }

    /// Label of the fork *point* of this thread's `seq`-th fork (0-based):
    /// `self · [seq, 1]`. Children of that fork are labeled
    /// `self.fork_point(seq).fork(i, span)`.
    ///
    /// The span-1 pair keeps sequential forks by the same thread ordered —
    /// `[k, 1]` and `[k+1, 1]` share slot 0, so case 2 orders the whole
    /// earlier subtree before the later one (the join between them is real
    /// program order) — while subtrees forked by *different* threads still
    /// diverge at the forkers' own pairs and stay concurrent. Encoding the
    /// join as a bump of the forker's own pair instead (the pre-fix
    /// construction) made a join look like a barrier generation to
    /// [`Label::compare_barrier_aware`], wrongly ordering a member's later
    /// forks against *sibling* members' accesses.
    pub fn fork_point(&self, seq: u64) -> Label {
        let mut pairs = Vec::with_capacity(self.pairs.len() + 1);
        pairs.extend_from_slice(&self.pairs);
        pairs.push(Pair::new(seq, 1));
        Label { pairs }
    }

    /// The fork label of this thread's `seq`-th fork when that fork is an
    /// explicit-task creation: `self · [seq, 1]`. The creator's
    /// continuation and the task are the two children of this pseudo-fork
    /// (see [`TASK_SPAN`]); it is also the label stored in the task's
    /// pseudo-region record, from which the offline analyzer reconstructs
    /// both children.
    pub fn task_fork(&self, seq: u64) -> Label {
        self.fork_point(seq)
    }

    /// The creator's continuation label after creating a task at this
    /// thread's `seq`-th fork point: `self · [seq, 1] · [0, TASK_SPAN]`.
    /// The next creation (or nested fork) chains off this label.
    pub fn task_continuation(&self, seq: u64) -> Label {
        self.task_fork(seq).fork(0, TASK_SPAN)
    }

    /// The label of the task created at this thread's `seq`-th fork
    /// point: `self · [seq, 1] · [1, TASK_SPAN]`.
    pub fn task_label(&self, seq: u64) -> Label {
        self.task_fork(seq).fork(1, TASK_SPAN)
    }

    /// Label of the continuing thread after a team barrier: the last
    /// pair's offset is bumped by its span, ordering the new point
    /// case-2-after every point of the previous generation in the same
    /// slot. (Joins are *not* bumps — see [`Label::fork_point`].)
    pub fn bump(&self) -> Label {
        let mut pairs = self.pairs.clone();
        let last = pairs.last_mut().expect("bump on empty label");
        last.offset =
            last.offset.checked_add(last.span).expect("offset-span label offset overflow");
        Label { pairs }
    }

    /// In-place version of [`Label::bump`], used by the runtime on the hot
    /// barrier path to avoid reallocating the pair vector.
    pub fn bump_in_place(&mut self) {
        let last = self.pairs.last_mut().expect("bump on empty label");
        last.offset =
            last.offset.checked_add(last.span).expect("offset-span label offset overflow");
    }

    /// Compares two labels per the paper's sequentiality rules.
    ///
    /// Returns [`Ordering::Before`]/[`Ordering::After`] for case-1/case-2
    /// sequential labels, [`Ordering::Equal`] for identical labels, and
    /// [`Ordering::Concurrent`] otherwise.
    pub fn compare(&self, other: &Label) -> Ordering {
        let a = &self.pairs;
        let b = &other.pairs;
        let common = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();

        match (a.len() == common, b.len() == common) {
            (true, true) => Ordering::Equal,
            // case 1: one label is a proper prefix of the other. The prefix
            // denotes the parent's execution point before the fork, which is
            // sequentially ordered before every descendant's point.
            (true, false) => Ordering::Before,
            (false, true) => Ordering::After,
            (false, false) => {
                // case 2: first divergent pairs share a span, offsets agree
                // modulo the span (same thread slot across barrier/join
                // generations), and the smaller offset comes first.
                let x = a[common];
                let y = b[common];
                if x.span == y.span && x.slot() == y.slot() {
                    if x.offset < y.offset {
                        Ordering::Before
                    } else {
                        debug_assert!(x.offset > y.offset);
                        Ordering::After
                    }
                } else {
                    Ordering::Concurrent
                }
            }
        }
    }

    /// Barrier-aware label comparison used by the offline analyzer.
    ///
    /// The paper's analysis combines two orderings: within one parallel
    /// region, barrier-interval ids order intervals (a barrier orders *all*
    /// team slots of generation `g` before all slots of `g+1`); across
    /// regions, offset-span labels do. Since a barrier crossing adds
    /// `span` to the pair's offset, both collapse into one rule on labels:
    /// at the first divergent pair with equal span, compare *generations*
    /// (`offset / span`) — different generations are barrier-ordered
    /// regardless of slot; the same generation with different slots is
    /// concurrent.
    ///
    /// Soundness of the cross-slot rule relies on offsets growing **only**
    /// at barriers: a barrier genuinely synchronizes every slot of the
    /// team, so `generation` differences are real orderings. Joins must
    /// therefore never bump a member's pair — they are encoded as span-1
    /// [`Label::fork_point`] components instead, which this rule orders
    /// only within one forker's own sequence (slot 0 vs slot 0), exactly
    /// the ordering a join provides.
    ///
    /// This strictly extends [`Label::compare`]'s case 2 (which orders only
    /// same-slot pairs): every pair `compare` calls sequential stays
    /// sequential here, and in addition cross-slot pairs separated by a
    /// barrier become sequential, exactly as the paper's bid pairing makes
    /// them.
    pub fn compare_barrier_aware(&self, other: &Label) -> Ordering {
        let a = &self.pairs;
        let b = &other.pairs;
        let common = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        match (a.len() == common, b.len() == common) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Before,
            (false, true) => Ordering::After,
            (false, false) => {
                let x = a[common];
                let y = b[common];
                if x.span == y.span {
                    match x.generation().cmp(&y.generation()) {
                        std::cmp::Ordering::Less => Ordering::Before,
                        std::cmp::Ordering::Greater => Ordering::After,
                        std::cmp::Ordering::Equal => Ordering::Concurrent,
                    }
                } else {
                    Ordering::Concurrent
                }
            }
        }
    }

    /// `true` when the two labels are sequentially ordered (or equal).
    #[inline]
    pub fn sequential(&self, other: &Label) -> bool {
        self.compare(other).is_sequential()
    }

    /// `true` when the two execution points may run at the same time.
    #[inline]
    pub fn concurrent(&self, other: &Label) -> bool {
        !self.sequential(other)
    }

    /// Serializes the label as a flat `(offset, span)` stream for the trace
    /// substrate.
    pub fn to_flat(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.pairs.len() * 2);
        for p in &self.pairs {
            out.push(p.offset);
            out.push(p.span);
        }
        out
    }

    /// Inverse of [`Label::to_flat`]. Returns `None` on odd-length input or
    /// zero spans.
    pub fn from_flat(flat: &[u64]) -> Option<Label> {
        if !flat.len().is_multiple_of(2) {
            return None;
        }
        let mut pairs = Vec::with_capacity(flat.len() / 2);
        for chunk in flat.chunks_exact(2) {
            if chunk[1] == 0 {
                return None;
            }
            pairs.push(Pair::new(chunk[0], chunk[1]));
        }
        Some(Label { pairs })
    }
}

/// Renders the step-by-step derivation of
/// [`Label::compare_barrier_aware`] as human-readable lines — the
/// "why are these two intervals concurrent (or ordered)" part of a race
/// evidence chain. The last line always states the verdict, which by
/// construction matches `a.compare_barrier_aware(b)`.
pub fn explain_concurrency(a: &Label, b: &Label) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!("label A = {a}"));
    out.push(format!("label B = {b}"));
    let pa = a.pairs();
    let pb = b.pairs();
    let common = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
    if common == 0 {
        out.push("no common prefix".to_string());
    } else {
        let prefix: String = pa[..common].iter().map(|p| p.to_string()).collect();
        out.push(format!("common prefix ({common} pair{}) = {prefix}", plural(common)));
    }
    match (pa.len() == common, pb.len() == common) {
        (true, true) => {
            out.push("labels are identical => same execution point (EQUAL)".to_string())
        }
        (true, false) => out.push(
            "A is a proper prefix of B: A is the forker's point before the fork \
             => ordered BEFORE (case 1)"
                .to_string(),
        ),
        (false, true) => out.push(
            "B is a proper prefix of A: B is the forker's point before the fork \
             => ordered AFTER (case 1)"
                .to_string(),
        ),
        (false, false) => {
            let x = pa[common];
            let y = pb[common];
            out.push(format!("first divergent pair: {x} vs {y}"));
            if x.span == y.span {
                if x.span == TASK_SPAN {
                    let role = |p: &Pair| {
                        if p.offset == 0 {
                            "the creator's continuation"
                        } else {
                            "the created task"
                        }
                    };
                    out.push(format!(
                        "span {TASK_SPAN} marks a task-creation fork: \
                         A is {}, B is {}",
                        role(&x),
                        role(&y)
                    ));
                }
                let (gx, gy) = (x.generation(), y.generation());
                out.push(format!(
                    "same span {}: compare barrier generations {gx} = {}/{} vs {gy} = {}/{}",
                    x.span, x.offset, x.span, y.offset, y.span
                ));
                match gx.cmp(&gy) {
                    std::cmp::Ordering::Less => out.push(format!(
                        "generation {gx} < {gy}: a barrier synchronized every team slot \
                         between them => ordered BEFORE"
                    )),
                    std::cmp::Ordering::Greater => out.push(format!(
                        "generation {gx} > {gy}: a barrier synchronized every team slot \
                         between them => ordered AFTER"
                    )),
                    std::cmp::Ordering::Equal => out.push(format!(
                        "equal generation {gx}, different slots {} vs {}: \
                         no barrier or join orders them => CONCURRENT",
                        x.slot(),
                        y.slot()
                    )),
                }
            } else {
                out.push(format!(
                    "different spans {} vs {}: the points sit in sibling fork subtrees \
                     with no ordering fork point => CONCURRENT",
                    x.span, y.span
                ));
            }
        }
    }
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.pairs {
            write!(f, "{p:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.pairs {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl FromIterator<(u64, u64)> for Label {
    fn from_iter<T: IntoIterator<Item = (u64, u64)>>(iter: T) -> Self {
        Label::from_chain(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_label_shape() {
        let r = Label::root();
        assert_eq!(r.pairs(), &[Pair::new(0, 1)]);
        assert_eq!(r.depth(), 1);
        assert_eq!(format!("{r}"), "[0,1]");
    }

    #[test]
    fn paper_example_thread3_label() {
        // Figure 2 of the paper: Thread 3 carries [0,1][0,2][0,2].
        let t3 = Label::root().fork(0, 2).fork(0, 2);
        assert_eq!(format!("{t3}"), "[0,1][0,2][0,2]");
    }

    #[test]
    fn equal_labels_are_sequential() {
        let a = Label::root().fork(1, 4);
        assert_eq!(a.compare(&a.clone()), Ordering::Equal);
        assert!(a.sequential(&a.clone()));
    }

    #[test]
    fn case1_prefix_is_sequential() {
        let parent = Label::root();
        let child = parent.fork(3, 4);
        assert_eq!(parent.compare(&child), Ordering::Before);
        assert_eq!(child.compare(&parent), Ordering::After);
        assert!(parent.sequential(&child));
    }

    #[test]
    fn fork_siblings_are_concurrent() {
        let parent = Label::root();
        let c0 = parent.fork(0, 2);
        let c1 = parent.fork(1, 2);
        assert_eq!(c0.compare(&c1), Ordering::Concurrent);
        assert_eq!(c1.compare(&c0), Ordering::Concurrent);
    }

    #[test]
    fn continuing_master_after_join_is_sequential_after_children() {
        let parent = Label::root();
        let children: Vec<_> = (0..4).map(|i| parent.fork(i, 4)).collect();
        // After the join the master continues; its *next* fork's children
        // must be ordered after the previous team. The continuation label of
        // the master is parent.bump() only when the fork pair was pushed on
        // the master's own label; model the OpenMP pattern: master label L,
        // team pairs L·[i,s], post-join master label L.bump().
        let after = parent.bump();
        for c in &children {
            assert_eq!(c.compare(&after), Ordering::Before, "{c} vs {after}");
            assert_eq!(after.compare(c), Ordering::After);
        }
    }

    #[test]
    fn sequential_sibling_regions_are_ordered() {
        // Two parallel regions executed one after the other by the same
        // master: every thread of region 1 is before every thread of
        // region 2, regardless of slot.
        let master = Label::root();
        let r1: Vec<_> = (0..3).map(|i| master.fork(i, 3)).collect();
        let master2 = master.bump();
        let r2: Vec<_> = (0..3).map(|i| master2.fork(i, 3)).collect();
        for a in &r1 {
            for b in &r2 {
                assert_eq!(a.compare(b), Ordering::Before, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn nested_regions_under_different_parents_are_concurrent() {
        // Figure 2: races R2/R3 cross barrier intervals of *different*
        // concurrent inner regions.
        let root = Label::root();
        let outer0 = root.fork(0, 2);
        let outer1 = root.fork(1, 2);
        let inner_a = outer0.fork(1, 2); // Thread 4-ish
        let inner_b = outer1.fork(0, 2); // Thread 5-ish
        assert_eq!(inner_a.compare(&inner_b), Ordering::Concurrent);
        // ... and the inner thread is concurrent with the *other* outer
        // thread as well.
        assert_eq!(inner_a.compare(&outer1), Ordering::Concurrent);
    }

    #[test]
    fn barrier_bump_orders_same_slot_generations() {
        let t = Label::root().fork(2, 4);
        let t_next = t.bump(); // crossed one barrier
        assert_eq!(t.compare(&t_next), Ordering::Before);
        assert_eq!(t_next.compare(&t), Ordering::After);
        // Two barriers later still ordered.
        let t_nn = t_next.bump();
        assert_eq!(t.compare(&t_nn), Ordering::Before);
        assert_eq!(t_nn.last().unwrap(), Pair::new(10, 4));
        assert_eq!(t_nn.last().unwrap().slot(), 2);
        assert_eq!(t_nn.last().unwrap().generation(), 2);
    }

    #[test]
    fn barrier_bump_keeps_different_slots_concurrent() {
        // OSL alone does not order different slots across a barrier; the
        // analyzer resolves that with barrier-interval ids. Pin the
        // behaviour so the analyzer's assumption stays true.
        let a = Label::root().fork(0, 2); // slot 0, generation 0
        let b = Label::root().fork(1, 2).bump(); // slot 1, generation 1
        assert_eq!(a.compare(&b), Ordering::Concurrent);
    }

    #[test]
    fn barrier_aware_orders_cross_slot_generations() {
        // Thread 0 interval 0 vs thread 1 interval 1 of the same team:
        // plain OSL calls them concurrent, the barrier-aware rule orders
        // them (the barrier synchronized every slot).
        let a = Label::root().fork(0, 2);
        let b = Label::root().fork(1, 2).bump();
        assert_eq!(a.compare(&b), Ordering::Concurrent);
        assert_eq!(a.compare_barrier_aware(&b), Ordering::Before);
        assert_eq!(b.compare_barrier_aware(&a), Ordering::After);
    }

    #[test]
    fn barrier_aware_same_generation_still_concurrent() {
        let a = Label::root().fork(0, 4).bump();
        let b = Label::root().fork(2, 4).bump();
        assert_eq!(a.compare_barrier_aware(&b), Ordering::Concurrent);
    }

    #[test]
    fn barrier_aware_nested_inner_region_vs_later_interval() {
        // Inner region forked during interval 0 of outer slot 0; its
        // threads are ordered before outer slot 1's interval-5 accesses.
        let outer0 = Label::root().fork(0, 2);
        let inner = outer0.fork(1, 3);
        let outer1_bid5 = {
            let mut l = Label::root().fork(1, 2);
            for _ in 0..5 {
                l = l.bump();
            }
            l
        };
        assert_eq!(inner.compare_barrier_aware(&outer1_bid5), Ordering::Before);
        // But it stays concurrent with the same-generation interval of the
        // other slot (R3 of Figure 2).
        let outer1_bid0 = Label::root().fork(1, 2);
        assert_eq!(inner.compare_barrier_aware(&outer1_bid0), Ordering::Concurrent);
    }

    #[test]
    fn fork_point_orders_one_threads_sequential_teams() {
        // Thread [0,1][1,2] forks two teams back to back; every access of
        // the first is ordered before every access of the second by plain
        // case 2 on the span-1 fork-point pair.
        let member = Label::root().fork(1, 2);
        let team_a: Vec<_> = (0..2).map(|i| member.fork_point(0).fork(i, 2)).collect();
        let team_b: Vec<_> = (0..2).map(|i| member.fork_point(1).fork(i, 2)).collect();
        for a in &team_a {
            for b in &team_b {
                assert_eq!(a.compare(b), Ordering::Before, "{a} vs {b}");
                assert_eq!(a.compare_barrier_aware(b), Ordering::Before);
            }
        }
        // The forker itself is ordered against both teams (prefix rule).
        assert_eq!(member.compare(&team_b[0]), Ordering::Before);
    }

    #[test]
    fn fork_point_keeps_sibling_subtrees_concurrent() {
        // The unsoundness the fuzzer caught: member 1's *second* nested
        // team must stay concurrent with member 0's accesses — the joins
        // member 1 performed do not synchronize member 0. Under the old
        // join-bumps-the-member-pair construction, member 1's label became
        // [0,1][3,2] (generation 1), and the barrier-aware rule read that
        // join as a barrier, wrongly ordering the pair.
        let member0 = Label::root().fork(0, 2);
        let member1 = Label::root().fork(1, 2);
        let m1_second_team = member1.fork_point(1).fork(0, 2);
        assert_eq!(member0.compare(&m1_second_team), Ordering::Concurrent);
        assert_eq!(member0.compare_barrier_aware(&m1_second_team), Ordering::Concurrent);
        // Cross-forker teams with different fork counts: also concurrent.
        let m0_first_team = member0.fork_point(0).fork(1, 2);
        assert_eq!(m0_first_team.compare_barrier_aware(&m1_second_team), Ordering::Concurrent);
        // A real barrier still orders: member 0's post-barrier fork vs
        // member 1's pre-barrier team.
        let m0_post_barrier_team = member0.bump().fork_point(1).fork(0, 2);
        let m1_pre_barrier_team = member1.fork_point(0).fork(0, 2);
        assert_eq!(
            m1_pre_barrier_team.compare_barrier_aware(&m0_post_barrier_team),
            Ordering::Before
        );
    }

    #[test]
    fn bump_in_place_matches_bump() {
        let a = Label::root().fork(1, 3);
        let mut b = a.clone();
        b.bump_in_place();
        assert_eq!(a.bump(), b);
    }

    #[test]
    fn flat_roundtrip() {
        let a = Label::root().fork(1, 3).bump().fork(0, 2);
        let flat = a.to_flat();
        assert_eq!(Label::from_flat(&flat), Some(a));
    }

    #[test]
    fn from_flat_rejects_bad_input() {
        assert!(Label::from_flat(&[1]).is_none(), "odd length");
        assert!(Label::from_flat(&[1, 0]).is_none(), "zero span");
        assert_eq!(Label::from_flat(&[]), Some(Label::empty()));
    }

    #[test]
    fn empty_label_is_prefix_of_everything() {
        let e = Label::empty();
        let x = Label::root().fork(0, 2);
        assert_eq!(e.compare(&x), Ordering::Before);
        assert_eq!(x.compare(&e), Ordering::After);
        assert_eq!(e.compare(&Label::empty()), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "out of span")]
    fn fork_index_out_of_span_panics() {
        let _ = Label::root().fork(2, 2);
    }

    #[test]
    #[should_panic(expected = "zero span")]
    fn zero_span_panics() {
        let _ = Pair::new(0, 0);
    }

    #[test]
    fn explanation_names_the_divergence() {
        let a = Label::root().fork(0, 2);
        let b = Label::root().fork(1, 2);
        let lines = explain_concurrency(&a, &b);
        assert_eq!(lines[0], "label A = [0,1][0,2]");
        assert_eq!(lines[1], "label B = [0,1][1,2]");
        assert!(lines[2].contains("common prefix (1 pair) = [0,1]"));
        assert!(lines[3].contains("[0,2] vs [1,2]"));
        assert!(lines.last().unwrap().contains("CONCURRENT"));
    }

    #[test]
    fn explanation_covers_prefix_and_barrier_cases() {
        let parent = Label::root();
        let child = parent.fork(1, 2);
        assert!(explain_concurrency(&parent, &child).last().unwrap().contains("BEFORE"));
        assert!(explain_concurrency(&child, &parent).last().unwrap().contains("AFTER"));
        let a = Label::root().fork(0, 2);
        let b = Label::root().fork(1, 2).bump();
        let lines = explain_concurrency(&a, &b);
        assert!(lines.iter().any(|l| l.contains("generation")));
        assert!(lines.last().unwrap().contains("BEFORE"));
    }

    #[test]
    fn deep_nesting_chain() {
        // A chain of single-thread nested regions is totally ordered.
        let mut labels = vec![Label::root()];
        for _ in 0..16 {
            let next = labels.last().unwrap().fork(0, 1);
            labels.push(next);
        }
        for i in 0..labels.len() {
            for j in i + 1..labels.len() {
                assert_eq!(labels[i].compare(&labels[j]), Ordering::Before);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: random small fork trees expressed as labels.
    fn arb_label() -> impl Strategy<Value = Label> {
        // Sequence of (slot-ish offset, span, generations) triples.
        prop::collection::vec((0u64..6, 1u64..5, 0u64..4), 0..5).prop_map(|v| {
            let mut label = Label::root();
            for (idx, span, gens) in v {
                label = label.fork(idx % span, span);
                for _ in 0..gens {
                    label = label.bump();
                }
            }
            label
        })
    }

    proptest! {
        #[test]
        fn compare_is_antisymmetric(a in arb_label(), b in arb_label()) {
            let ab = a.compare(&b);
            let ba = b.compare(&a);
            let expected = match ab {
                Ordering::Equal => Ordering::Equal,
                Ordering::Before => Ordering::After,
                Ordering::After => Ordering::Before,
                Ordering::Concurrent => Ordering::Concurrent,
            };
            prop_assert_eq!(ba, expected);
        }

        #[test]
        fn equal_iff_same_pairs(a in arb_label(), b in arb_label()) {
            prop_assert_eq!(a.compare(&b) == Ordering::Equal, a == b);
        }

        #[test]
        fn fork_children_pairwise_concurrent(a in arb_label(), span in 2u64..6) {
            let kids: Vec<_> = (0..span).map(|i| a.fork(i, span)).collect();
            for i in 0..kids.len() {
                for j in 0..kids.len() {
                    if i != j {
                        prop_assert_eq!(kids[i].compare(&kids[j]), Ordering::Concurrent);
                    }
                }
            }
        }

        #[test]
        fn parent_before_descendants(a in arb_label(), idx in 0u64..4, span in 4u64..8) {
            let child = a.fork(idx, span);
            prop_assert_eq!(a.compare(&child), Ordering::Before);
            let grandchild = child.fork(0, 2);
            prop_assert_eq!(a.compare(&grandchild), Ordering::Before);
        }

        #[test]
        fn bump_chain_totally_ordered(a in arb_label(), n in 1usize..8) {
            let mut cur = a.clone();
            for _ in 0..n {
                let next = cur.bump();
                prop_assert_eq!(cur.compare(&next), Ordering::Before);
                prop_assert_eq!(a.compare(&next), if a == cur { Ordering::Before } else { a.compare(&cur) });
                cur = next;
            }
        }

        #[test]
        fn barrier_aware_refines_paper_rule(a in arb_label(), b in arb_label()) {
            // Everything the paper's case 1/2 orders, the barrier-aware
            // rule orders identically; it may additionally order pairs the
            // paper handles via bid comparison.
            let paper = a.compare(&b);
            let aware = a.compare_barrier_aware(&b);
            if paper != Ordering::Concurrent {
                prop_assert_eq!(aware, paper);
            }
            // Antisymmetry holds for the aware rule too.
            let flipped = match aware {
                Ordering::Equal => Ordering::Equal,
                Ordering::Before => Ordering::After,
                Ordering::After => Ordering::Before,
                Ordering::Concurrent => Ordering::Concurrent,
            };
            prop_assert_eq!(b.compare_barrier_aware(&a), flipped);
        }

        #[test]
        fn flat_roundtrip_prop(a in arb_label()) {
            prop_assert_eq!(Label::from_flat(&a.to_flat()), Some(a));
        }

        #[test]
        fn explanation_verdict_matches_comparison(a in arb_label(), b in arb_label()) {
            let verdict = match a.compare_barrier_aware(&b) {
                Ordering::Equal => "EQUAL",
                Ordering::Before => "BEFORE",
                Ordering::After => "AFTER",
                Ordering::Concurrent => "CONCURRENT",
            };
            let lines = explain_concurrency(&a, &b);
            prop_assert!(lines.last().unwrap().contains(verdict),
                "{:?} vs {:?}: expected {} in {:?}", a, b, verdict, lines);
        }

        #[test]
        fn sequential_regions_fully_ordered(
            spans in prop::collection::vec(1u64..5, 1..4),
        ) {
            // Master runs several regions back to back; all accesses of
            // region k precede all accesses of region k+1.
            let mut master = Label::root();
            let mut regions: Vec<Vec<Label>> = Vec::new();
            for &s in &spans {
                regions.push((0..s).map(|i| master.fork(i, s)).collect());
                master = master.bump();
            }
            for k in 0..regions.len() {
                for m in k + 1..regions.len() {
                    for a in &regions[k] {
                        for b in &regions[m] {
                            prop_assert_eq!(a.compare(b), Ordering::Before);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod task_tests {
    use super::*;

    /// The worked example from DESIGN.md §16: a 2-wide team; member 1
    /// (the creator) creates two chained tasks, works in its continuation,
    /// syncs, and works again.
    struct Fixture {
        creator: Label, // member 1's interval label M (pre-creation / post-sync)
        sibling: Label, // member 0, same barrier interval
        cont0: Label,   // continuation after creating t0
        cont1: Label,   // continuation after creating t1
        t0: Label,
        t1: Label,
    }

    fn fixture() -> Fixture {
        let team = Label::root().fork_point(0);
        let creator = team.fork(1, 2);
        let sibling = team.fork(0, 2);
        let cont0 = creator.task_continuation(0);
        let t0 = creator.task_label(0);
        let cont1 = cont0.task_continuation(1);
        let t1 = cont0.task_label(1);
        Fixture { creator, sibling, cont0, cont1, t0, t1 }
    }

    #[test]
    fn tasks_race_with_siblings_and_continuation() {
        let f = fixture();
        // Sibling tasks of one chain are mutually concurrent.
        assert_eq!(f.t0.compare_barrier_aware(&f.t1), Ordering::Concurrent);
        // Tasks run concurrently with the creator's continuation after
        // their creation...
        assert_eq!(f.cont0.compare_barrier_aware(&f.t0), Ordering::Concurrent);
        assert_eq!(f.cont1.compare_barrier_aware(&f.t0), Ordering::Concurrent);
        // ...and with other team members' same-interval code.
        assert_eq!(f.sibling.compare_barrier_aware(&f.t0), Ordering::Concurrent);
        assert_eq!(f.sibling.compare_barrier_aware(&f.cont1), Ordering::Concurrent);
    }

    #[test]
    fn creation_order_is_exact_within_the_continuation() {
        let f = fixture();
        // Continuation code between the two creations precedes t1 (the
        // staircase): cont0 is a proper prefix of t1's label.
        assert!(f.cont0.compare_barrier_aware(&f.t1).is_sequential());
        // But the same chunk is concurrent with the already-created t0
        // (checked above) — one flat episode label could not express both.
        assert_eq!(f.cont0.compare_barrier_aware(&f.t0), Ordering::Concurrent);
    }

    #[test]
    fn tasks_are_ordered_against_pre_creation_and_post_sync_code() {
        let f = fixture();
        // Before any creation and after a taskwait the creator carries M,
        // a proper prefix of every task label: sequential.
        assert!(f.creator.compare_barrier_aware(&f.t0).is_sequential());
        assert!(f.creator.compare_barrier_aware(&f.t1).is_sequential());
        // After a team barrier (which waits for outstanding tasks), the
        // creator's bumped label is generation-ordered after the tasks.
        let after_barrier = f.creator.bump();
        assert_eq!(after_barrier.compare_barrier_aware(&f.t0), Ordering::After);
        // Other members' post-barrier intervals are ordered too.
        assert_eq!(f.sibling.bump().compare_barrier_aware(&f.t1), Ordering::After);
    }

    #[test]
    fn tasks_across_a_taskwait_are_ordered() {
        let f = fixture();
        // taskwait restores M; the next creation uses a later fork seq,
        // so the [e,1] fork-point pairs order the chains case-2.
        let t_late = f.creator.task_label(2);
        assert_eq!(f.t0.compare_barrier_aware(&t_late), Ordering::Before);
        assert_eq!(f.t1.compare_barrier_aware(&t_late), Ordering::Before);
    }

    #[test]
    fn taskgroup_scope_is_a_partial_restore() {
        let f = fixture();
        // taskgroup opens with t0 outstanding; group tasks chain off the
        // current continuation. Group end restores cont0: post-group code
        // is ordered after the group's tasks but still concurrent with t0.
        let g0 = f.cont0.task_label(1);
        let post_group = &f.cont0;
        assert!(post_group.compare_barrier_aware(&g0).is_sequential());
        assert_eq!(post_group.compare_barrier_aware(&f.t0), Ordering::Concurrent);
        assert_eq!(g0.compare_barrier_aware(&f.t0), Ordering::Concurrent);
    }

    #[test]
    fn nested_parallel_inside_a_chain_stays_concurrent_with_tasks() {
        let f = fixture();
        // A nested team forked while t0 is outstanding chains off the
        // continuation; its members stay concurrent with t0.
        let inner = f.cont0.fork_point(1).fork(0, 2);
        assert_eq!(inner.compare_barrier_aware(&f.t0), Ordering::Concurrent);
        assert!(inner.compare_barrier_aware(&f.cont0).is_sequential());
    }

    #[test]
    fn explain_names_task_roles() {
        let f = fixture();
        let lines = explain_concurrency(&f.cont0, &f.t0).join("\n");
        assert!(lines.contains("task-creation fork"), "{lines}");
        assert!(lines.contains("A is the creator's continuation"), "{lines}");
        assert!(lines.contains("B is the created task"), "{lines}");
        assert!(lines.contains("CONCURRENT"), "{lines}");
    }
}
