//! Shared harness for the per-table/per-figure bench targets.
//!
//! Every table and figure of the paper's evaluation has one bench target
//! (`cargo bench -p sword-bench --bench <name>`); each uses these runners
//! to execute a workload under the four configurations the paper
//! compares — `baseline` (no tool), `archer`, `archer-low` (flush
//! shadow), and `sword` (collection + offline analysis) — and to collect
//! wall time, measured/modeled memory, and race counts.

use std::path::PathBuf;
use std::sync::Arc;

use archer_sim::{ArcherConfig, ArcherStats, ArcherTool};
use sword_metrics::{MemGauge, NodeModel, Stopwatch};
use sword_obs::Obs;
use sword_offline::{analyze, AnalysisConfig, AnalysisResult, LiveAnalyzer};
use sword_ompsim::{OmpSim, SimConfig};
use sword_runtime::{run_collected, SwordConfig, SwordStats};
use sword_trace::{LiveStatus, SessionDir};
use sword_workloads::{RunConfig, Workload};

pub use sword_metrics::{format_bytes, geomean, Table};

/// Where bench sessions are written.
pub fn bench_session_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sword-bench-{tag}-{}", std::process::id()))
}

/// The thread counts swept by the figures. The paper sweeps 8→24 on a
/// 2×12-core node; this container exposes a single core, so the sweep is
/// scaled to {2, 4, 8} — the *relative* tool overheads, which are what
/// the figures compare, are preserved (see EXPERIMENTS.md).
pub const THREAD_SWEEP: [usize; 3] = [2, 4, 8];

/// The mini-node used for HPC placement decisions (the paper's node has
/// 32 GB; workload footprints are scaled by the same factor).
pub fn mini_node() -> NodeModel {
    NodeModel::with_total(64 << 20)
}

/// Result of one baseline (untooled) run.
#[derive(Clone, Copy, Debug)]
pub struct BaselineRun {
    /// Wall seconds.
    pub secs: f64,
    /// Declared application footprint in bytes.
    pub footprint: u64,
}

/// Runs a workload with no tool attached.
pub fn run_baseline(w: &dyn Workload, cfg: &RunConfig) -> BaselineRun {
    let sim = OmpSim::new();
    let sw = Stopwatch::start();
    w.execute(&sim, cfg);
    BaselineRun { secs: sw.secs(), footprint: sim.peak_footprint() }
}

/// Result of one ARCHER run.
#[derive(Clone, Debug)]
pub struct ArcherRun {
    /// Wall seconds of the (online) analysis.
    pub secs: f64,
    /// Engine statistics (includes modeled memory and OOM flag).
    pub stats: ArcherStats,
    /// Distinct races found (possibly truncated by an OOM kill).
    pub races: usize,
    /// Live memory gauge the engine updated during the run; the figures
    /// read their memory rows from `mem.peak()`.
    pub mem: MemGauge,
}

/// Runs a workload under the ARCHER baseline. `flush_shadow` selects the
/// paper's "archer-low" configuration; `node_budget` enables the OOM
/// model.
pub fn run_archer(
    w: &dyn Workload,
    cfg: &RunConfig,
    flush_shadow: bool,
    node_budget: Option<u64>,
) -> ArcherRun {
    let mem = MemGauge::new();
    let tool = Arc::new(ArcherTool::new(ArcherConfig {
        flush_shadow,
        node_budget,
        mem_gauge: mem.clone(),
        ..Default::default()
    }));
    let sim = OmpSim::with_tool(tool.clone());
    tool.attach_baseline_source(sim.footprint_handle());
    let sw = Stopwatch::start();
    w.execute(&sim, cfg);
    let secs = sw.secs();
    ArcherRun { secs, stats: tool.stats(), races: tool.races().len(), mem }
}

/// Result of one SWORD run (dynamic collection + offline analysis).
#[derive(Debug)]
pub struct SwordRun {
    /// Wall seconds of the dynamic (collection) phase.
    pub dynamic_secs: f64,
    /// Collector statistics (bounded memory, log volume).
    pub collect: SwordStats,
    /// Offline analysis output (races + stats incl. OA wall time and the
    /// MT max-task proxy).
    pub analysis: AnalysisResult,
    /// Observability handles shared by the collector and the analyzer;
    /// the figures read their memory rows from the registry gauges.
    pub obs: Obs,
}

impl SwordRun {
    /// Collector tool memory from the registry gauge
    /// (`sword_collector_tool_mem_bytes`), i.e. the same bounded
    /// footprint `collect.tool_memory_bytes` reports, but sourced from
    /// the live metrics registry as the figures require.
    pub fn collector_mem_bytes(&self) -> u64 {
        self.obs
            .registry
            .snapshot()
            .into_iter()
            .find(|(name, _)| name == "sword_collector_tool_mem_bytes")
            .map(|(_, v)| v as u64)
            .unwrap_or(0)
    }
}

/// Runs a workload under the SWORD collector, then analyzes the session.
pub fn run_sword(w: &dyn Workload, cfg: &RunConfig, tag: &str) -> SwordRun {
    run_sword_with(w, cfg, tag, sword_runtime::PAPER_BUFFER_EVENTS, &AnalysisConfig::default())
}

/// [`run_sword`] with explicit buffer capacity and analysis config (for
/// the ablations).
pub fn run_sword_with(
    w: &dyn Workload,
    cfg: &RunConfig,
    tag: &str,
    buffer_events: usize,
    analysis_config: &AnalysisConfig,
) -> SwordRun {
    let dir = bench_session_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let obs = Obs::new();
    let sw = Stopwatch::start();
    let (_, collect) = run_collected(
        SwordConfig::new(&dir).buffer_events(buffer_events).with_obs(obs.clone()),
        SimConfig::default(),
        |sim| {
            w.execute(sim, cfg);
        },
    )
    .expect("sword collection");
    let dynamic_secs = sw.secs();
    let ac = match analysis_config.obs {
        Some(_) => analysis_config.clone(),
        None => analysis_config.clone().with_obs(obs.clone()),
    };
    let analysis = analyze(&SessionDir::new(&dir), &ac).expect("sword analysis");
    let _ = std::fs::remove_dir_all(&dir);
    SwordRun { dynamic_secs, collect, analysis, obs }
}

/// Collects a workload into `dir` (replacing any previous session) and
/// leaves the session on disk for the caller to analyze.
pub fn run_collected_session(w: &dyn Workload, cfg: &RunConfig, dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
    run_collected(SwordConfig::new(dir), SimConfig::default(), |sim| {
        w.execute(sim, cfg);
    })
    .expect("sword collection");
}

/// Result of one live (incremental) analysis replay.
#[derive(Clone, Copy, Debug)]
pub struct LiveRun {
    /// Accumulated analysis seconds at the poll where the first race
    /// surfaced (`None` if the session is race-free).
    pub first_race_secs: Option<f64>,
    /// Total analysis seconds across all polls.
    pub total_secs: f64,
    /// Number of watermark publishes replayed.
    pub polls: usize,
    /// Final deduplicated race count.
    pub races: usize,
}

/// Replays a finished session as a staged sequence of watermark
/// publishes — logs, regions, and PCs present from the start, each
/// thread's meta file growing by `step` rows per publish — and drives a
/// [`LiveAnalyzer`] over the replica, timing only the analysis polls.
/// This measures time-to-first-race: the incremental analysis work spent
/// before the first race surfaces, versus the total across all polls.
pub fn replay_live(src: &SessionDir, tag: &str, config: &AnalysisConfig, step: usize) -> LiveRun {
    let step = step.max(1);
    let dir = bench_session_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let dst = SessionDir::new(&dir);
    dst.create().expect("replica dir");
    for tid in src.thread_ids().expect("thread ids") {
        std::fs::copy(src.thread_log(tid), dst.thread_log(tid)).expect("copy log");
    }
    for name in ["regions.meta", "pcs.meta"] {
        let from = src.path().join(name);
        if from.exists() {
            std::fs::copy(&from, dst.path().join(name)).expect("copy table");
        }
    }
    let metas: Vec<(sword_trace::ThreadId, Vec<String>)> = src
        .thread_ids()
        .expect("thread ids")
        .into_iter()
        .map(|tid| {
            let text = std::fs::read_to_string(src.thread_meta(tid)).expect("read meta");
            (tid, text.lines().map(str::to_string).collect())
        })
        .collect();
    let max_rows = metas.iter().map(|(_, lines)| lines.len()).max().unwrap_or(0);

    let mut live = LiveAnalyzer::new(&dst, config);
    let mut run = LiveRun { first_race_secs: None, total_secs: 0.0, polls: 0, races: 0 };
    let mut revealed = 0usize;
    let mut generation = 0u64;
    loop {
        revealed = revealed.saturating_add(step).min(max_rows);
        for (tid, lines) in &metas {
            let n = revealed.min(lines.len());
            let mut body = lines[..n].join("\n");
            if n > 0 {
                body.push('\n');
            }
            dst.write_file_atomic(&dst.thread_meta(*tid), body.as_bytes())
                .expect("publish meta prefix");
        }
        generation += 1;
        dst.write_live(LiveStatus { generation, finished: revealed >= max_rows })
            .expect("publish watermark");
        let sw = Stopwatch::start();
        let delta = live.poll().expect("live poll");
        run.total_secs += sw.secs();
        run.polls += 1;
        if run.first_race_secs.is_none() && delta.total_races > 0 {
            run.first_race_secs = Some(run.total_secs);
        }
        if delta.finished {
            break;
        }
    }
    run.races = live.race_count();
    let _ = std::fs::remove_dir_all(&dir);
    run
}

/// Runs a workload under the SWORD collector, then analyzes the session
/// both ways: one-shot batch (the paper's OA) and a staged live replay
/// revealing `step` barrier intervals per publish. Returns the batch run
/// alongside the live time-to-first-race measurement.
pub fn run_sword_live(
    w: &dyn Workload,
    cfg: &RunConfig,
    tag: &str,
    step: usize,
) -> (SwordRun, LiveRun) {
    let dir = bench_session_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let obs = Obs::new();
    let sw = Stopwatch::start();
    let (_, collect) = run_collected(
        SwordConfig::new(&dir)
            .buffer_events(sword_runtime::PAPER_BUFFER_EVENTS)
            .with_obs(obs.clone()),
        SimConfig::default(),
        |sim| {
            w.execute(sim, cfg);
        },
    )
    .expect("sword collection");
    let dynamic_secs = sw.secs();
    let src = SessionDir::new(&dir);
    let config = AnalysisConfig::default().with_obs(obs.clone());
    let analysis = analyze(&src, &config).expect("sword analysis");
    let live = replay_live(&src, &format!("{tag}-live"), &config, step);
    let _ = std::fs::remove_dir_all(&dir);
    (SwordRun { dynamic_secs, collect, analysis, obs }, live)
}

/// Formats seconds for tables (`12.3ms`, `4.56s`).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Formats a race cell, showing `OOM` for killed runs as Table IV does.
pub fn fmt_races(races: usize, oom: bool) -> String {
    if oom {
        "OOM".to_string()
    } else {
        races.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sword_workloads::find_workload;

    #[test]
    fn harness_runs_all_three_configs() {
        let w = find_workload("plusplus-orig-yes").unwrap();
        let cfg = RunConfig::small();
        let base = run_baseline(w.as_ref(), &cfg);
        assert!(base.secs >= 0.0);
        let archer = run_archer(w.as_ref(), &cfg, false, None);
        assert_eq!(archer.races, 2);
        assert_eq!(archer.mem.peak(), archer.stats.modeled_total_bytes());
        let sword = run_sword(w.as_ref(), &cfg, "harness-test");
        assert_eq!(sword.analysis.race_count(), 2);
        assert!(sword.collect.events > 0);
        assert_eq!(sword.collector_mem_bytes(), sword.collect.tool_memory_bytes);
    }

    #[test]
    fn live_replay_matches_batch_and_reports_early() {
        let w = find_workload("plusplus-orig-yes").unwrap();
        let cfg = RunConfig::small();
        let (sword, live) = run_sword_live(w.as_ref(), &cfg, "live-harness-test", 1);
        assert_eq!(live.races, sword.analysis.race_count());
        assert!(live.polls >= 1);
        let first = live.first_race_secs.expect("racy workload surfaces a race");
        assert!(first <= live.total_secs + 1e-9);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(4.5), "4.50s");
        assert_eq!(fmt_races(3, false), "3");
        assert_eq!(fmt_races(0, true), "OOM");
    }
}
