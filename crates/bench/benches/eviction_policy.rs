//! §II ablation — shadow-cell eviction policy.
//!
//! ARCHER's miss on the eviction workloads does not depend on a lucky
//! victim choice: this target replays the `nowait-orig-yes` and
//! `privatemissing-orig-yes` eviction scenarios under the deterministic
//! round-robin policy and under eight random-victim seeds, counting how
//! often the race survives in the shadow. SWORD (which keeps every
//! access) reports the races in every run by construction.

use std::sync::Arc;

use archer_sim::{ArcherConfig, ArcherTool, EvictionPolicy};
use sword_bench::Table;
use sword_ompsim::OmpSim;
use sword_workloads::{find_workload, RunConfig};

fn archer_races(name: &str, policy: EvictionPolicy) -> (usize, u64) {
    let w = find_workload(name).expect("workload exists");
    let tool = Arc::new(ArcherTool::new(ArcherConfig { eviction: policy, ..Default::default() }));
    let sim = OmpSim::with_tool(tool.clone());
    w.execute(&sim, &RunConfig::small());
    let stats = tool.stats();
    (tool.races().len(), stats.evictions)
}

fn main() {
    let mut table = Table::new(
        "Eviction-policy ablation: ARCHER race reports on the §II workloads",
        &["workload", "policy", "races found", "evictions", "sword ground truth"],
    );
    for name in ["nowait-orig-yes", "privatemissing-orig-yes"] {
        let truth = find_workload(name).unwrap().spec().sword_races;
        let (rr_races, rr_ev) = archer_races(name, EvictionPolicy::RoundRobin);
        table.row(&[
            name.to_string(),
            "round-robin".into(),
            rr_races.to_string(),
            rr_ev.to_string(),
            truth.to_string(),
        ]);
        assert_eq!(rr_races, 0, "{name}: round-robin eviction hides everything");
        let mut missed = 0;
        for seed in 0..8u64 {
            let (races, ev) = archer_races(name, EvictionPolicy::Random(seed * 7 + 1));
            if races < truth {
                missed += 1;
            }
            table.row(&[
                name.to_string(),
                format!("random(seed {})", seed * 7 + 1),
                races.to_string(),
                ev.to_string(),
                truth.to_string(),
            ]);
        }
        println!("{name}: random policy under-reported in {missed}/8 seeds");
        // §II says the race "can be missed" — the random policy misses it
        // for some victim sequences, the deterministic round-robin policy
        // always does on these workloads.
        assert!(missed >= 1, "{name}: eviction must cause misses for some seeds");
    }
    println!("{}", table.render());
}
