//! Figure 7 — slowdown and memory overhead on the HPC benchmarks.
//!
//! Per benchmark and thread count: tool slowdowns over baseline and tool
//! memory. Expected shape (§IV-C): ARCHER's memory tracks the baseline
//! footprint (≈5× touched bytes here: 4 shadow cells per word plus
//! clock state), "archer-low" trades a bit of that memory for extra
//! runtime, and SWORD's collection memory is a flat per-thread constant
//! independent of footprint. SWORD's dynamic phase beats ARCHER except
//! on the region-heavy LULESH.

use sword_bench::{format_bytes, Table, THREAD_SWEEP};
use sword_workloads::hpc::amg_workload;
use sword_workloads::{hpc_workloads, RunConfig, Workload};

fn main() {
    let mut table = Table::new(
        "Figure 7: HPC slowdown (×baseline) and tool memory",
        &[
            "benchmark",
            "threads",
            "baseline mem",
            "archer x",
            "archer-low x",
            "sword DA x",
            "archer mem",
            "sword mem",
        ],
    );
    let mut workloads: Vec<Box<dyn Workload>> =
        hpc_workloads().into_iter().filter(|w| !w.spec().name.starts_with("AMG")).collect();
    workloads.push(Box::new(amg_workload(20)));

    for w in &workloads {
        let spec = w.spec();
        for &threads in &THREAD_SWEEP {
            let cfg = RunConfig { threads, size: 0 };
            let base = sword_bench::run_baseline(w.as_ref(), &cfg);
            let archer = sword_bench::run_archer(w.as_ref(), &cfg, false, None);
            let archer_low = sword_bench::run_archer(w.as_ref(), &cfg, true, None);
            let sword =
                sword_bench::run_sword(w.as_ref(), &cfg, &format!("f7-{}-{}", spec.name, threads));
            let slowdown = |t: f64| format!("{:.1}x", t / base.secs.max(1e-9));
            table.row(&[
                spec.name.to_string(),
                threads.to_string(),
                format_bytes(base.footprint),
                slowdown(archer.secs),
                slowdown(archer_low.secs),
                slowdown(sword.dynamic_secs),
                // Memory cells from the live gauges (archer MemGauge
                // peak, collector gauge in sword's registry).
                format_bytes(archer.mem.peak()),
                format_bytes(sword.collector_mem_bytes()),
            ]);
            // SWORD's bound: collection memory stays (far) below ARCHER's
            // footprint-proportional shadow on every HPC code.
            assert!(
                sword.collector_mem_bytes() < archer.mem.peak(),
                "{}: sword {} !< archer {}",
                spec.name,
                sword.collector_mem_bytes(),
                archer.mem.peak()
            );
        }
    }
    println!("{}", table.render());
    println!("(threads sweep scaled to a single-core container; paper: 8-24 threads)");
}
