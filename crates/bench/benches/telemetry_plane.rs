//! Telemetry-plane bench: what the embedded HTTP exporter costs.
//!
//! Three legs, all against the live in-process plane (no mock registry):
//!
//! 1. **Exporter overhead** — the Figure 7 CG solver collected twice,
//!    once with observability only and once while a scraper hammers
//!    `/metrics` + `/status` for the whole run. The dimensionless
//!    collection-throughput ratio (unscraped wall over scraped wall) is
//!    the gated number: ≈1.0 means a continuously scraped exporter is
//!    free; CI fails when it drops past the allowance.
//! 2. **`/metrics` latency** — scrape quantiles (p50/p95 µs) against the
//!    registry the run just populated, connection setup included, i.e.
//!    what a Prometheus poll actually pays.
//! 3. **SSE fan-out** — events/s a `/events` subscriber sustains while a
//!    producer thread journals and drains at full tilt, plus how many
//!    events the bounded tap shed to protect the producer.
//!
//! Writes `BENCH_obs.json` at the workspace root (CI uploads it and
//! gates leg 1 against `bench-baselines/BENCH_obs.json`).
//!
//! Run with `cargo bench -p sword-bench --bench telemetry_plane`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sword_bench::{fmt_secs, Table};
use sword_metrics::Stopwatch;
use sword_obs::json::Value;
use sword_obs::{Layer, Obs};
use sword_obs_http::{http_get, ServerConfig, TelemetryHandles, TelemetryServer};
use sword_ompsim::SimConfig;
use sword_runtime::{run_collected, SwordConfig};
use sword_workloads::{find_workload, RunConfig};

/// Timing runs per configuration (best-of defeats CI noise).
const RUNS: usize = 3;

/// `/metrics` scrapes timed for the latency quantiles.
const LATENCY_SAMPLES: usize = 200;

/// Journal events the SSE producer emits.
const SSE_EVENTS: usize = 20_000;

/// Events the producer journals between drains (drain feeds the taps;
/// small batches keep the per-thread ring from wrapping mid-batch).
const SSE_BATCH: usize = 128;

/// Pause between scrape rounds. Still ~200× more aggressive than a
/// stock Prometheus interval, but periodic rather than a busy loop: on
/// the single-core CI container a spinning client steals the core from
/// the collector and the leg measures scheduler contention, not
/// exporter cost.
const SCRAPE_INTERVAL: Duration = Duration::from_millis(5);

/// One timed collection of the workload; `scrape` adds an exporter plus
/// a client scraping it every [`SCRAPE_INTERVAL`] for the whole run.
fn collect_once(scrape: bool) -> f64 {
    let w = find_workload("HPCCG").expect("HPCCG workload");
    let cfg = RunConfig { threads: 8, size: 20 };
    let dir = sword_bench::bench_session_dir("telemetry-overhead");
    let _ = std::fs::remove_dir_all(&dir);
    let obs = Obs::new();
    let server = scrape.then(|| {
        TelemetryServer::start(
            ServerConfig::bind("127.0.0.1:0"),
            TelemetryHandles::new(obs.clone()),
        )
        .expect("exporter")
    });
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = server.as_ref().map(|srv| {
        let addr = srv.local_addr().to_string();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut hits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for path in ["/metrics", "/status"] {
                    if http_get(&addr, path, Duration::from_millis(500)).is_ok() {
                        hits += 1;
                    }
                }
                std::thread::sleep(SCRAPE_INTERVAL);
            }
            hits
        })
    });
    let sw = Stopwatch::start();
    run_collected(SwordConfig::new(&dir).with_obs(obs.clone()), SimConfig::default(), |sim| {
        w.execute(sim, &cfg);
    })
    .expect("sword collection");
    let secs = sw.secs();
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = scraper {
        let hits = h.join().expect("scraper thread");
        assert!(hits > 0, "scraper must actually have exercised the exporter");
    }
    if let Some(srv) = server {
        srv.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
    secs
}

fn best_of(scrape: bool) -> f64 {
    (0..RUNS).map(|_| collect_once(scrape)).fold(f64::INFINITY, f64::min)
}

/// Scrape latency quantiles against a populated registry, in µs.
fn metrics_latency(addr: &str) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..LATENCY_SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            http_get(addr, "/metrics", Duration::from_secs(2)).expect("scrape");
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let q = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
    (q(0.50), q(0.95))
}

struct SseRun {
    sent: u64,
    received: u64,
    secs: f64,
    events_per_s: f64,
}

/// Journals [`SSE_EVENTS`] instants (draining each batch so the tap is
/// fed) while one `/events` subscriber counts what arrives.
fn sse_fanout(obs: &Obs, addr: &str) -> SseRun {
    let done = Arc::new(AtomicBool::new(false));
    let producer = {
        let obs = obs.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let tj = obs.journal.for_thread(Layer::Cli, "sse-producer");
            let mut sent = 0u64;
            while sent < SSE_EVENTS as u64 {
                for _ in 0..SSE_BATCH {
                    tj.instant("tick", vec![("n".to_string(), sent as f64)]);
                    sent += 1;
                }
                obs.journal.drain();
            }
            done.store(true, Ordering::Relaxed);
            sent
        })
    };

    let mut stream = TcpStream::connect(addr).expect("sse connect");
    stream
        .write_all(format!("GET /events HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .expect("sse request");
    stream.set_read_timeout(Some(Duration::from_millis(500))).expect("read timeout");
    let mut reader = BufReader::new(stream);
    let mut received = 0u64;
    let mut first: Option<Instant> = None;
    let mut last = Instant::now();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.starts_with("data:") => {
                first.get_or_insert_with(Instant::now);
                last = Instant::now();
                received += 1;
                if received == SSE_EVENTS as u64 {
                    break;
                }
            }
            Ok(_) => {}
            // The producer is done and the stream has gone quiet: every
            // event still in flight has been counted or shed.
            Err(_) if done.load(Ordering::Relaxed) => break,
            Err(_) => {}
        }
    }
    let sent = producer.join().expect("producer thread");
    let secs = first.map_or(0.0, |t0| (last - t0).as_secs_f64()).max(1e-9);
    SseRun { sent, received, secs, events_per_s: received as f64 / secs }
}

fn main() {
    // Leg 1: exporter overhead on a live collection.
    let plain_secs = best_of(false);
    let scraped_secs = best_of(true);
    let throughput_ratio = plain_secs / scraped_secs.max(1e-9);
    let overhead_pct = (scraped_secs / plain_secs.max(1e-9) - 1.0) * 100.0;

    // Legs 2 and 3 share one server over one registry+journal.
    let obs = Obs::new();
    // Populate the registry so `/metrics` renders a realistic body.
    obs.registry.counter("bench_ticks_total", "bench filler").inc();
    let hist = obs.registry.histogram("bench_wait_us", "bench filler");
    for i in 0..1000 {
        hist.record(i);
    }
    let server = TelemetryServer::start(
        ServerConfig::bind("127.0.0.1:0"),
        TelemetryHandles::new(obs.clone()),
    )
    .expect("exporter");
    let addr = server.local_addr().to_string();
    let (lat_p50_us, lat_p95_us) = metrics_latency(&addr);
    let sse = sse_fanout(&obs, &addr);
    let shed = sse.sent.saturating_sub(sse.received);
    server.shutdown();

    let mut table =
        Table::new("telemetry plane: exporter cost".to_string(), &["leg", "result", "detail"]);
    table.row(&["collection, unscraped".into(), fmt_secs(plain_secs), format!("best of {RUNS}")]);
    table.row(&[
        "collection, scraped".into(),
        fmt_secs(scraped_secs),
        format!("overhead {overhead_pct:+.1}%, ratio {throughput_ratio:.3}"),
    ]);
    table.row(&[
        "/metrics latency".into(),
        format!("p50 {lat_p50_us:.0}us"),
        format!("p95 {lat_p95_us:.0}us over {LATENCY_SAMPLES} scrapes"),
    ]);
    table.row(&[
        "SSE fan-out".into(),
        format!("{:.0} events/s", sse.events_per_s),
        format!("{}/{} delivered, {shed} shed", sse.received, sse.sent),
    ]);
    println!("{}", table.render());

    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let json = obj(vec![
        ("bench", "telemetry_plane".into()),
        (
            "workloads",
            Value::Arr(vec![obj(vec![
                ("workload", "HPCCG".into()),
                ("plain_secs", plain_secs.into()),
                ("scraped_secs", scraped_secs.into()),
                ("overhead_pct", overhead_pct.into()),
                ("exporter_throughput_ratio", throughput_ratio.into()),
            ])]),
        ),
        (
            "metrics_latency_us",
            obj(vec![
                ("p50", lat_p50_us.into()),
                ("p95", lat_p95_us.into()),
                ("samples", (LATENCY_SAMPLES as u64).into()),
            ]),
        ),
        (
            "sse",
            obj(vec![
                ("sent", sse.sent.into()),
                ("received", sse.received.into()),
                ("shed", shed.into()),
                ("secs", sse.secs.into()),
                ("events_per_s", sse.events_per_s.into()),
            ]),
        ),
    ]);
    // `cargo bench` runs with the package dir as cwd; anchor the
    // artifact at the workspace root so CI can pick it up by name.
    let out = std::env::var("BENCH_OBS_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json").to_string()
    });
    std::fs::write(&out, json.render()).expect("write BENCH_obs.json");
    println!("wrote {out}");
}
