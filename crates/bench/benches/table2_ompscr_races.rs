//! Table II — data races reported in OmpSCR benchmarks.
//!
//! Reproduces the paper's headline relation: SWORD reports every race
//! ARCHER reports, plus new (real, undocumented) races in `c_md`,
//! `c_testPath`, `cpp_qsomp1`, `cpp_qsomp2`, `cpp_qsomp5`, `cpp_qsomp6`.
//! Race-free benchmarks are listed with zero counts (the paper omits
//! them from the table after verifying no false alarms).

use sword_bench::Table;
use sword_workloads::{ompscr_workloads, RunConfig};

fn main() {
    let cfg = RunConfig::small();
    let mut table = Table::new(
        "Table II: OmpSCR data races reported",
        &["benchmark", "documented", "archer", "archer-low", "sword", "new (sword-only)"],
    );
    let mut sword_only = Vec::new();
    for w in ompscr_workloads() {
        let spec = w.spec();
        let archer = sword_bench::run_archer(w.as_ref(), &cfg, false, None);
        let archer_low = sword_bench::run_archer(w.as_ref(), &cfg, true, None);
        let sword = sword_bench::run_sword(w.as_ref(), &cfg, &format!("t2-{}", spec.name));
        let extra = sword.analysis.race_count().saturating_sub(archer.races);
        if extra > 0 {
            sword_only.push(spec.name);
        }
        table.row(&[
            spec.name.to_string(),
            spec.documented_races.to_string(),
            archer.races.to_string(),
            archer_low.races.to_string(),
            sword.analysis.race_count().to_string(),
            extra.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("benchmarks with new sword-only races: {sword_only:?}");
    println!("paper: [c_md, c_testPath, cpp_qsomp1, cpp_qsomp2, cpp_qsomp5, cpp_qsomp6]");
    assert_eq!(
        sword_only,
        vec!["c_md", "c_testPath", "cpp_qsomp1", "cpp_qsomp2", "cpp_qsomp5", "cpp_qsomp6"],
        "the six benchmarks with undocumented races must match the paper"
    );
}
