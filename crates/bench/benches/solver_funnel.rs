//! Solver screening-funnel microbenchmark.
//!
//! Draws a deterministic population of random [`StridedInterval`] pairs,
//! classifies each through the tiered dispatcher, and measures ns/pair
//! for every populated tier — the closed-form layers against the residue
//! search they shield, plus the branch-and-bound ILP each residue pair
//! would have cost without the funnel, and the per-candidate price of
//! the walk-time congruence prescreen. Writes `BENCH_solver.json` (CI
//! uploads it next to `BENCH_pipeline.json`): tier populations,
//! hit-rates, and ns/pair.
//!
//! Run with `cargo bench -p sword-bench --bench solver_funnel`.

use criterion::Criterion;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use sword_metrics::Stopwatch;
use sword_obs::json::Value;
use sword_solver::{
    congruence_admissible, overlap_ilp, solve_tiered, Fingerprint, StridedInterval, Tier,
};

/// Random interval pairs in the census (fixed seed — the populations and
/// hit-rates below are reproducible run to run).
const PAIRS: usize = 20_000;

fn random_interval(rng: &mut SmallRng) -> StridedInterval {
    let stride = [1u64, 2, 4, 8, 8, 16, 24][rng.gen_range(0..7usize)];
    let size = [1u64, 2, 4, 8][rng.gen_range(0..4usize)];
    let count = rng.gen_range(0..96u64);
    // Clustered bases so ranges overlap often enough to exercise every
    // tier past the cheap range reject.
    let base = rng.gen_range(0..2048u64);
    StridedInterval::new(base, stride, count, size)
}

fn ns_per_pair(
    pairs: &[(StridedInterval, StridedInterval)],
    f: &dyn Fn(&StridedInterval, &StridedInterval),
) -> f64 {
    // Repeat small buckets so the timed window is meaningful.
    let reps = (100_000 / pairs.len().max(1)).max(1);
    let sw = Stopwatch::start();
    for _ in 0..reps {
        for (a, b) in pairs {
            f(std::hint::black_box(a), std::hint::black_box(b));
        }
    }
    sw.secs() * 1e9 / (reps * pairs.len()) as f64
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x5303d);
    let mut buckets: Vec<Vec<(StridedInterval, StridedInterval)>> =
        vec![Vec::new(); Tier::ALL.len()];
    for _ in 0..PAIRS {
        let (a, b) = (random_interval(&mut rng), random_interval(&mut rng));
        let (_, tier) = solve_tiered(&a, &b, true);
        buckets[tier.index()].push((a, b));
    }

    let mut c = Criterion::default();
    let mut group = c.benchmark_group("solver_funnel");
    let mut tier_rows: Vec<Value> = Vec::new();
    println!("solver funnel census over {PAIRS} random pairs:");
    for tier in Tier::ALL {
        let bucket = &buckets[tier.index()];
        if bucket.is_empty() {
            continue;
        }
        let share = bucket.len() as f64 / PAIRS as f64;
        let ns = ns_per_pair(bucket, &|a, b| {
            std::hint::black_box(solve_tiered(a, b, true));
        });
        println!(
            "  tier {:<14} {:>6} pairs ({:>5.1}%)  {:>8.1} ns/pair",
            tier.as_str(),
            bucket.len(),
            share * 100.0,
            ns
        );
        group.bench_function(tier.as_str(), |bch| {
            bch.iter(|| {
                for (a, b) in bucket.iter().take(64) {
                    std::hint::black_box(solve_tiered(a, b, true));
                }
            })
        });
        tier_rows.push(Value::Obj(vec![
            ("tier".to_string(), tier.as_str().into()),
            ("pairs".to_string(), (bucket.len() as u64).into()),
            ("hit_rate".to_string(), share.into()),
            ("ns_per_pair".to_string(), ns.into()),
        ]));
    }

    // What the funnel shields: branch-and-bound ILP on the residue pairs
    // (the only pairs that would reach it), and the walk-time prescreen's
    // per-candidate price on the same population.
    let residue = &buckets[Tier::Diophantine.index()];
    let ilp_ns = if residue.is_empty() {
        0.0
    } else {
        ns_per_pair(residue, &|a, b| {
            std::hint::black_box(overlap_ilp(a, b).solve());
        })
    };
    let all_pairs: Vec<_> = buckets.iter().flatten().copied().collect();
    let prescreen_ns = ns_per_pair(&all_pairs, &|a, b| {
        std::hint::black_box(congruence_admissible(a, Fingerprint::of(a), b, Fingerprint::of(b)));
    });
    println!(
        "  ILP on residue pairs: {ilp_ns:.1} ns/pair; prescreen: {prescreen_ns:.1} ns/candidate"
    );
    group.bench_function("ilp_on_residue", |bch| {
        bch.iter(|| {
            for (a, b) in residue.iter().take(16) {
                std::hint::black_box(overlap_ilp(a, b).solve());
            }
        })
    });
    group.finish();

    let json = Value::Obj(vec![
        ("bench".to_string(), "solver_funnel".into()),
        ("pairs".to_string(), (PAIRS as u64).into()),
        ("tiers".to_string(), Value::Arr(tier_rows)),
        ("ilp_ns_per_residue_pair".to_string(), ilp_ns.into()),
        ("prescreen_ns_per_candidate".to_string(), prescreen_ns.into()),
    ]);
    let out = std::env::var("BENCH_SOLVER_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json").to_string()
    });
    std::fs::write(&out, json.render()).expect("write BENCH_solver.json");
    println!("wrote {out}");
}
