//! Table III — runtime overhead of the offline data race detection on
//! OmpSCR.
//!
//! Columns mirror the paper's: baseline time, the two ARCHER
//! configurations (whose analysis is entirely online), SWORD's dynamic
//! phase (DA), its single-node offline analysis (OA), the
//! distributed-analysis proxy MT (the longest single comparison task —
//! with one task per cluster node, the makespan the paper measures), and
//! the incremental live mode's time-to-first-race (TTFR): the analysis
//! work spent before the first race surfaces when the session is
//! analyzed as it is being published, versus the batch OA total.

use sword_bench::{fmt_secs, Table};
use sword_workloads::{ompscr_workloads, RunConfig};

fn main() {
    let cfg = RunConfig::small();
    let mut table = Table::new(
        "Table III: OmpSCR offline-analysis overheads",
        &[
            "benchmark",
            "base",
            "archer",
            "archer-low",
            "sword DA",
            "OA",
            "MT(8 nodes)",
            "live TTFR",
        ],
    );
    for w in ompscr_workloads() {
        let spec = w.spec();
        let base = sword_bench::run_baseline(w.as_ref(), &cfg);
        let archer = sword_bench::run_archer(w.as_ref(), &cfg, false, None);
        let archer_low = sword_bench::run_archer(w.as_ref(), &cfg, true, None);
        let (sword, live) =
            sword_bench::run_sword_live(w.as_ref(), &cfg, &format!("t3-{}", spec.name), 1);
        table.row(&[
            spec.name.to_string(),
            fmt_secs(base.secs),
            fmt_secs(archer.secs),
            fmt_secs(archer_low.secs),
            fmt_secs(sword.dynamic_secs),
            fmt_secs(sword.analysis.stats.wall_secs),
            fmt_secs(sword.analysis.makespan(8)),
            live.first_race_secs.map_or_else(|| "-".to_string(), fmt_secs),
        ]);
        // Paper: OA stays under a minute per benchmark at this scale; MT
        // is milliseconds-to-seconds.
        assert!(sword.analysis.stats.wall_secs < 60.0, "{}: offline analysis exploded", spec.name);
        assert!(sword.analysis.stats.max_task_secs <= sword.analysis.stats.wall_secs);
        assert!(sword.analysis.makespan(8) <= sword.analysis.makespan(1) + 1e-9);
        // Live analysis must agree with batch and, on racy benchmarks,
        // surface its first race before spending its full analysis time.
        assert_eq!(live.races, sword.analysis.race_count(), "{}: live != batch", spec.name);
        if let Some(first) = live.first_race_secs {
            assert!(first <= live.total_secs + 1e-9);
        }
    }
    println!("{}", table.render());
}
