//! Table V — total analysis runtimes on the HPC benchmarks, including
//! SWORD's offline phase.
//!
//! Expected shape (§IV-C): SWORD's dynamic phase beats ARCHER except on
//! LULESH, whose very many small parallel regions inflate collection I/O
//! and make the offline phase the dominant cost; AMG completes under
//! SWORD while ARCHER OOMs at the large size (reported as OOM).

use sword_bench::{fmt_secs, mini_node, Table};
use sword_workloads::hpc::amg_workload;
use sword_workloads::{hpc_workloads, RunConfig, Workload};

fn main() {
    let node = mini_node();
    let mut table = Table::new(
        "Table V: HPC total runtimes (DA = dynamic, OA = offline single-node, MT = longest task)",
        &["benchmark", "base", "archer", "archer-low", "sword DA", "OA", "MT(8 nodes)", "regions"],
    );

    let mut rows: Vec<(Box<dyn Workload>, RunConfig)> = hpc_workloads()
        .into_iter()
        .filter(|w| !w.spec().name.starts_with("AMG"))
        .map(|w| {
            // LULESH's distinguishing load is region count: run it with
            // many more steps than the default.
            let size = if w.spec().name == "LULESH" { 400 } else { 0 };
            (w, RunConfig { threads: 6, size })
        })
        .collect();
    rows.push((Box::new(amg_workload(30)), RunConfig { threads: 6, size: 0 }));

    let mut lulesh_oa = 0.0;
    let mut others_max_oa = 0.0f64;
    for (w, cfg) in &rows {
        let spec = w.spec();
        let base = sword_bench::run_baseline(w.as_ref(), cfg);
        let archer = sword_bench::run_archer(w.as_ref(), cfg, false, Some(node.available()));
        let archer_low = sword_bench::run_archer(w.as_ref(), cfg, true, Some(node.available()));
        let sword = sword_bench::run_sword(w.as_ref(), cfg, &format!("t5-{}", spec.name));
        let archer_cell = if archer.stats.oom { "OOM".into() } else { fmt_secs(archer.secs) };
        let archer_low_cell =
            if archer_low.stats.oom { "OOM".into() } else { fmt_secs(archer_low.secs) };
        table.row(&[
            spec.name.to_string(),
            fmt_secs(base.secs),
            archer_cell,
            archer_low_cell,
            fmt_secs(sword.dynamic_secs),
            fmt_secs(sword.analysis.stats.wall_secs),
            fmt_secs(sword.analysis.makespan(8)),
            sword.collect.regions.to_string(),
        ]);
        if spec.name == "LULESH" {
            lulesh_oa = sword.analysis.stats.wall_secs;
        } else {
            others_max_oa = others_max_oa.max(sword.analysis.stats.wall_secs);
        }
    }
    println!("{}", table.render());
    println!(
        "LULESH offline analysis: {} vs worst other: {} — region count drives the blow-up",
        fmt_secs(lulesh_oa),
        fmt_secs(others_max_oa)
    );
    assert!(lulesh_oa > others_max_oa, "LULESH's many regions must dominate offline analysis time");
}
