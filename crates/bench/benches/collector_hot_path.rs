//! Online-collection hot-path microbenchmarks.
//!
//! The paper's data-collection overhead (§IV, Figures 6–7) is dominated
//! by three inner loops: encoding events into the bounded buffer,
//! compressing filled buffers, and writing frames. This target measures
//! each in isolation on an OmpSCR-style event mix, and pins the PR's
//! headline claim: the accelerated [`Compressor`] (skip trigger, wide
//! copies, recycled hash table) must beat the seed greedy codec by at
//! least 1.5× on compression throughput (asserted at 1.2× so a loaded
//! CI machine does not flake; EXPERIMENTS.md records the measured
//! margin).
//!
//! Run with `cargo bench -p sword-bench --bench collector_hot_path`.

use sword_bench::Table;
use sword_compress::{compress_greedy, decompress, Compressor, FrameWriter};
use sword_metrics::Stopwatch;
use sword_obs::json::Value;
use sword_runtime::{run_collected, SwordConfig, SwordStats};
use sword_trace::{AccessKind, Event, EventEncoder, MemAccess};

/// An OmpSCR-style interval: a few hot PCs doing strided array sweeps
/// with reads and writes interleaved, punctuated by critical sections —
/// the event shape `c_md`/`c_pi`/`c_mandel` produce. ~1 MB encoded at
/// 200k iterations, i.e. several full 25k-event paper buffers.
fn ompscr_events(n: usize) -> Vec<Event> {
    let mut events = Vec::with_capacity(n);
    for i in 0..n as u64 {
        if i % 97 == 96 {
            events.push(Event::MutexAcquire(1));
            events.push(Event::Access(MemAccess::new(0x7000, 8, AccessKind::Write, 90)));
            events.push(Event::MutexRelease(1));
            continue;
        }
        let pc = 40 + (i % 4) as u32;
        let kind = if i % 3 == 0 { AccessKind::Read } else { AccessKind::Write };
        let addr = 0x100000 + (i % 5) * 0x2000 + i * 8;
        events.push(Event::Access(MemAccess::new(addr, 8, kind, pc)));
    }
    events
}

fn encode_block(events: &[Event]) -> Vec<u8> {
    let mut enc = EventEncoder::new();
    let mut buf = Vec::new();
    for e in events {
        enc.encode(e, &mut buf);
    }
    buf
}

/// Best-of-`iters` seconds for one run of `f` (best-of defeats CI noise).
fn best_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let sw = Stopwatch::start();
        f();
        best = best.min(sw.secs());
    }
    best
}

fn mbps(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs.max(1e-9)
}

/// A short end-to-end collected run whose flush counters go into the
/// machine-readable artifact alongside the microbench numbers.
fn flush_counter_run() -> (f64, SwordStats) {
    let dir = std::env::temp_dir().join(format!("sword-hotpath-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sw = Stopwatch::start();
    let (_, stats) = run_collected(
        SwordConfig::new(&dir).buffer_events(4096),
        sword_ompsim::SimConfig::default(),
        |sim| {
            let n = 40_000u64;
            let a = sim.alloc::<u64>(n, 0);
            sim.run(|ctx| {
                ctx.parallel(4, |w| {
                    w.for_static(0..n, |i| w.write(&a, i, i));
                })
            });
        },
    )
    .expect("collected run");
    let secs = sw.secs();
    let _ = std::fs::remove_dir_all(&dir);
    (secs, stats)
}

/// Writes `BENCH_collector.json` (CI uploads it as an artifact):
/// microbench throughput + codec speedup + the flush counters of a real
/// collected run.
fn write_artifact(
    encode_mevents_per_s: f64,
    greedy_mbps: f64,
    accel_mbps: f64,
    speedup: f64,
    ratio: f64,
    decompress_mbps: f64,
) {
    let (secs, stats) = flush_counter_run();
    let f = &stats.flush;
    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let json = obj(vec![
        ("bench", "collector_hot_path".into()),
        ("encode_mevents_per_s", encode_mevents_per_s.into()),
        ("compress_greedy_mbps", greedy_mbps.into()),
        ("compress_accel_mbps", accel_mbps.into()),
        ("speedup_over_seed", speedup.into()),
        ("compression_ratio", ratio.into()),
        ("decompress_mbps", decompress_mbps.into()),
        (
            "collected_run",
            obj(vec![
                ("events", stats.events.into()),
                ("events_per_s", (stats.events as f64 / secs.max(1e-9)).into()),
                ("flushes", f.flushes.into()),
                ("stall_nanos", f.stall_nanos.into()),
                ("compress_nanos", f.compress_nanos.into()),
                ("write_nanos", f.write_nanos.into()),
                ("raw_bytes", f.raw_bytes.into()),
                ("compressed_bytes", f.compressed_bytes.into()),
                ("tool_memory_bytes", stats.tool_memory_bytes.into()),
            ]),
        ),
    ]);
    // `cargo bench` runs with the package dir as cwd; anchor the
    // artifact at the workspace root so CI can pick it up by name.
    let out = std::env::var("BENCH_COLLECTOR_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_collector.json").to_string()
    });
    std::fs::write(&out, json.render()).expect("write BENCH_collector.json");
    println!("wrote {out}");
}

fn main() {
    const EVENTS: usize = 200_000;
    const ITERS: usize = 30;
    let events = ompscr_events(EVENTS);
    let block = encode_block(&events);

    let mut table = Table::new(
        format!("collector hot path ({} events, {} byte block)", events.len(), block.len()),
        &["stage", "throughput", "ratio", "notes"],
    );

    // Event encoding (the per-access cost on the app thread).
    let mut sink = Vec::with_capacity(block.len() + 64);
    let enc_secs = best_secs(ITERS, || {
        sink.clear();
        let mut enc = EventEncoder::new();
        for e in &events {
            enc.encode(e, &mut sink);
        }
    });
    table.row(&[
        "encode".into(),
        format!("{:.0} Mevents/s", events.len() as f64 / 1e6 / enc_secs.max(1e-9)),
        "-".into(),
        format!("{:.0} MB/s encoded", mbps(block.len(), enc_secs)),
    ]);

    // Seed greedy codec (retained as `compress_greedy`).
    let mut out = Vec::new();
    let greedy_secs = best_secs(ITERS, || {
        out.clear();
        compress_greedy(&block, &mut out);
    });
    let greedy_len = out.len();
    table.row(&[
        "compress (seed greedy)".into(),
        format!("{:.0} MB/s", mbps(block.len(), greedy_secs)),
        format!("{:.2}x", block.len() as f64 / greedy_len as f64),
        "hash table zeroed per block".into(),
    ]);

    // Accelerated codec with a reused, worker-owned Compressor.
    let mut comp = Compressor::new();
    let accel_secs = best_secs(ITERS, || {
        out.clear();
        comp.compress(&block, &mut out);
    });
    let accel_len = out.len();
    let speedup = greedy_secs / accel_secs.max(1e-9);
    table.row(&[
        "compress (accelerated)".into(),
        format!("{:.0} MB/s", mbps(block.len(), accel_secs)),
        format!("{:.2}x", block.len() as f64 / accel_len as f64),
        format!("{speedup:.2}x over seed"),
    ]);

    // Decompression (the offline analyzer's ingest cost).
    let compressed = out.clone();
    let mut plain = Vec::new();
    let dec_secs = best_secs(ITERS, || {
        plain.clear();
        decompress(&compressed, &mut plain).unwrap();
    });
    assert_eq!(plain, block, "roundtrip");
    table.row(&[
        "decompress".into(),
        format!("{:.0} MB/s", mbps(block.len(), dec_secs)),
        "-".into(),
        "wide copies".into(),
    ]);

    // End-to-end flush: frame encoding + buffered write, as one
    // compression worker sees it.
    let flush_secs = best_secs(ITERS, || {
        let mut w = FrameWriter::new(Vec::with_capacity(compressed.len() + 64));
        w.write_frame(&block).unwrap();
    });
    table.row(&[
        "flush (frame + write)".into(),
        format!("{:.0} MB/s", mbps(block.len(), flush_secs)),
        "-".into(),
        "per-buffer handoff cost".into(),
    ]);

    println!("{}", table.render());
    println!(
        "accelerated codec speedup over seed greedy: {speedup:.2}x \
         (target >= 1.5x, CI floor 1.2x)"
    );
    assert!(
        speedup >= 1.2,
        "accelerated codec must outrun the seed greedy codec: {speedup:.2}x < 1.2x"
    );
    assert!(
        accel_len as f64 <= greedy_len as f64 * 1.10,
        "speed must not cost ratio: accelerated {accel_len} vs greedy {greedy_len}"
    );

    write_artifact(
        events.len() as f64 / 1e6 / enc_secs.max(1e-9),
        mbps(block.len(), greedy_secs),
        mbps(block.len(), accel_secs),
        speedup,
        block.len() as f64 / accel_len as f64,
        mbps(block.len(), dec_secs),
    );
}
