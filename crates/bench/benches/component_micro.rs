//! Component microbenchmarks: the per-event and per-comparison costs that
//! determine SWORD's dynamic overhead (§III-A) and offline throughput
//! (§III-B) — offset-span label comparison, event encode/decode, the
//! Diophantine overlap solve, and block compression.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sword_osl::Label;
use sword_solver::{strided_overlap, StridedInterval};
use sword_trace::{AccessKind, Event, EventDecoder, EventEncoder, MemAccess};

fn bench_osl(c: &mut Criterion) {
    let a = Label::root().fork(0, 8).bump().bump().fork(3, 4);
    let b = Label::root().fork(5, 8).bump().fork(1, 4);
    let c2 = a.bump();
    c.bench_function("osl_compare_concurrent", |bench| {
        bench.iter(|| a.compare_barrier_aware(std::hint::black_box(&b)));
    });
    c.bench_function("osl_compare_sequential", |bench| {
        bench.iter(|| a.compare_barrier_aware(std::hint::black_box(&c2)));
    });
    c.bench_function("osl_fork_and_bump", |bench| {
        bench.iter(|| {
            let mut l = std::hint::black_box(&a).fork(2, 4);
            l.bump_in_place();
            l
        });
    });
}

fn bench_encode(c: &mut Criterion) {
    const N: u64 = 10_000;
    let events: Vec<Event> = (0..N)
        .map(|i| Event::Access(MemAccess::new(0x1000 + i * 8, 8, AccessKind::Write, 42)))
        .collect();
    let mut group = c.benchmark_group("event_codec");
    group.throughput(Throughput::Elements(N));
    group.bench_function("encode_10k", |b| {
        b.iter(|| {
            let mut enc = EventEncoder::new();
            let mut buf = Vec::with_capacity(N as usize * 4);
            for e in &events {
                enc.encode(e, &mut buf);
            }
            buf.len()
        });
    });
    let mut enc = EventEncoder::new();
    let mut encoded = Vec::new();
    for e in &events {
        enc.encode(e, &mut encoded);
    }
    group.bench_function("decode_10k", |b| {
        b.iter(|| EventDecoder::new().decode_all(&encoded).unwrap().len());
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let disjoint = (StridedInterval::new(10, 8, 1000, 4), StridedInterval::new(14, 8, 1000, 4));
    let touching = (StridedInterval::new(10, 8, 1000, 4), StridedInterval::new(13, 8, 1000, 4));
    let dense = (StridedInterval::new(0, 8, 1000, 8), StridedInterval::new(4096, 8, 1000, 8));
    c.bench_function("solver_strided_unsat", |b| {
        b.iter(|| strided_overlap(std::hint::black_box(&disjoint.0), &disjoint.1));
    });
    c.bench_function("solver_strided_sat", |b| {
        b.iter(|| strided_overlap(std::hint::black_box(&touching.0), &touching.1));
    });
    c.bench_function("solver_dense_fastpath", |b| {
        b.iter(|| strided_overlap(std::hint::black_box(&dense.0), &dense.1));
    });
}

fn bench_compress(c: &mut Criterion) {
    // A realistic flushed buffer: 25k sequential-sweep events.
    let mut enc = EventEncoder::new();
    let mut block = Vec::new();
    for i in 0..25_000u64 {
        enc.encode(
            &Event::Access(MemAccess::new(0x8000 + i * 8, 8, AccessKind::Write, 7)),
            &mut block,
        );
    }
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(block.len() as u64));
    group.bench_function("compress_flush_buffer", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            sword_compress::compress(&block, &mut out);
            out.len()
        });
    });
    let mut compressed = Vec::new();
    sword_compress::compress(&block, &mut compressed);
    group.bench_function("decompress_flush_buffer", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            sword_compress::decompress(&compressed, &mut out).unwrap();
            out.len()
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_osl, bench_encode, bench_solver, bench_compress
);
criterion_main!(benches);
