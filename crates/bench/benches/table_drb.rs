//! §IV-A — DataRaceBench results.
//!
//! The paper reports this comparison in prose: no tool raises false
//! alarms; all tools miss the `indirectaccess{1-4}` races (input-
//! dependent); SWORD alone catches `nowait` and `privatemissing`; all
//! tools report the extra real race in `plusplus`. This target
//! regenerates the full per-kernel table.

use sword_bench::Table;
use sword_workloads::{drb_workloads, RunConfig};

fn main() {
    let cfg = RunConfig::small();
    let mut table = Table::new(
        "DataRaceBench results (§IV-A): distinct racy source-line pairs",
        &["benchmark", "documented", "archer", "archer-low", "sword"],
    );
    let mut false_alarms = 0;
    for w in drb_workloads() {
        let spec = w.spec();
        let archer = sword_bench::run_archer(w.as_ref(), &cfg, false, None);
        let archer_low = sword_bench::run_archer(w.as_ref(), &cfg, true, None);
        let sword = sword_bench::run_sword(w.as_ref(), &cfg, &format!("drb-{}", spec.name));
        if spec.sword_races == 0 && spec.documented_races == 0 {
            false_alarms += archer.races + archer_low.races + sword.analysis.race_count();
        }
        table.row(&[
            spec.name.to_string(),
            spec.documented_races.to_string(),
            archer.races.to_string(),
            archer_low.races.to_string(),
            sword.analysis.race_count().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("false alarms on race-free kernels: {false_alarms} (paper: none)");
    assert_eq!(false_alarms, 0, "no tool may raise a false alarm");
}
