//! Figure 6 — geometric-mean runtime and memory overheads on OmpSCR.
//!
//! The paper plots, across 8–24 threads, the geometric mean over the
//! OmpSCR suite of (runtime, memory) for baseline / archer / archer-low /
//! sword's data collection. Expected shape: sword's dynamic collection
//! costs less than both ARCHER configurations in runtime *and* memory,
//! and its memory is a flat per-thread constant. (Offline analysis is
//! intentionally excluded here, as in the paper — Table III covers it.)
//! The sweep is {2, 4, 8} threads on this single-core container.

use sword_bench::{fmt_secs, format_bytes, geomean, Table, THREAD_SWEEP};
use sword_workloads::{ompscr_workloads, RunConfig};

fn main() {
    let mut table = Table::new(
        "Figure 6: OmpSCR geomean runtime / tool memory (dynamic phase)",
        &[
            "threads",
            "base time",
            "archer",
            "archer-low",
            "sword DA",
            "archer mem",
            "archer-low mem",
            "sword mem",
        ],
    );
    for &threads in &THREAD_SWEEP {
        let cfg = RunConfig::with_threads(threads);
        let (mut bt, mut at, mut alt, mut st) = (vec![], vec![], vec![], vec![]);
        let (mut am, mut alm, mut sm) = (vec![], vec![], vec![]);
        for w in ompscr_workloads() {
            let name = w.spec().name;
            let base = sword_bench::run_baseline(w.as_ref(), &cfg);
            let archer = sword_bench::run_archer(w.as_ref(), &cfg, false, None);
            let archer_low = sword_bench::run_archer(w.as_ref(), &cfg, true, None);
            let sword = sword_bench::run_sword(w.as_ref(), &cfg, &format!("f6-{threads}-{name}"));
            bt.push(base.secs.max(1e-6));
            at.push(archer.secs.max(1e-6));
            alt.push(archer_low.secs.max(1e-6));
            st.push(sword.dynamic_secs.max(1e-6));
            // Memory rows come from the live gauges: the archer runs'
            // MemGauge peaks and the collector gauge in the registry.
            am.push(archer.mem.peak().max(1) as f64);
            alm.push(archer_low.mem.peak().max(1) as f64);
            sm.push(sword.collector_mem_bytes().max(1) as f64);
        }
        let g = |v: &[f64]| geomean(v).unwrap();
        table.row(&[
            threads.to_string(),
            fmt_secs(g(&bt)),
            fmt_secs(g(&at)),
            fmt_secs(g(&alt)),
            fmt_secs(g(&st)),
            format_bytes(g(&am) as u64),
            format_bytes(g(&alm) as u64),
            format_bytes(g(&sm) as u64),
        ]);
        // Paper shape: sword's collection memory is below both archer
        // configurations.
        assert!(
            g(&sm) < g(&am) && g(&sm) < g(&alm),
            "sword collection memory must undercut archer ({} vs {}/{})",
            g(&sm),
            g(&am),
            g(&alm)
        );
    }
    println!("{}", table.render());
    println!("(threads sweep scaled to a single-core container; paper: 8-24 threads)");
}
