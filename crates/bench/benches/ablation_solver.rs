//! §III-B ablation — the strided-overlap constraint solver.
//!
//! The paper solves its overlap constraints with GLPK (ILP). This target
//! runs the full offline analysis of a stride-heavy workload twice —
//! once with the production Diophantine solve, once with the
//! branch-and-bound ILP mirroring the paper's formulation — confirming
//! identical verdicts and measuring the speed gap, plus a microbenchmark
//! of the two solvers on the paper's Figure 4 system.

use sword_bench::{fmt_secs, Table};
use sword_metrics::Stopwatch;
use sword_offline::{AnalysisConfig, SolverChoice};
use sword_solver::{overlap_ilp, strided_overlap, IlpStatus, StridedInterval};
use sword_workloads::{find_workload, RunConfig};

fn main() {
    let w = find_workload("antidep1-orig-yes").expect("workload exists");
    let cfg = RunConfig { threads: 4, size: 8000 };

    let mut table = Table::new(
        "Solver ablation: full offline analysis under each solver",
        &["solver", "OA time", "solver calls", "races"],
    );
    let mut verdicts = Vec::new();
    for (name, solver) in
        [("diophantine", SolverChoice::Diophantine), ("branch&bound ILP", SolverChoice::Ilp)]
    {
        let run = sword_bench::run_sword_with(
            w.as_ref(),
            &cfg,
            &format!("abl-solver-{name}"),
            sword_runtime::PAPER_BUFFER_EVENTS,
            &AnalysisConfig::sequential().with_solver(solver),
        );
        verdicts.push(run.analysis.race_count());
        table.row(&[
            name.to_string(),
            fmt_secs(run.analysis.stats.wall_secs),
            run.analysis.stats.solver_calls.to_string(),
            run.analysis.race_count().to_string(),
        ]);
    }
    println!("{}", table.render());
    assert_eq!(verdicts[0], verdicts[1], "solvers must agree");

    // Microbenchmark on the paper's Figure 4 system (unsatisfiable) and
    // its satisfiable sibling.
    let t0 = StridedInterval::new(10, 8, 4, 4);
    let t1 = StridedInterval::new(14, 8, 4, 4);
    let t2 = StridedInterval::new(13, 8, 4, 4);
    const REPS: usize = 10_000;
    let mut micro =
        Table::new("Figure 4 constraint, 10k solves", &["solver", "unsat case", "sat case"]);
    let time = |f: &dyn Fn() -> bool| {
        let sw = Stopwatch::start();
        let mut x = false;
        for _ in 0..REPS {
            x ^= std::hint::black_box(f());
        }
        std::hint::black_box(x);
        sw.secs()
    };
    let dio_unsat = time(&|| strided_overlap(&t0, &t1));
    let dio_sat = time(&|| strided_overlap(&t0, &t2));
    let ilp_unsat = time(&|| overlap_ilp(&t0, &t1).solve() == IlpStatus::Feasible);
    let ilp_sat = time(&|| overlap_ilp(&t0, &t2).solve() == IlpStatus::Feasible);
    micro.row(&["diophantine".into(), fmt_secs(dio_unsat), fmt_secs(dio_sat)]);
    micro.row(&["branch&bound ILP".into(), fmt_secs(ilp_unsat), fmt_secs(ilp_sat)]);
    println!("{}", micro.render());
    println!(
        "diophantine speedup: {:.0}x (unsat), {:.0}x (sat)",
        ilp_unsat / dio_unsat.max(1e-12),
        ilp_sat / dio_sat.max(1e-12)
    );
}
