//! §III-B ablation — the strided-overlap constraint solver.
//!
//! The paper solves its overlap constraints with GLPK (ILP). This target
//! runs the full offline analysis of a stride-heavy workload twice —
//! once with the production Diophantine solve, once with the
//! branch-and-bound ILP mirroring the paper's formulation — confirming
//! identical verdicts and measuring the speed gap, plus a microbenchmark
//! of the two solvers on the paper's Figure 4 system.

use sword_bench::{fmt_secs, Table};
use sword_metrics::Stopwatch;
use sword_offline::{AnalysisConfig, FunnelConfig, SolverChoice};
use sword_solver::{overlap_ilp, strided_overlap, IlpStatus, StridedInterval, Tier};
use sword_workloads::{find_workload, RunConfig};

/// Figure 4 at scale: each thread writes its residue class mod 8 of `a`
/// (pairwise disjoint — congruence-prescreen fodder), then a stride-8
/// lane of `b` shifted by a whole stride per thread so threads 4 apart
/// collide on the same residue (found by the residue search).
fn strided_mix(sim: &sword_ompsim::OmpSim) {
    const N: u64 = 1 << 14;
    let a = sim.alloc::<f64>(N, 0.0);
    let b = sim.alloc::<f64>(N, 0.0);
    sim.run(|ctx| {
        ctx.parallel(8, |w| {
            let t = w.team_index();
            let mut i = t;
            while i < N {
                w.write(&a, i, 1.0);
                i += 8;
            }
            let mut j = t * 2;
            while j < N {
                w.write(&b, j, 2.0);
                j += 8;
            }
            w.barrier();
        });
    });
}

fn main() {
    let w = find_workload("antidep1-orig-yes").expect("workload exists");
    let cfg = RunConfig { threads: 4, size: 8000 };

    let mut table = Table::new(
        "Solver ablation: full offline analysis under each solver",
        &["solver", "OA time", "solver calls", "races"],
    );
    let mut verdicts = Vec::new();
    for (name, solver) in
        [("diophantine", SolverChoice::Diophantine), ("branch&bound ILP", SolverChoice::Ilp)]
    {
        let run = sword_bench::run_sword_with(
            w.as_ref(),
            &cfg,
            &format!("abl-solver-{name}"),
            sword_runtime::PAPER_BUFFER_EVENTS,
            &AnalysisConfig::sequential().with_solver(solver),
        );
        verdicts.push(run.analysis.race_count());
        table.row(&[
            name.to_string(),
            fmt_secs(run.analysis.stats.wall_secs),
            run.analysis.stats.solver_calls.to_string(),
            run.analysis.race_count().to_string(),
        ]);
    }
    println!("{}", table.render());
    assert_eq!(verdicts[0], verdicts[1], "solvers must agree");

    // Per-tier ablation of the screening funnel on a Figure-4-scale
    // strided workload: residue-class splits mod 8 (retired by the
    // congruence prescreen) interleaved with same-residue shifted writes
    // (resolved by the residue search, racy on the seam). Every mask is
    // required to be result-neutral: races and candidates must not move,
    // and `solver calls + prescreened` is conserved — only the split
    // between the two (and the OA time) may change when a screen is
    // disabled.
    let funnel_dir = sword_bench::bench_session_dir("abl-funnel");
    let _ = std::fs::remove_dir_all(&funnel_dir);
    sword_runtime::run_collected(
        sword_runtime::SwordConfig::new(&funnel_dir),
        sword_ompsim::SimConfig::default(),
        strided_mix,
    )
    .expect("funnel workload collection");
    let funnel_session = sword_trace::SessionDir::new(&funnel_dir);
    let variants: &[(&str, FunnelConfig)] = &[
        ("all", FunnelConfig::ALL),
        ("none", FunnelConfig::NONE),
        ("-gcd", FunnelConfig { gcd: false, ..FunnelConfig::ALL }),
        ("-prescreen", FunnelConfig { prescreen: false, ..FunnelConfig::ALL }),
        ("-bbox", FunnelConfig { bbox: false, ..FunnelConfig::ALL }),
        ("-batch", FunnelConfig { batch: false, ..FunnelConfig::ALL }),
    ];
    let mut funnel_table = Table::new(
        "Funnel tier ablation: strided-mix offline analysis under each screen mask",
        &["tiers", "OA time", "solver calls", "prescreened", "residue solves", "races"],
    );
    let mut invariant: Option<(usize, u64, u64)> = None;
    for (name, funnel) in variants {
        let config = AnalysisConfig::sequential().with_funnel(*funnel);
        let counters = config.tiers.clone();
        let analysis = sword_offline::analyze(&funnel_session, &config).expect("funnel analysis");
        let stats = &analysis.stats;
        funnel_table.row(&[
            name.to_string(),
            fmt_secs(stats.wall_secs),
            stats.solver_calls.to_string(),
            stats.prescreened_pairs.to_string(),
            counters.get(Tier::Diophantine).to_string(),
            analysis.race_count().to_string(),
        ]);
        let now = (
            analysis.race_count(),
            stats.candidate_pairs,
            stats.solver_calls + stats.prescreened_pairs,
        );
        match &invariant {
            None => invariant = Some(now),
            Some(want) => assert_eq!(&now, want, "mask {name} changed the result"),
        }
    }
    println!("{}", funnel_table.render());

    // The wall-time claim, isolated: under the branch-and-bound ILP the
    // funnel is the difference between solving every decided pair by
    // B&B (the pre-funnel shape, reproduced by `none` since the
    // screens are off and no pair here is dense) and reserving B&B for
    // the residue pairs the closed-form tiers cannot retire. Best-of-3
    // offline-analysis times; verdicts must agree.
    let mut ilp_table = Table::new(
        "Funnel x branch&bound ILP: strided-mix offline analysis",
        &["tiers", "OA time (best of 3)", "B&B solves", "races"],
    );
    let mut ilp_races: Vec<usize> = Vec::new();
    for (name, funnel) in [("all", FunnelConfig::ALL), ("none", FunnelConfig::NONE)] {
        let mut best_wall = f64::INFINITY;
        let mut bb_solves = 0;
        let mut races = 0;
        for _ in 0..3 {
            let config =
                AnalysisConfig::sequential().with_solver(SolverChoice::Ilp).with_funnel(funnel);
            let counters = config.tiers.clone();
            let analysis =
                sword_offline::analyze(&funnel_session, &config).expect("ilp funnel analysis");
            best_wall = best_wall.min(analysis.stats.wall_secs);
            bb_solves = counters.get(Tier::Ilp);
            races = analysis.race_count();
        }
        ilp_table.row(&[
            name.to_string(),
            fmt_secs(best_wall),
            bb_solves.to_string(),
            races.to_string(),
        ]);
        ilp_races.push(races);
    }
    assert_eq!(ilp_races[0], ilp_races[1], "funnel must not change ILP verdicts");
    let _ = std::fs::remove_dir_all(&funnel_dir);
    println!("{}", ilp_table.render());

    // Microbenchmark on the paper's Figure 4 system (unsatisfiable) and
    // its satisfiable sibling.
    let t0 = StridedInterval::new(10, 8, 4, 4);
    let t1 = StridedInterval::new(14, 8, 4, 4);
    let t2 = StridedInterval::new(13, 8, 4, 4);
    const REPS: usize = 10_000;
    let mut micro =
        Table::new("Figure 4 constraint, 10k solves", &["solver", "unsat case", "sat case"]);
    let time = |f: &dyn Fn() -> bool| {
        let sw = Stopwatch::start();
        let mut x = false;
        for _ in 0..REPS {
            x ^= std::hint::black_box(f());
        }
        std::hint::black_box(x);
        sw.secs()
    };
    let dio_unsat = time(&|| strided_overlap(&t0, &t1));
    let dio_sat = time(&|| strided_overlap(&t0, &t2));
    let ilp_unsat = time(&|| overlap_ilp(&t0, &t1).solve() == IlpStatus::Feasible);
    let ilp_sat = time(&|| overlap_ilp(&t0, &t2).solve() == IlpStatus::Feasible);
    micro.row(&["diophantine".into(), fmt_secs(dio_unsat), fmt_secs(dio_sat)]);
    micro.row(&["branch&bound ILP".into(), fmt_secs(ilp_unsat), fmt_secs(ilp_sat)]);
    println!("{}", micro.render());
    println!(
        "diophantine speedup: {:.0}x (unsat), {:.0}x (sat)",
        ilp_unsat / dio_unsat.max(1e-12),
        ilp_sat / dio_sat.max(1e-12)
    );
}
