//! Analysis-core pipeline smoke: compare + tree-build throughput of the
//! shared zero-copy, memoizing core on the Figure 7/8 HPC workloads.
//!
//! Two batch configurations over the same collected session at 8
//! workers: the pre-refactor shape (buffered forward reads, no verdict
//! memo, every task rebuilding its trees) against the refactored
//! default (mapped zero-copy images, shared verdict memo, per-worker
//! tree caches). Stage item counts are logical and identical across the
//! two, so the throughput ratio is a pure time ratio. Writes
//! `BENCH_pipeline.json` (CI uploads it as an artifact next to
//! `BENCH_collector.json`): per-mode stage seconds, the
//! compare+tree-build throughput speedup, the verdict-cache hit rate,
//! and the log bytes mapped.
//!
//! Run with `cargo bench -p sword-bench --bench pipeline_smoke`.

use sword_bench::{fmt_secs, Table};
use sword_metrics::format_bytes;
use sword_obs::json::Value;
use sword_obs::Obs;
use sword_offline::{analyze_loaded, AnalysisConfig, AnalysisResult, LoadedSession};
use sword_trace::{ReadMode, SessionDir};
use sword_workloads::hpc::amg_workload;
use sword_workloads::tasking::taskfan_workload;
use sword_workloads::{find_workload, RunConfig, Workload};

/// Analysis workers (the paper's Figure 7/8 runs use 8 threads).
const WORKERS: usize = 8;

/// Timing runs per configuration (best-of defeats CI noise).
const RUNS: usize = 3;

struct ModeRun {
    result: AnalysisResult,
    /// Best-of-[`RUNS`] wall window of the parallel build+compare loop:
    /// analysis wall minus the serial stages around it. Worker busy-span
    /// sums overlap on an oversubscribed host, so the wall window is
    /// what stage throughput honestly divides by.
    stage_secs: f64,
    /// Combined tree-build + compare worker busy seconds in that run.
    busy_secs: f64,
    /// Items processed by those stages in one run (trees + tree pairs).
    stage_items: u64,
    /// `sword_verdict_cache_hit_rate` registry row after the run.
    hit_rate: f64,
    /// Log bytes held as zero-copy images after the run.
    bytes_mapped: u64,
}

fn run_mode(loaded: &LoadedSession, mode: ReadMode, caches: bool) -> ModeRun {
    let mut best: Option<ModeRun> = None;
    for _ in 0..RUNS {
        let obs = Obs::new();
        let config = AnalysisConfig::default()
            .with_workers(WORKERS)
            .with_read_mode(mode)
            .with_verdict_cache(caches)
            .with_tree_cache_nodes(if caches {
                AnalysisConfig::default().tree_cache_nodes
            } else {
                0
            })
            .with_obs(obs.clone());
        let result = analyze_loaded(loaded, &config).expect("analyze");
        let stage = |name: &str| result.stages.get(name).map(|s| (s.busy_secs, s.items));
        let (build_secs, build_items) = stage("tree-build").expect("tree-build stage");
        let (compare_secs, compare_items) = stage("compare").expect("compare stage");
        let serial: f64 = ["build-structure", "pair-schedule", "dedup-report"]
            .iter()
            .filter_map(|n| stage(n).map(|(s, _)| s))
            .sum();
        let window = (result.stats.wall_secs - serial).max(1e-9);
        let hit_rate = obs
            .registry
            .snapshot()
            .into_iter()
            .find(|(k, _)| k == "sword_verdict_cache_hit_rate")
            .map_or(0.0, |(_, v)| v);
        let run = ModeRun {
            result,
            stage_secs: window,
            busy_secs: build_secs + compare_secs,
            stage_items: build_items + compare_items,
            hit_rate,
            bytes_mapped: config.source_stats.bytes_mapped(),
        };
        if best.as_ref().is_none_or(|b| run.stage_secs < b.stage_secs) {
            best = Some(run);
        }
    }
    best.expect("RUNS >= 1")
}

fn throughput(m: &ModeRun) -> f64 {
    m.stage_items as f64 / m.stage_secs.max(1e-9)
}

fn main() {
    // Figure 7's CG solver at a 20³ grid, Figure 8's AMG sweep at the
    // 30³ point, and the task-fan kernel (task-fork labels plus
    // dynamic/guided loop records): big enough that the measured stage
    // window is work, not fixed overhead.
    let workloads: Vec<Box<dyn Workload>> = vec![
        find_workload("HPCCG").expect("HPCCG workload"),
        Box::new(amg_workload(30)),
        taskfan_workload(),
    ];

    let mut table = Table::new(
        format!("pipeline smoke: compare+tree-build at {WORKERS} workers"),
        &["workload", "mode", "stage wall", "items/s", "races", "cache hits", "bytes mapped"],
    );
    let mut entries: Vec<Value> = Vec::new();
    for w in &workloads {
        let name = w.spec().name;
        let size = if name == "HPCCG" { 20 } else { 0 };
        let cfg = RunConfig { threads: 8, size };
        let dir = sword_bench::bench_session_dir(&format!("pipeline-smoke-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        sword_bench::run_collected_session(w.as_ref(), &cfg, &dir);
        let loaded = LoadedSession::load(&SessionDir::new(&dir)).expect("load");

        // Before: the pre-core shape — buffered streaming, no memos,
        // every task rebuilds its trees.
        let before = run_mode(&loaded, ReadMode::Buffered, false);
        // After: the shared core's default — mapped images, verdict
        // memo, per-worker tree caches.
        let after = run_mode(&loaded, ReadMode::Mapped, true);
        let speedup = throughput(&after) / throughput(&before).max(1e-9);

        assert_eq!(
            before.result.race_count(),
            after.result.race_count(),
            "{name}: read mode/cache changed the verdicts"
        );
        for (mode, m) in [("buffered/uncached", &before), ("mapped/cached", &after)] {
            table.row(&[
                name.to_string(),
                mode.to_string(),
                fmt_secs(m.stage_secs),
                format!("{:.0}", throughput(m)),
                m.result.race_count().to_string(),
                format!("{:.1}%", m.hit_rate * 100.0),
                format_bytes(m.bytes_mapped),
            ]);
        }
        println!("{name}: compare+tree-build speedup {speedup:.2}x");

        let obj = |pairs: Vec<(&str, Value)>| {
            Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let mode_obj = |m: &ModeRun, cache: &str| {
            obj(vec![
                ("cache", cache.into()),
                ("window_secs", m.stage_secs.into()),
                ("busy_secs", m.busy_secs.into()),
                ("items", m.stage_items.into()),
                ("items_per_s", throughput(m).into()),
                ("races", (m.result.race_count() as u64).into()),
                ("cache_hit_rate", m.hit_rate.into()),
                ("bytes_mapped", m.bytes_mapped.into()),
            ])
        };
        entries.push(obj(vec![
            ("workload", name.into()),
            ("workers", (WORKERS as u64).into()),
            ("before_buffered_uncached", mode_obj(&before, "off")),
            ("after_mapped_cached", mode_obj(&after, "on")),
            ("stage_throughput_speedup", speedup.into()),
        ]));

        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("{}", table.render());

    let json = Value::Obj(vec![
        ("bench".to_string(), "pipeline_smoke".into()),
        ("workloads".to_string(), Value::Arr(entries)),
    ]);
    // `cargo bench` runs with the package dir as cwd; anchor the
    // artifact at the workspace root so CI can pick it up by name.
    let out = std::env::var("BENCH_PIPELINE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
    });
    std::fs::write(&out, json.render()).expect("write BENCH_pipeline.json");
    println!("wrote {out}");
}
