//! Figure 1 — happens-before masking.
//!
//! The same two-thread program is executed under its two interleavings:
//! (a) thread 1's locked section runs *before* thread 0's unprotected
//! write — no HB path covers the racing pair, every tool reports it;
//! (b) thread 0's write precedes its lock release, and thread 1 acquires
//! the lock before touching the data — the schedule-artifact
//! release→acquire edge orders the accesses, so the happens-before
//! baseline reports nothing while SWORD still reports the race.

use std::sync::Arc;

use sword_bench::Table;
use sword_ompsim::{OmpSim, Sequencer};
use sword_workloads::{Kernel, RunConfig, Suite, Workload, WorkloadSpec};

fn figure1_program(sim: &OmpSim, interleaving_b: bool) {
    let a = sim.alloc::<u64>(1, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(2, |w| {
            if w.team_index() == 0 {
                if interleaving_b {
                    // (b): write, then release L — the masking order.
                    seq.turn(0, || {
                        w.write(&a, 0, 1);
                    });
                    seq.turn(1, || {
                        w.critical("fig1_L", || {});
                    });
                } else {
                    // (a): thread 1 goes first; the write happens after.
                    seq.wait_for(1);
                    w.write(&a, 0, 1);
                    w.critical("fig1_L", || {});
                    seq.advance();
                }
            } else if interleaving_b {
                seq.wait_for(2);
                w.critical("fig1_L", || {
                    let v = w.read(&a, 0);
                    w.write(&a, 0, v + 1);
                });
            } else {
                seq.turn(0, || {
                    w.critical("fig1_L", || {
                        let v = w.read(&a, 0);
                        w.write(&a, 0, v + 1);
                    });
                });
            }
        });
    });
}

fn workload(interleaving_b: bool) -> Kernel {
    Kernel {
        spec: WorkloadSpec {
            name: if interleaving_b { "figure1-b" } else { "figure1-a" },
            suite: Suite::DataRaceBench,
            documented_races: 2,
            sword_races: 2,
            archer_races: Some(if interleaving_b { 0 } else { 1 }),
            notes: "Figure 1 interleavings",
        },
        run: |_, _| unreachable!("run through figure1_program"),
    }
}

struct Fig1 {
    b: bool,
}

impl Workload for Fig1 {
    fn spec(&self) -> WorkloadSpec {
        workload(self.b).spec
    }

    fn execute(&self, sim: &OmpSim, _cfg: &RunConfig) {
        figure1_program(sim, self.b);
    }
}

fn main() {
    let cfg = RunConfig::small();
    let mut table = Table::new(
        "Figure 1: same program, two interleavings",
        &["interleaving", "archer", "sword"],
    );
    for b in [false, true] {
        let w = Fig1 { b };
        let archer = sword_bench::run_archer(&w, &cfg, false, None);
        let sword = sword_bench::run_sword(&w, &cfg, &format!("fig1-{b}"));
        table.row(&[
            if b { "(b) HB-masked".into() } else { "(a) exposed".into() },
            archer.races.to_string(),
            sword.analysis.race_count().to_string(),
        ]);
        assert_eq!(sword.analysis.race_count(), 2, "sword is schedule-insensitive");
        if b {
            assert_eq!(archer.races, 0, "the HB edge masks the race under (b)");
        } else {
            // Under (a) the race is caught. ARCHER reports one pair, not
            // two: thread 1's write replaced its own read record in the
            // shadow word before thread 0's write arrived — the usual
            // TSan shadow behaviour.
            assert!(archer.races >= 1, "interleaving (a) must be caught");
        }
    }
    println!("{}", table.render());
}
