//! §III-A ablation — bounded-buffer capacity.
//!
//! The paper tuned the per-thread buffer to 25,000 events (≈2 MB,
//! L3-resident) and flushes asynchronously. This target sweeps the
//! capacity and compares sync vs async flushing: smaller buffers bound
//! memory tighter but flush (and frame) more often; detection output is
//! identical at every setting.

use std::path::PathBuf;

use sword_bench::{fmt_secs, format_bytes, Table};
use sword_metrics::Stopwatch;
use sword_offline::{analyze, AnalysisConfig};
use sword_ompsim::SimConfig;
use sword_runtime::{run_collected, SwordConfig};
use sword_trace::SessionDir;
use sword_workloads::{find_workload, RunConfig};

fn main() {
    let w = find_workload("c_loopA.badSolution").expect("workload exists");
    let cfg = RunConfig { threads: 4, size: 20_000 };
    let mut table = Table::new(
        "Buffer-size ablation (c_loopA.badSolution, 20k iterations)",
        &["buffer (events)", "flush", "DA time", "flushes", "tool mem", "log bytes", "races"],
    );
    let mut race_counts = Vec::new();
    for &events in &[500usize, 5_000, 25_000, 100_000] {
        for async_flush in [true, false] {
            let dir: PathBuf = std::env::temp_dir()
                .join(format!("sword-abl-buf-{events}-{async_flush}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let mut config = SwordConfig::new(&dir).buffer_events(events);
            if !async_flush {
                config = config.sync_flush();
            }
            let sw = Stopwatch::start();
            let (_, stats) = run_collected(config, SimConfig::default(), |sim| {
                w.execute(sim, &cfg);
            })
            .expect("collection");
            let da = sw.secs();
            let result =
                analyze(&SessionDir::new(&dir), &AnalysisConfig::default()).expect("analysis");
            let _ = std::fs::remove_dir_all(&dir);
            race_counts.push(result.race_count());
            table.row(&[
                events.to_string(),
                if async_flush { "async".into() } else { "sync".into() },
                fmt_secs(da),
                stats.flushes.to_string(),
                format_bytes(stats.tool_memory_bytes),
                format_bytes(stats.compressed_bytes),
                result.race_count().to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    assert!(
        race_counts.windows(2).all(|p| p[0] == p[1]),
        "buffer size must never change detection results"
    );
}
