//! Per-stage microbenchmarks of the staged offline pipeline: metadata
//! polling (`load-meta`), concurrency-structure reconstruction
//! (`build-structure`), the full staged analysis (`tree-build` +
//! `compare` + `dedup-report`), and one incremental live-replay poll
//! cycle. Complements `table3_ompscr_offline`, which reports end-to-end
//! wall times: this target isolates where those seconds go.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sword_offline::intervals::build_structure;
use sword_offline::{analyze_loaded, AnalysisConfig, LoadedSession};
use sword_trace::{SessionDir, SessionPoller};
use sword_workloads::{find_workload, RunConfig};

fn bench_pipeline_stages(c: &mut Criterion) {
    // One collected session shared by every stage benchmark.
    let w = find_workload("plusplus-orig-yes").expect("workload");
    let cfg = RunConfig::small();
    let dir = sword_bench::bench_session_dir("pipeline-stages");
    let _ = std::fs::remove_dir_all(&dir);
    sword_bench::run_collected_session(w.as_ref(), &cfg, &dir);
    let session = SessionDir::new(&dir);
    let loaded = LoadedSession::load(&session).expect("load session");
    let intervals = loaded.interval_count() as u64;
    let config = AnalysisConfig::sequential();

    let mut group = c.benchmark_group("pipeline_stages");
    group.throughput(Throughput::Elements(intervals));
    group.bench_function("load_meta_poll", |b| {
        b.iter(|| {
            let mut poller = SessionPoller::new(&session);
            poller.poll().expect("poll").interval_count()
        });
    });
    group.bench_function("build_structure", |b| {
        b.iter(|| build_structure(std::hint::black_box(&loaded)).unwrap().groups.len());
    });
    group.bench_function("analyze_staged", |b| {
        b.iter(|| analyze_loaded(&loaded, &config).expect("analyze").race_count());
    });
    group.bench_function("live_replay", |b| {
        b.iter(|| {
            sword_bench::replay_live(&session, "pipeline-stages-replay", &config, usize::MAX).races
        });
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline_stages
);
criterion_main!(benches);
