//! Table IV — data races reported in HPC benchmarks.
//!
//! miniFE and LULESH are race-free; HPCCG carries the benign-but-UB
//! same-value write both tools report; AMG2013 carries 14 races of which
//! ARCHER reports only 4 (shadow-cell eviction hides the rest), and at
//! the 40³ size both ARCHER configurations run out of memory on the
//! model node while SWORD completes.

use sword_bench::{fmt_races, mini_node, Table};
use sword_workloads::hpc::{amg_workload, AMG_SIZES};
use sword_workloads::{hpc_workloads, RunConfig, Workload};

fn main() {
    let cfg = RunConfig { threads: 6, size: 0 };
    let node = mini_node();
    let mut table = Table::new(
        "Table IV: HPC data races reported (OOM = killed by node memory)",
        &["benchmark", "archer", "archer-low", "sword"],
    );

    let fixed: Vec<Box<dyn Workload>> =
        hpc_workloads().into_iter().filter(|w| !w.spec().name.starts_with("AMG")).collect();
    for w in &fixed {
        let spec = w.spec();
        let archer = sword_bench::run_archer(w.as_ref(), &cfg, false, Some(node.available()));
        let archer_low = sword_bench::run_archer(w.as_ref(), &cfg, true, Some(node.available()));
        let sword = sword_bench::run_sword(w.as_ref(), &cfg, &format!("t4-{}", spec.name));
        table.row(&[
            spec.name.to_string(),
            fmt_races(archer.races, archer.stats.oom),
            fmt_races(archer_low.races, archer_low.stats.oom),
            sword.analysis.race_count().to_string(),
        ]);
    }
    for n in AMG_SIZES {
        let w = amg_workload(n);
        let archer = sword_bench::run_archer(&w, &cfg, false, Some(node.available()));
        let archer_low = sword_bench::run_archer(&w, &cfg, true, Some(node.available()));
        let sword = sword_bench::run_sword(&w, &cfg, &format!("t4-amg{n}"));
        table.row(&[
            w.spec.name.to_string(),
            fmt_races(archer.races, archer.stats.oom),
            fmt_races(archer_low.races, archer_low.stats.oom),
            sword.analysis.race_count().to_string(),
        ]);
        if n == 40 {
            assert!(archer.stats.oom, "archer must OOM at AMG_40");
            assert_eq!(sword.analysis.race_count(), 14, "sword completes AMG_40 with 14");
        } else {
            assert!(!archer.stats.oom, "archer fits at AMG_{n}");
            assert_eq!(archer.races, 4, "archer sees 4 at AMG_{n}");
            assert_eq!(sword.analysis.race_count(), 14);
        }
    }
    println!("{}", table.render());
}
