//! Figure 8 — AMG2013 problem-size scaling.
//!
//! Sweeping the grid size 10³ → 40³: the application baseline grows
//! cubically, ARCHER's tool memory tracks it (≈5× the touched footprint)
//! until the node model kills it at 40³, while SWORD's collection memory
//! stays a flat per-thread constant and every size completes.

use sword_bench::{fmt_races, format_bytes, mini_node, Table};
use sword_metrics::Placement;
use sword_workloads::hpc::{amg_baseline_bytes, amg_workload, AMG_SIZES};
use sword_workloads::RunConfig;

fn main() {
    let node = mini_node();
    let cfg = RunConfig { threads: 6, size: 0 };
    let mut table = Table::new(
        "Figure 8: AMG2013 size sweep on a 64 MB model node",
        &[
            "size",
            "baseline",
            "archer mem",
            "archer fate",
            "sword mem",
            "sword fate",
            "archer races",
            "sword races",
        ],
    );
    let mut prev_archer_mem = 0u64;
    for n in AMG_SIZES {
        let w = amg_workload(n);
        let archer = sword_bench::run_archer(&w, &cfg, false, Some(node.available()));
        let sword = sword_bench::run_sword(&w, &cfg, &format!("f8-amg{n}"));
        let baseline = amg_baseline_bytes(n);
        // Memory cells come from the live gauges (archer's MemGauge
        // peak, the collector gauge in sword's registry).
        let sword_mem = sword.collector_mem_bytes();
        let sword_place = node.place(baseline, sword_mem);
        assert!(matches!(sword_place, Placement::Fits { .. }), "sword must fit at {n}");
        table.row(&[
            format!("{n}^3"),
            format_bytes(baseline),
            format_bytes(archer.mem.peak()),
            if archer.stats.oom { "OOM".into() } else { "fits".into() },
            format_bytes(sword_mem),
            "fits".into(),
            fmt_races(archer.races, archer.stats.oom),
            sword.analysis.race_count().to_string(),
        ]);
        if !archer.stats.oom {
            assert!(
                archer.mem.peak() > prev_archer_mem,
                "archer memory must grow with the problem size"
            );
            prev_archer_mem = archer.mem.peak();
        }
        if n == 40 {
            assert!(archer.stats.oom, "the paper's OOM point");
        }
    }
    println!("{}", table.render());
}
