//! §III-A ablation — trace compression.
//!
//! The paper compared LZO, Snappy, and LZ4 and found them
//! interchangeable on SWORD logs. This target measures our LZ codec on
//! real encoded event streams of three shapes (sequential sweep, strided
//! sweep, mutex-heavy), against the stored (no-compression) path, and
//! reports throughput and ratio.

use sword_bench::Table;
use sword_compress::{frame_decompress, FrameWriter};
use sword_metrics::Stopwatch;
use sword_trace::{AccessKind, Event, EventEncoder, MemAccess};

fn encoded_stream(shape: &str, events: usize) -> Vec<u8> {
    let mut enc = EventEncoder::new();
    let mut buf = Vec::new();
    match shape {
        "sequential" => {
            for i in 0..events as u64 {
                enc.encode(
                    &Event::Access(MemAccess::new(0x10000 + i * 8, 8, AccessKind::Write, 42)),
                    &mut buf,
                );
            }
        }
        "strided" => {
            for i in 0..events as u64 {
                let pc = 40 + (i % 3) as u32;
                let kind = if i % 2 == 0 { AccessKind::Read } else { AccessKind::Write };
                enc.encode(
                    &Event::Access(MemAccess::new(0x20000 + (i % 7) * 128 + i * 16, 4, kind, pc)),
                    &mut buf,
                );
            }
        }
        _ => {
            for i in 0..events as u64 {
                if i % 5 == 0 {
                    enc.encode(&Event::MutexAcquire((i % 3) as u32), &mut buf);
                } else if i % 5 == 4 {
                    enc.encode(&Event::MutexRelease((i % 3) as u32), &mut buf);
                } else {
                    enc.encode(
                        &Event::Access(MemAccess::new(0x30000 + i * 8, 8, AccessKind::Write, 7)),
                        &mut buf,
                    );
                }
            }
        }
    }
    buf
}

fn main() {
    const EVENTS: usize = 200_000;
    let mut table = Table::new(
        "Compression ablation on real encoded event streams (200k events)",
        &["stream", "raw bytes", "compressed", "ratio", "compress MB/s", "roundtrip ok"],
    );
    for shape in ["sequential", "strided", "mutex-heavy"] {
        let raw = encoded_stream(shape, EVENTS);
        let sw = Stopwatch::start();
        let mut writer = FrameWriter::new(Vec::new());
        writer.write_frame(&raw).unwrap();
        let secs = sw.secs();
        let frame = writer.into_inner();
        let ratio = raw.len() as f64 / frame.len() as f64;
        let ok = frame_decompress(&frame).unwrap() == raw;
        table.row(&[
            shape.to_string(),
            raw.len().to_string(),
            frame.len().to_string(),
            format!("{ratio:.2}x"),
            format!("{:.0}", raw.len() as f64 / 1e6 / secs.max(1e-9)),
            ok.to_string(),
        ]);
        assert!(ok);
        assert!(ratio > 1.5, "{shape}: event streams must compress ({ratio:.2}x)");
    }
    println!("{}", table.render());
}
