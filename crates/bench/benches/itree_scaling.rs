//! §III-B complexity — interval-tree construction and comparison.
//!
//! Criterion benchmarks validating the paper's complexity analysis:
//! building a tree from `N` accesses is `O(N log N)`; comparing two
//! trees of `M` nodes is `O(M log M)`; summarization makes `M ≪ N` for
//! array sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sword_itree::{count_exact_overlaps, IntervalTree, StridedInterval, SummarizingBuilder};

/// Builds a tree of `n` raw accesses from `pcs` interleaved array sweeps.
fn build_summarized(n: u64, pcs: u32) -> IntervalTree<u32> {
    let mut b: SummarizingBuilder<u32, u32> = SummarizingBuilder::new();
    for i in 0..n {
        let pc = (i % pcs as u64) as u32;
        b.insert_with(pc, 0x1000 + pc as u64 * 0x100000 + (i / pcs as u64) * 8, 8, || pc);
    }
    b.finish()
}

/// Builds a tree of `m` *non-mergeable* nodes (every access from a fresh
/// key at a scattered address).
fn build_scattered(m: u64, offset: u64) -> IntervalTree<u32> {
    let mut t = IntervalTree::new();
    let mut x = 0x9E3779B97F4A7C15u64.wrapping_add(offset);
    for i in 0..m {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t.insert(StridedInterval::new(offset + (x % (m * 64)), 0, 0, 8), i as u32);
    }
    t
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    for n in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("summarized_sweeps", n), &n, |b, &n| {
            b.iter(|| build_summarized(n, 8));
        });
        group.bench_with_input(BenchmarkId::new("scattered_nodes", n), &n, |b, &n| {
            b.iter(|| build_scattered(n, 0));
        });
    }
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_compare");
    for m in [1_000u64, 10_000, 50_000] {
        let a = build_scattered(m, 0);
        let b_tree = build_scattered(m, 32); // shifted: plenty of overlap
        group.throughput(Throughput::Elements(m));
        group.bench_with_input(BenchmarkId::new("pairwise", m), &m, |bench, _| {
            bench.iter(|| count_exact_overlaps(&a, &b_tree));
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let t = build_scattered(100_000, 0);
    c.bench_function("stab_query_100k", |b| {
        let mut q = 0u64;
        b.iter(|| {
            q = (q + 7919) % (100_000 * 64);
            t.range_overlaps(q, q + 64).len()
        });
    });
}

fn summarization_effect(c: &mut Criterion) {
    // M ≪ N: a million-access sweep collapses to a handful of nodes.
    let t = build_summarized(1_000_000, 8);
    assert!(t.len() <= 8, "1M accesses → {} nodes", t.len());
    c.bench_function("build_1M_sweep_accesses", |b| {
        b.iter(|| build_summarized(100_000, 8).len());
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_compare, bench_query, summarization_effect
);
criterion_main!(benches);
