//! Offline-build shim for the `parking_lot` crate.
//!
//! This workspace is built in environments with no network access to a
//! registry, so external dependencies are replaced by minimal local shims
//! that implement exactly the API surface the workspace uses (see
//! DESIGN.md, "Dependency policy"). This one provides `Mutex` and
//! `Condvar` with `parking_lot` semantics — no lock poisoning, `lock()`
//! returns the guard directly, `Condvar::wait` takes `&mut MutexGuard` —
//! implemented over `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive without poisoning.
///
/// A thread that panics while holding the lock simply releases it; the
/// next `lock()` succeeds and sees whatever state the panicking thread
/// left behind (exactly `parking_lot`'s contract).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can move it
/// through `std::sync::Condvar::wait` (which consumes and returns the
/// guard) behind a `&mut` borrow. The option is `None` only transiently
/// inside `wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the `&mut self` receiver guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically releases the guarded lock and blocks until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a holder panicked");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
