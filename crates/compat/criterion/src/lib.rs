//! Offline-build shim for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! plain warmup + timed-batch mean (no bootstrap statistics, plots, or
//! baselines); results print one line per benchmark. See DESIGN.md,
//! "Dependency policy".

use std::fmt;
use std::time::{Duration, Instant};

/// Keeps a value (and its computation) out of the optimizer's reach.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units-processed-per-iteration annotation; turns mean times into
/// throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Labels a benchmark `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    /// (iterations, total elapsed) of the measured batch.
    measured: Option<(u64, Duration)>,
    sample_size: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then running a measured batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: one call, then size the batch so measurement stays fast
        // even for slow routines (the shim favors cheap CI runs over
        // statistical power).
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let target = Duration::from_millis(200);
        let per_iter = once.max(Duration::from_nanos(1));
        let iters = (target.as_nanos() / per_iter.as_nanos())
            .clamp(1, self.sample_size as u128 * 10) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((iters, start.elapsed()));
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the target number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.throughput, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.throughput, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: u64,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { measured: None, sample_size };
    f(&mut b);
    match b.measured {
        Some((iters, total)) => {
            let mean_ns = total.as_nanos() as f64 / iters as f64;
            let rate = throughput
                .map(|t| match t {
                    Throughput::Elements(n) => {
                        format!("  {:.1} Melem/s", n as f64 / mean_ns * 1e3)
                    }
                    Throughput::Bytes(n) => format!("  {:.1} MB/s", n as f64 / mean_ns * 1e3),
                })
                .unwrap_or_default();
            println!("bench {name:<48} {mean_ns:>12.1} ns/iter ({iters} iters){rate}");
        }
        None => println!("bench {name:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the listed groups. Accepts and ignores the
/// CLI arguments cargo-bench passes (`--bench`, filters).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test --benches` pass harness flags;
            // the shim runs everything unconditionally.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("param", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn driver_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(5);
        quick(&mut c);
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = quick
    );

    #[test]
    fn grouped_runner_runs() {
        benches();
    }
}
