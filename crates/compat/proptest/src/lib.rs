//! Offline-build shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!`/`prop_assert*!`/`prop_oneof!` macros, the
//! [`Strategy`] trait with `prop_map`/`prop_filter`, `any::<T>()` for the
//! primitive types the tests draw, integer/float range strategies, tuple
//! strategies, `prop::collection::vec`, `prop::option::{of, weighted}`,
//! and `prop::sample::{select, Index}`. Unlike real proptest there is no
//! shrinking: a failing case reports its case number and seed so it can
//! be re-run, which is enough for this workspace's deterministic suites.
//! See DESIGN.md, "Dependency policy".

use std::fmt;
use std::marker::PhantomData;

/// Deterministic generator driving test-case production (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case number `case` of a test run; every run of the
    /// suite replays the same cases.
    pub fn for_case(case: u32) -> Self {
        TestRng { state: 0x5DEECE66D ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Configuration accepted by `proptest! { #![proptest_config(..)] .. }`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core is [`Strategy::gen_value`]; the combinators require
/// `Self: Sized` so `Box<dyn Strategy<Value = V>>` works for
/// `prop_oneof!`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `pred` holds, retrying generation.
    fn prop_filter<F>(self, reason: impl fmt::Display, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.to_string(), pred }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive candidates", self.reason);
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_value(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategies!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! range_strategies_128 {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Two's-complement wrapping arithmetic handles signed and
                // unsigned alike, including full-width spans.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start.wrapping_add((r % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let draw = if span == 0 { r } else { r % span };
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

range_strategies_128!(i128, u128);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies: a `&str` literal is treated as a regex in real
/// proptest. The shim ignores the pattern and generates short strings
/// mixing ASCII, separators, and non-ASCII code points — the workspace
/// only uses `"\\PC*"` ("any chars") to fuzz parsers for
/// must-not-panic properties.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let len = rng.below(48) as usize;
        (0..len)
            .map(|_| match rng.below(8) {
                0 => char::from(rng.below(26) as u8 + b'a'),
                1 => char::from(rng.below(10) as u8 + b'0'),
                2 => ['\t', ' ', '-', ',', ':', '_', '#', '|'][rng.below(8) as usize],
                3 => char::from_u32(0x00A1 + rng.below(0x200) as u32).unwrap_or('¿'),
                _ => char::from(rng.below(0x5F) as u8 + 0x20),
            })
            .collect()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Length specifications accepted by [`vec`].
        pub trait SizeRange {
            /// Draws a length.
            fn draw(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for std::ops::Range<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn draw(&self, rng: &mut TestRng) -> usize {
                self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
            }
        }

        impl SizeRange for usize {
            fn draw(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        /// Strategy for `Vec`s of `element` values with a length drawn
        /// from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.draw(rng);
                (0..len).map(|_| self.element.gen_value(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `Some` with probability `prob`, else `None`.
        pub fn weighted<S: Strategy>(prob: f64, inner: S) -> OptionStrategy<S> {
            OptionStrategy { prob, inner }
        }

        /// `Some` three times out of four (proptest's default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            weighted(0.75, inner)
        }

        /// See [`weighted`] / [`of`].
        pub struct OptionStrategy<S> {
            prob: f64,
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.unit_f64() < self.prob {
                    Some(self.inner.gen_value(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Arbitrary, Strategy, TestRng};

        /// Uniform choice from a fixed list.
        pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
            assert!(!choices.is_empty(), "select from empty list");
            Select { choices }
        }

        /// See [`select`].
        pub struct Select<T> {
            choices: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn gen_value(&self, rng: &mut TestRng) -> T {
                self.choices[rng.below(self.choices.len() as u64) as usize].clone()
            }
        }

        /// An index into a collection whose length is only known at use
        /// time (`idx.index(len)`).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Projects onto `[0, len)`; `len` must be nonzero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests. Each function body runs `cases` times with
/// freshly generated inputs; a `prop_assert*!` failure panics with the
/// case number (there is no shrinking in the shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body Ok(()) })();
                if let Err(msg) = result {
                    panic!("proptest {} case {}/{}: {}",
                           stringify!($name), case + 1, cfg.cases, msg);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fails the
/// current case without aborting the whole process stack trace.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(a, b)` — fails the current case if `a != b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// `prop_assert_ne!(a, b)` — fails the current case if `a == b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let left = $a;
        let right = $b;
        if left == right {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        let s = (1u8..=16, 0u32..6, 0.0f64..1.0);
        for _ in 0..1000 {
            let (a, b, c) = s.gen_value(&mut rng);
            assert!((1..=16).contains(&a));
            assert!(b < 6);
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::for_case(3);
        let s = prop::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::for_case(1);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn filter_and_map_compose() {
        let mut rng = crate::TestRng::for_case(2);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0).prop_map(|v| v + 1);
        for _ in 0..200 {
            assert_eq!(s.gen_value(&mut rng) % 2, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn macro_form_runs(v in prop::collection::vec(0u64..50, 0..10), flag in any::<bool>()) {
            prop_assert!(v.iter().all(|&x| x < 50));
            let _ = flag;
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #[test]
        fn string_regex_stub_generates(s in "\\PC*") {
            prop_assert!(s.chars().count() <= 64);
        }
    }
}
