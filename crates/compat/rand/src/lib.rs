//! Offline-build shim for the `rand` crate.
//!
//! Implements the subset this workspace uses — `rngs::SmallRng`, the
//! `Rng` and `SeedableRng` traits, and integer `gen_range` — on top of a
//! splitmix64-seeded xoshiro256** generator. Not cryptographic; the
//! workspace only uses it for seeded simulation policies and test-input
//! generation. See DESIGN.md, "Dependency policy".

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples uniformly from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Object-safe core of a generator: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns a random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 mantissa bits of uniformity are plenty here.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(r)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let r = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(r)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**), matching
    /// the role of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u8..=16);
            assert!((1..=16).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same =
            (0..64).filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32)).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
    }
}
