//! Offline-build shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — multi-producer *multi-consumer*
//! channels with optional capacity bounds and blocking backpressure —
//! which is the only part of crossbeam this workspace uses (the async
//! flush path in `sword-runtime` and the staged analysis pipeline in
//! `sword-offline`). Implemented over a `Mutex<VecDeque>` plus two
//! condition variables; see DESIGN.md, "Dependency policy".

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]; carries the unsent message
    /// back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity; sending would block.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` for unbounded channels.
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel; clonable for fan-in.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel; clonable for fan-out (each
    /// message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel: `send` blocks while `cap` messages
    /// are in flight, giving the producer side backpressure.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails
        /// only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = shared.not_full.wait(queue).unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails with [`TrySendError::Full`] instead of
        /// blocking when a bounded channel is at capacity. Lets callers
        /// observe backpressure (count it, then fall back to `send`).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            if shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = shared.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives. Fails only when
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = shared.not_empty.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over messages; ends when the channel drains
        /// after the last sender drops.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake receivers so they observe disconnection.
                let _guard = self.shared.lock();
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake blocked senders so sends fail fast.
                let _guard = self.shared.lock();
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Borrowing blocking iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator (`for msg in receiver`).
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn unbounded_fan_in() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for j in 0..100 {
                            tx.send(i * 100 + j).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut got: Vec<i32> = rx.into_iter().collect();
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got, (0..400).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_backpressure_blocks_then_drains() {
            let (tx, rx) = bounded(2);
            let producer = thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            thread::sleep(Duration::from_millis(10));
            let got: Vec<i32> = rx.iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn mpmc_each_message_delivered_once() {
            let (tx, rx) = bounded(4);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || rx.iter().count())
                })
                .collect();
            drop(rx);
            for i in 0..300 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 300);
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn try_recv_reports_state() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
