//! `sword` — command-line front end for the SWORD reproduction.
//!
//! ```text
//! sword run <workload> [--threads N] [--size S] [--session DIR] [--live]
//!     Execute a workload under the SWORD collector. `--obs` journals
//!     spans/metrics to `<session>/obs.jsonl`; `--stats` prints the
//!     metrics-registry snapshot (flush counters, pool gauges, memory).
//!     `--listen ADDR` additionally serves the live registry over HTTP
//!     (`/metrics`, `/status`, `/races`, `/healthz`, `/events`) for the
//!     whole command; see `sword top`.
//! sword analyze <session-dir> [--workers N] [--ilp] [--stats] [--obs]
//!     Offline race analysis of a collected session. `--stats` adds the
//!     stage table and, when recorded, the run's flush-path counters;
//!     `--obs` appends pipeline spans to the session's journal;
//!     `--listen ADDR` serves the analyzer's registry while it runs.
//! sword watch <session-dir> [--interval-ms N] [--timeout-secs N] [--obs]
//!     Incrementally analyze an in-progress session, reporting races as
//!     their barrier intervals are published. `--listen ADDR` serves
//!     races-so-far and poll progress over HTTP alongside the registry.
//! sword top <addr|session-dir> [--iters N] [--interval-ms N]
//!     Polling terminal view of a telemetry endpoint started with
//!     `--listen` (queue depths, latency quantiles, races so far,
//!     memory vs the paper bound) — or of a session directory's
//!     persisted `metrics.prom`/`live.meta` when no exporter is up.
//! sword trace export <session-dir> [--format chrome] [--out FILE]
//!     Convert the session's observability journal to a Chrome
//!     `trace_event` file (chrome://tracing, ui.perfetto.dev).
//! sword report <session-dir> [--top N] [--html [FILE]]
//!     Consolidated run report: flush path, pipeline stages, memory
//!     peaks vs the paper's 3.3 MB/thread bound, per-site compare
//!     attribution (hot sites), hottest spans, and the race table.
//!     `--html` writes a single self-contained dashboard instead.
//! sword explain <session-dir> <race-id>
//!     Full evidence chain for one reported race: the two accesses with
//!     their barrier-interval coordinates, the offset-span label
//!     derivation of why the intervals are concurrent, the solver's
//!     concrete index witness, and the byte ranges in the per-thread
//!     logs. Race ids are the positions in `sword analyze` output.
//! sword check <workload> [--threads N] [--size S]
//!     run + analyze in one step, printing races with source locations.
//! sword compare <workload> [--threads N] [--size S]
//!     Run baseline, ARCHER (both configs), and SWORD; print a summary.
//! sword meta <session-dir>
//!     Pretty-print a session's Table-I metadata and region table.
//! sword fuzz [--seed N] [--iters N] [--team N] [--fault-inject]
//!            [--tasking] [--corpus DIR]
//!     Differential-testing campaign: generated programs through SWORD
//!     (batch + live), ARCHER, and the ground-truth oracle; failures are
//!     shrunk to minimal reproducers. Nonzero exit on any divergence.
//!     `--tasking` reweights generation toward tasks, depend chains,
//!     taskwait/taskgroup, and dynamic/guided/ordered loops.
//! sword list
//!     List available workloads with their ground truth.
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use archer_sim::{ArcherConfig, ArcherTool};
use sword_fuzz_gen::{run_fuzz, FuzzOptions};
use sword_metrics::{format_bytes, Stopwatch, Table};
use sword_obs::json::Value;
use sword_obs::{
    render_html, ExportFormat, HtmlInput, HtmlRace, JournalSink, Layer, Obs, ReportInput, SiteTable,
};
use sword_obs_http::{http_get, JsonFn, ServerConfig, TelemetryHandles, TelemetryServer};
use sword_offline::{analyze, AnalysisConfig, FunnelConfig, LiveAnalyzer, SolverChoice};
use sword_ompsim::{OmpSim, SimConfig};
use sword_runtime::{run_collected, SwordConfig};
use sword_trace::{PcTable, ReadMode, SessionDir};
use sword_workloads::{all_workloads, find_workload, RunConfig, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sword list
  sword run <workload> [--threads N] [--size S] [--session DIR] [--live]
                        [--stats] [--obs] [--listen ADDR]
  sword analyze <session-dir> [--workers N] [--ilp] [--json] [--stats]
                               [--obs] [--listen ADDR] [--region id,...]
                               [--suppress pat,...]
                               [--read-mode mapped|buffered]
                               [--no-verdict-cache]
                               [--solver-tiers all|none|gcd,prescreen,bbox,batch]
  sword watch <session-dir> [--interval-ms N] [--timeout-secs N] [--json]
                             [--stats] [--obs] [--listen ADDR] [--ilp]
                             [--region id,...]
                             [--suppress pat,...]
                             [--read-mode mapped|buffered]
                             [--no-verdict-cache]
                             [--solver-tiers all|none|gcd,prescreen,bbox,batch]
  sword top <addr|session-dir> [--iters N] [--interval-ms N]
  sword trace export <session-dir> [--format chrome] [--out FILE]
  sword report <session-dir> [--top N] [--html [FILE]]
  sword explain <session-dir> <race-id> [--ilp] [--workers N]
  sword check <workload> [--threads N] [--size S]
  sword compare <workload> [--threads N] [--size S]
  sword meta <session-dir>
  sword fuzz [--seed N] [--iters N] [--team N] [--fault-inject]
             [--tasking] [--corpus DIR] [--obs]";

/// Minimal flag parser: `--key value` pairs after positional args.
struct Flags {
    map: BTreeMap<String, String>,
    bools: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = BTreeMap::new();
        let mut bools = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}`"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    map.insert(key.to_string(), it.next().unwrap().clone());
                }
                _ => bools.push(key.to_string()),
            }
        }
        Ok(Flags { map, bools })
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.bools.iter().any(|b| b == key)
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "meta" => cmd_meta(&args[1..]),
        "fuzz" => cmd_fuzz(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn workload_arg(args: &[String]) -> Result<(Box<dyn Workload>, RunConfig, Flags), String> {
    let Some(name) = args.first() else {
        return Err("missing workload name (try `sword list`)".into());
    };
    let w = find_workload(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let flags = Flags::parse(&args[1..])?;
    let cfg =
        RunConfig { threads: flags.get_usize("threads", 4)?, size: flags.get_u64("size", 0)? };
    Ok((w, cfg, flags))
}

fn cmd_list() -> Result<(), String> {
    let mut table =
        Table::new("available workloads", &["name", "suite", "documented", "sword races", "notes"]);
    for w in all_workloads() {
        let s = w.spec();
        table.row(&[
            s.name.to_string(),
            format!("{:?}", s.suite),
            s.documented_races.to_string(),
            s.sword_races.to_string(),
            s.notes.chars().take(60).collect(),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// Renders the metrics-registry snapshot as a table (the `--stats` view).
fn render_registry(obs: &Obs) -> String {
    let mut table = Table::new("metrics registry", &["metric", "value"]);
    for (name, value) in obs.registry.snapshot() {
        let cell = if value.fract() == 0.0 && value.abs() < 1e15 {
            format!("{}", value as i64)
        } else {
            format!("{value:.3}")
        };
        table.row(&[name, cell]);
    }
    table.render()
}

/// Appends the drained journal (plus a final metrics snapshot) to the
/// session's `obs.jsonl`, creating it when the collection ran without
/// `--obs`.
fn append_journal(session: &SessionDir, obs: &Obs) -> Result<(), String> {
    obs.snapshot_to_journal();
    let path = session.obs_path();
    let mut sink =
        if path.exists() { JournalSink::append(&path) } else { JournalSink::create(&path) }
            .map_err(|e| e.to_string())?;
    let mut dropped = 0u64;
    sink.drain_from(&obs.journal, &mut dropped).map_err(|e| e.to_string())?;
    println!("observability journal: {}", path.display());
    Ok(())
}

/// Starts the embedded telemetry exporter when `--listen ADDR` was given.
/// The server reads the same live registry and journal the command is
/// writing; it serves until the command finishes and is shut down by the
/// caller (dropping the returned guard).
fn start_listener(
    flags: &Flags,
    handles: TelemetryHandles,
) -> Result<Option<TelemetryServer>, String> {
    let Some(addr) = flags.map.get("listen") else {
        return Ok(None);
    };
    let server = TelemetryServer::start(ServerConfig::bind(addr), handles)
        .map_err(|e| format!("--listen {addr}: {e}"))?;
    println!(
        "telemetry: http://{0}/status  (also /metrics /races /healthz /events; try `sword top {0}`)",
        server.local_addr()
    );
    Ok(Some(server))
}

/// A `/status` provider over a session directory: path plus the live
/// watermark protocol's generation/finished, refreshed per request.
fn session_status_provider(session: &SessionDir) -> JsonFn {
    let session = session.clone();
    Arc::new(move || {
        let mut fields =
            vec![("session".to_string(), Value::Str(session.path().display().to_string()))];
        if let Ok(Some(live)) = session.read_live() {
            fields.push(("generation".to_string(), Value::Num(live.generation as f64)));
            fields.push(("finished".to_string(), Value::Bool(live.finished)));
        }
        Value::Obj(fields)
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (w, cfg, flags) = workload_arg(args)?;
    let session: PathBuf = flags
        .map
        .get("session")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("sword-session"));
    let mut sword_cfg = SwordConfig::new(&session);
    if flags.has("live") {
        // Publish watermarked metadata while running, so a concurrent
        // `sword watch` can analyze the session as it grows.
        sword_cfg = sword_cfg.live();
    }
    // `--stats` reads the metrics registry, so it needs the obs handles
    // attached even when the journal itself was not asked for; the HTTP
    // exporter needs them for the same reason.
    let obs =
        (flags.has("obs") || flags.has("stats") || flags.map.contains_key("listen")).then(Obs::new);
    if let Some(o) = &obs {
        sword_cfg = sword_cfg.with_obs(o.clone());
    }
    let server = match &obs {
        Some(o) => start_listener(
            &flags,
            TelemetryHandles::new(o.clone())
                .with_status(session_status_provider(&SessionDir::new(&session))),
        )?,
        None => None,
    };
    let cli_journal = obs.as_ref().map(|o| o.journal.for_thread(Layer::Cli, "cli"));
    let sw = Stopwatch::start();
    let (_, stats) = run_collected(sword_cfg, SimConfig::default(), |sim| {
        // Scoped so the workload span closes (and is journaled) before
        // the collector finalizes and drains the rings to obs.jsonl.
        let _span =
            cli_journal.as_ref().map(|j| j.span("workload").arg("threads", cfg.threads as f64));
        w.execute(sim, &cfg);
    })
    .map_err(|e| e.to_string())?;
    println!("collected {} in {:.2}s", w.spec().name, sw.secs());
    println!("  session:           {}", session.display());
    println!("  threads:           {}", stats.threads);
    println!("  parallel regions:  {}", stats.regions);
    println!("  barrier intervals: {}", stats.barrier_intervals);
    println!("  events:            {}", stats.events);
    println!(
        "  log volume:        {} raw -> {} on disk ({:.1}x)",
        format_bytes(stats.raw_bytes),
        format_bytes(stats.compressed_bytes),
        stats.compression_ratio()
    );
    println!("  bounded tool mem:  {}", format_bytes(stats.tool_memory_bytes));
    if let Some(o) = &obs {
        if flags.has("stats") {
            println!("\n{}", render_registry(o));
        }
        if flags.has("obs") {
            // The collector's final drain ran at program end, before the
            // CLI workload span closed — append the leftover ring
            // contents (and a post-run snapshot) to the journal.
            append_journal(&SessionDir::new(&session), o)?;
            println!("next: sword trace export {0}  |  sword report {0}", session.display());
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    println!("\nnext: sword analyze {}", session.display());
    Ok(())
}

fn analysis_config(flags: &Flags) -> Result<AnalysisConfig, String> {
    let mut config = AnalysisConfig::default();
    config.workers = flags.get_usize("workers", config.workers)?;
    if flags.has("ilp") {
        config.solver = SolverChoice::Ilp;
    }
    if let Some(regions) = flags.map.get("region") {
        let parsed: Result<Vec<u64>, _> =
            regions.split(',').map(|r| r.trim().parse::<u64>()).collect();
        config.focus_regions =
            Some(parsed.map_err(|_| format!("--region expects ids, got `{regions}`"))?);
    }
    if let Some(patterns) = flags.map.get("suppress") {
        config.suppressions = patterns.split(',').map(|p| p.trim().to_string()).collect();
    }
    if let Some(mode) = flags.map.get("read-mode") {
        config.read_mode = ReadMode::parse(mode)
            .ok_or_else(|| format!("--read-mode expects mapped|buffered, got `{mode}`"))?;
    }
    if flags.has("no-verdict-cache") {
        config.verdict_cache = false;
    }
    if let Some(spec) = flags.map.get("solver-tiers") {
        config.funnel = FunnelConfig::parse(spec)?;
    }
    Ok(config)
}

/// Renders a race list as the `/races` endpoint's JSON: one object per
/// race with its id (the position in `sword analyze` output, matching
/// `sword explain`), title, occurrence count, and evidence chain.
fn races_json(races: &[sword_offline::Race], pcs: &PcTable) -> Vec<Value> {
    races
        .iter()
        .enumerate()
        .map(|(id, race)| {
            Value::Obj(vec![
                ("id".to_string(), Value::Num(id as f64)),
                ("title".to_string(), Value::Str(race.render(pcs))),
                ("occurrences".to_string(), Value::Num(race.occurrences as f64)),
                ("evidence".to_string(), Value::Str(race.render_evidence(pcs))),
            ])
        })
        .collect()
}

fn print_analysis(
    session: &SessionDir,
    config: &AnalysisConfig,
    json: bool,
    stats: bool,
) -> Result<sword_offline::AnalysisResult, String> {
    // `analyze` (not `analyze_loaded`) so the discover and load-meta
    // stages are timed too.
    let result = analyze(session, config).map_err(|e| e.to_string())?;
    let pcs = read_pcs(session)?;
    if json {
        print!("{}", sword_offline::render_json(&result, &pcs));
    } else {
        print!("{}", sword_offline::render_text(&result, &pcs));
    }
    if stats {
        println!("{}", result.stages.render());
        // The collector leaves its flush-path counters in the session
        // info file; older sessions without them just skip the table.
        if let Some(flush) =
            session.read_info().ok().and_then(|info| sword_metrics::FlushSnapshot::from_info(&info))
        {
            println!("{}", flush.render());
        }
        if let Some(o) = &config.obs {
            println!("{}", render_registry(o));
        }
    }
    Ok(result)
}

/// Loads the session's PC table (empty when the run never wrote one).
fn read_pcs(session: &SessionDir) -> Result<PcTable, String> {
    if session.pcs_path().exists() {
        let f = std::fs::File::open(session.pcs_path()).map_err(|e| e.to_string())?;
        PcTable::read_from(std::io::BufReader::new(f)).map_err(|e| e.to_string())
    } else {
        Ok(PcTable::new())
    }
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let Some(dir) = args.first() else {
        return Err("missing session directory".into());
    };
    let flags = Flags::parse(&args[1..])?;
    let mut config = analysis_config(&flags)?;
    let obs = (flags.has("obs") || flags.map.contains_key("listen")).then(Obs::new);
    // Per-site attribution rides along with the journal: the compare
    // stage's counters become labeled gauges in the registry, and the
    // final snapshot carries them into obs.jsonl for `sword report`.
    let sites = obs.as_ref().filter(|_| flags.has("obs")).map(|_| SiteTable::new());
    if let Some(o) = &obs {
        config = config.with_obs(o.clone());
    }
    if let Some(st) = &sites {
        config = config.with_site_attribution(st.clone());
    }
    let session = SessionDir::new(dir);
    // The /races list fills in when the analysis completes; until then
    // the endpoint serves an empty list while /metrics tracks progress.
    let shared_races: Arc<std::sync::Mutex<Vec<Value>>> = Arc::default();
    let server = match &obs {
        Some(o) => {
            let list = Arc::clone(&shared_races);
            start_listener(
                &flags,
                TelemetryHandles::new(o.clone())
                    .with_status(session_status_provider(&session))
                    .with_races(Arc::new(move || {
                        Value::Arr(list.lock().expect("races lock").clone())
                    })),
            )?
        }
        None => None,
    };
    let result = print_analysis(&session, &config, flags.has("json"), flags.has("stats"))?;
    if server.is_some() {
        let pcs = read_pcs(&session)?;
        *shared_races.lock().expect("races lock") = races_json(&result.races, &pcs);
    }
    if let Some(o) = &obs {
        if let Some(st) = &sites {
            let pcs = read_pcs(&session)?;
            st.publish(&o.registry, |pc| pcs.display(pc));
        }
        if flags.has("obs") {
            append_journal(&session, o)?;
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    Ok(())
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let Some(dir) = args.first() else {
        return Err("missing session directory".into());
    };
    let flags = Flags::parse(&args[1..])?;
    let mut config = analysis_config(&flags)?;
    let obs = (flags.has("obs") || flags.map.contains_key("listen")).then(Obs::new);
    let sites = obs.as_ref().filter(|_| flags.has("obs")).map(|_| SiteTable::new());
    if let Some(o) = &obs {
        config = config.with_obs(o.clone());
    }
    if let Some(st) = &sites {
        config = config.with_site_attribution(st.clone());
    }
    let json = flags.has("json");
    let show_stats = flags.has("stats");
    let interval = std::time::Duration::from_millis(flags.get_u64("interval-ms", 200)?);
    let timeout_secs = flags.get_u64("timeout-secs", 0)?; // 0 = no timeout
    let session = SessionDir::new(dir);
    if !session.path().exists() {
        return Err(format!("no such session directory: {dir}"));
    }

    // Shared with the telemetry endpoints: poll progress for /status and
    // the races found so far for /races, refreshed after every poll.
    let shared_progress: Arc<std::sync::Mutex<(u64, u64)>> = Arc::default(); // (polls, races)
    let shared_races: Arc<std::sync::Mutex<Vec<Value>>> = Arc::default();
    let server = match &obs {
        Some(o) => {
            let base = session_status_provider(&session);
            let progress = Arc::clone(&shared_progress);
            let list = Arc::clone(&shared_races);
            start_listener(
                &flags,
                TelemetryHandles::new(o.clone())
                    .with_status(Arc::new(move || {
                        let (polls, races) = *progress.lock().expect("progress lock");
                        let mut fields = match base() {
                            Value::Obj(fields) => fields,
                            other => vec![("session".to_string(), other)],
                        };
                        fields.push(("polls".to_string(), Value::Num(polls as f64)));
                        fields.push(("races".to_string(), Value::Num(races as f64)));
                        Value::Obj(fields)
                    }))
                    .with_races(Arc::new(move || {
                        Value::Arr(list.lock().expect("races lock").clone())
                    })),
            )?
        }
        None => None,
    };

    let mut live = LiveAnalyzer::new(&session, &config);
    let sw = Stopwatch::start();
    let mut polls = 0u64;
    let timed_out = loop {
        let delta = live.poll().map_err(|e| e.to_string())?;
        polls += 1;
        if server.is_some() {
            *shared_progress.lock().expect("progress lock") = (polls, delta.total_races as u64);
            if !delta.new_races.is_empty() {
                let mut list = shared_races.lock().expect("races lock");
                for race in &delta.new_races {
                    let id = list.len();
                    list.push(Value::Obj(vec![
                        ("id".to_string(), Value::Num(id as f64)),
                        ("title".to_string(), Value::Str(race.render(live.pcs()))),
                        ("occurrences".to_string(), Value::Num(race.occurrences as f64)),
                        ("evidence".to_string(), Value::Str(race.render_evidence(live.pcs()))),
                    ]));
                }
            }
        }
        if json {
            println!(
                "{{\"poll\": {}, \"generation\": {}, \"new_intervals\": {}, \
                 \"new_regions\": {}, \"tree_pairs\": {}, \"new_races\": {}, \
                 \"total_races\": {}, \"finished\": {}}}",
                polls,
                delta.generation.map_or("null".into(), |g| g.to_string()),
                delta.new_intervals,
                delta.new_regions,
                delta.tree_pairs,
                delta.new_races.len(),
                delta.total_races,
                delta.finished
            );
        } else if delta.new_intervals > 0 || delta.new_regions > 0 || delta.finished {
            println!(
                "[watch {:6.1}s] +{} intervals, {} tree pairs, {} race(s) so far{}",
                sw.secs(),
                delta.new_intervals,
                delta.tree_pairs,
                delta.total_races,
                if delta.finished { " — session finished" } else { "" }
            );
            for race in &delta.new_races {
                println!("  NEW {}", race.render(live.pcs()));
            }
        }
        if delta.finished {
            break false;
        }
        if timeout_secs > 0 && sw.secs() >= timeout_secs as f64 {
            break true;
        }
        std::thread::sleep(interval);
    };

    if timed_out && !json {
        println!(
            "[watch] timeout after {:.1}s; session still in flight — partial results:",
            sw.secs()
        );
    }
    let result = live.into_result().map_err(|e| e.to_string())?;
    let pcs = read_pcs(&session)?;
    if let (Some(o), Some(st)) = (&obs, &sites) {
        st.publish(&o.registry, |pc| pcs.display(pc));
    }
    if json {
        print!("{}", sword_offline::render_json(&result, &pcs));
    } else {
        print!("{}", sword_offline::render_text(&result, &pcs));
    }
    if show_stats {
        println!("{}", result.stages.render());
        if let Some(o) = &obs {
            println!("{}", render_registry(o));
        }
    }
    if let Some(o) = &obs {
        if flags.has("obs") {
            append_journal(&session, o)?;
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    Ok(())
}

/// One rendered `sword top` frame plus whether the target reported a
/// finished session (which ends an unbounded polling loop).
fn top_frame_http(addr: &str) -> Result<(String, bool), String> {
    let body = http_get(addr, "/status", std::time::Duration::from_secs(5))
        .map_err(|e| format!("GET http://{addr}/status: {e}"))?;
    let doc = sword_obs::json::parse(&body).map_err(|e| format!("bad /status JSON: {e}"))?;
    let mut out = String::new();
    let field = |key: &str| doc.get(key).map(render_json_scalar);
    out.push_str(&format!("sword top — http://{addr}\n"));
    for key in ["session", "generation", "finished", "races", "polls", "uptime_us", "sse_clients"] {
        if let Some(v) = field(key) {
            out.push_str(&format!("  {key:<12} {v}\n"));
        }
    }
    if let Some(dropped) = doc.get("journal_dropped_events").and_then(Value::as_u64) {
        if dropped > 0 {
            out.push_str(&format!("  WARNING: journal dropped {dropped} events\n"));
        }
    }
    if let Some(queues) = doc.get("queues").and_then(Value::as_obj) {
        if !queues.is_empty() {
            let mut t = Table::new("queue depths", &["stage", "depth"]);
            for (name, v) in queues {
                t.row(&[name.clone(), render_json_scalar(v)]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
    }
    if let Some(hists) = doc.get("histograms").and_then(Value::as_arr) {
        if !hists.is_empty() {
            let mut t =
                Table::new("latency quantiles", &["histogram", "count", "p50", "p95", "p99"]);
            for row in hists {
                t.row(&[
                    row.get("name").and_then(Value::as_str).unwrap_or("?").to_string(),
                    row.get("count").map(render_json_scalar).unwrap_or_default(),
                    row.get("p50").map(render_json_scalar).unwrap_or_default(),
                    row.get("p95").map(render_json_scalar).unwrap_or_default(),
                    row.get("p99").map(render_json_scalar).unwrap_or_default(),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
    }
    let finished = doc.get("finished") == Some(&Value::Bool(true));
    Ok((out, finished))
}

/// Renders a JSON scalar the way the tables expect (integers unpadded).
fn render_json_scalar(v: &Value) -> String {
    match v {
        Value::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => format!("{}", *n as i64),
        Value::Str(s) => s.clone(),
        other => other.render(),
    }
}

/// `sword top` against a session directory: renders the persisted
/// `live.meta` status and `metrics.prom` exposition instead of a live
/// exporter (useful post-run, or when the run was started without
/// `--listen`).
fn top_frame_session(session: &SessionDir) -> Result<(String, bool), String> {
    let mut out = String::new();
    out.push_str(&format!("sword top — {}\n", session.path().display()));
    let mut finished = false;
    if let Ok(Some(live)) = session.read_live() {
        finished = live.finished;
        out.push_str(&format!("  generation   {}\n", live.generation));
        out.push_str(&format!("  finished     {}\n", live.finished));
    }
    let prom_path = session.metrics_path();
    if !prom_path.exists() {
        out.push_str("  (no metrics.prom yet — run with --obs, or poll a --listen address)\n");
        return Ok((out, finished));
    }
    let prom = std::fs::read_to_string(&prom_path).map_err(|e| e.to_string())?;
    // Flatten the exposition: plain `name value` samples, with summary
    // quantile labels folded into `_p50`/`_p95`/`_p99` suffixes so the
    // shared histogram-row view applies.
    let mut flat: Vec<(String, f64)> = Vec::new();
    for line in prom.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else { continue };
        let Ok(value) = value.parse::<f64>() else { continue };
        let name = match name.split_once('{') {
            None => name.to_string(),
            Some((base, labels)) => match labels.trim_end_matches('}') {
                "quantile=\"0.5\"" => format!("{base}_p50"),
                "quantile=\"0.95\"" => format!("{base}_p95"),
                "quantile=\"0.99\"" => format!("{base}_p99"),
                _ => continue,
            },
        };
        flat.push((name, value));
    }
    let mut queues = Table::new("queue depths", &["stage", "depth"]);
    let mut have_queues = false;
    for (name, value) in &flat {
        if name.ends_with("_queue_depth") {
            queues.row(&[name.clone(), format!("{}", *value as i64)]);
            have_queues = true;
        }
    }
    if have_queues {
        out.push_str(&queues.render());
        out.push('\n');
    }
    let rows = sword_obs::histogram_rows(&flat);
    if !rows.is_empty() {
        let mut t = Table::new("latency quantiles", &["histogram", "count", "p50", "p95", "p99"]);
        for r in &rows {
            t.row(&[
                r.name.clone(),
                format!("{}", r.count),
                format!("{}", r.p50),
                format!("{}", r.p95),
                format!("{}", r.p99),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    Ok((out, finished))
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let Some(target) = args.first() else {
        return Err("missing telemetry address or session directory".into());
    };
    let flags = Flags::parse(&args[1..])?;
    // 0 iterations = poll until the session reports finished.
    let iters = flags.get_u64("iters", 0)?;
    let interval = std::time::Duration::from_millis(flags.get_u64("interval-ms", 1000)?);
    let http = target.parse::<std::net::SocketAddr>().is_ok();
    let session = (!http).then(|| SessionDir::new(target));
    if let Some(s) = &session {
        if !s.path().exists() {
            return Err(format!(
                "`{target}` is neither a host:port address nor a session directory"
            ));
        }
    }
    let mut n = 0u64;
    loop {
        n += 1;
        let (frame, finished) = match &session {
            None => top_frame_http(target)?,
            Some(s) => top_frame_session(s)?,
        };
        print!("{frame}");
        if (iters > 0 && n >= iters) || (iters == 0 && finished) {
            break;
        }
        std::thread::sleep(interval);
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err("missing trace subcommand (try `sword trace export <session-dir>`)".into());
    };
    if sub != "export" {
        return Err(format!("unknown trace subcommand `{sub}` (supported: export)"));
    }
    let Some(dir) = args.get(1) else {
        return Err("missing session directory".into());
    };
    let flags = Flags::parse(&args[2..])?;
    let format = flags.map.get("format").map(String::as_str).unwrap_or("chrome");
    let ExportFormat::Chrome = ExportFormat::from_name(format)
        .ok_or_else(|| format!("unknown trace format `{format}` (supported: chrome)"))?;
    let session = SessionDir::new(dir);
    let journal_path = session.obs_path();
    if !journal_path.exists() {
        return Err(format!(
            "no observability journal at {} — collect with `sword run --obs` or add one with \
             `sword analyze --obs`",
            journal_path.display()
        ));
    }
    let read = sword_obs::read_journal(&journal_path).map_err(|e| e.to_string())?;
    if read.truncated_tail {
        eprintln!("warning: torn final journal line (run ended abruptly); exporting intact prefix");
    }
    let out = flags
        .map
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| session.path().join("trace.json"));
    sword_obs::write_chrome_trace(&out, &read.events).map_err(|e| e.to_string())?;
    println!("exported {} journal event(s) to {}", read.events.len(), out.display());
    println!("open in chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let Some(dir) = args.first() else {
        return Err("missing session directory".into());
    };
    let flags = Flags::parse(&args[1..])?;
    let top_n = flags.get_usize("top", 10)?;
    let html = flags.has("html") || flags.map.contains_key("html");
    let session = SessionDir::new(dir);
    let journal_path = session.obs_path();
    // A session without a journal still gets the skeleton (session info
    // plus the race table) — only the stage/memory/hot-site sections
    // need journaled events.
    let (events, truncated_tail) = if journal_path.exists() {
        let read = sword_obs::read_journal(&journal_path).map_err(|e| e.to_string())?;
        (read.events, read.truncated_tail)
    } else {
        eprintln!(
            "warning: no observability journal at {} — stage, memory, and hot-site sections \
             will be empty; collect with `sword run --obs` or add one with `sword analyze --obs`",
            journal_path.display()
        );
        (Vec::new(), false)
    };
    let info = session.read_info().unwrap_or_default();
    // The race table and evidence cards come from a fresh sequential
    // analysis of the session's logs (cheap relative to collection, and
    // deterministic — race ids match `sword explain`).
    let race_config = AnalysisConfig::sequential();
    let (analysis, pcs) = match analyze(&session, &race_config) {
        Ok(result) => (Some(result), read_pcs(&session)?),
        Err(e) => {
            eprintln!("warning: race analysis unavailable ({e}); omitting the race section");
            (None, PcTable::new())
        }
    };
    let report = ReportInput { events, info, truncated_tail, top_n };
    if html {
        let races: Vec<HtmlRace> = analysis
            .as_ref()
            .map(|result| {
                result
                    .races
                    .iter()
                    .enumerate()
                    .map(|(id, race)| HtmlRace {
                        id,
                        title: race.render(&pcs),
                        occurrences: race.occurrences,
                        detail: race.render_evidence(&pcs),
                    })
                    .collect()
            })
            .unwrap_or_default();
        let input = HtmlInput {
            title: format!("SWORD session report — {}", session.path().display()),
            report,
            races,
        };
        let out = flags
            .map
            .get("html")
            .map(PathBuf::from)
            .unwrap_or_else(|| session.path().join("report.html"));
        std::fs::write(&out, render_html(&input)).map_err(|e| e.to_string())?;
        println!("wrote HTML dashboard to {}", out.display());
        return Ok(());
    }
    print!("{}", sword_obs::render_report(&report));
    if let Some(result) = &analysis {
        if result.races.is_empty() {
            println!("data races: none detected");
        } else {
            println!("data races ({}):", result.races.len());
            for (id, race) in result.races.iter().enumerate() {
                println!("  #{id}  {}", race.render(&pcs));
            }
            println!(
                "  (full evidence chains: sword explain {} <race-id>)",
                session.path().display()
            );
        }
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let Some(dir) = args.first() else {
        return Err("missing session directory".into());
    };
    let Some(id_arg) = args.get(1) else {
        return Err("missing race id (ids are the positions in `sword analyze` output)".into());
    };
    let id: usize =
        id_arg.parse().map_err(|_| format!("race id must be a number, got `{id_arg}`"))?;
    let flags = Flags::parse(&args[2..])?;
    let config = analysis_config(&flags)?;
    let session = SessionDir::new(dir);
    let result = analyze(&session, &config).map_err(|e| e.to_string())?;
    let pcs = read_pcs(&session)?;
    match sword_offline::render_explain(&result, &pcs, id) {
        Some(text) => {
            print!("{text}");
            Ok(())
        }
        None => Err(format!(
            "race id {id} out of range — the analysis found {} race(s)",
            result.races.len()
        )),
    }
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let (w, cfg, flags) = workload_arg(args)?;
    let session = std::env::temp_dir().join(format!("sword-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session);
    run_collected(SwordConfig::new(&session), SimConfig::default(), |sim| {
        w.execute(sim, &cfg);
    })
    .map_err(|e| e.to_string())?;
    let config = analysis_config(&flags)?;
    let found =
        print_analysis(&SessionDir::new(&session), &config, flags.has("json"), flags.has("stats"))?
            .races
            .len();
    let _ = std::fs::remove_dir_all(&session);
    let expected = w.spec().sword_races;
    println!(
        "\nground truth for {}: {} race(s) — {}",
        w.spec().name,
        expected,
        if found == expected { "MATCH" } else { "MISMATCH" }
    );
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let (w, cfg, _flags) = workload_arg(args)?;
    let name = w.spec().name;

    let sim = OmpSim::new();
    let sw = Stopwatch::start();
    w.execute(&sim, &cfg);
    let base_secs = sw.secs();
    let footprint = sim.peak_footprint();

    let mut table =
        Table::new(format!("{name} under each tool"), &["tool", "time", "tool memory", "races"]);
    table.row(&["baseline".into(), format!("{base_secs:.3}s"), "-".into(), "-".into()]);

    for (label, flush) in [("archer", false), ("archer-low", true)] {
        let tool =
            Arc::new(ArcherTool::new(ArcherConfig { flush_shadow: flush, ..Default::default() }));
        let sim = OmpSim::with_tool(tool.clone());
        tool.attach_baseline_source(sim.footprint_handle());
        let sw = Stopwatch::start();
        w.execute(&sim, &cfg);
        let stats = tool.stats();
        table.row(&[
            label.into(),
            format!("{:.3}s", sw.secs()),
            format_bytes(stats.modeled_total_bytes()),
            tool.races().len().to_string(),
        ]);
    }

    let session = std::env::temp_dir().join(format!("sword-cmp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&session);
    let sw = Stopwatch::start();
    let (_, stats) = run_collected(SwordConfig::new(&session), SimConfig::default(), |sim| {
        w.execute(sim, &cfg);
    })
    .map_err(|e| e.to_string())?;
    let da = sw.secs();
    let result = analyze(&SessionDir::new(&session), &AnalysisConfig::default())
        .map_err(|e| e.to_string())?;
    let _ = std::fs::remove_dir_all(&session);
    table.row(&[
        "sword".into(),
        format!("{:.3}s DA + {:.3}s OA", da, result.stats.wall_secs),
        format_bytes(stats.tool_memory_bytes),
        result.races.len().to_string(),
    ]);
    println!("application footprint: {}", format_bytes(footprint));
    println!("{}", table.render());
    Ok(())
}

fn cmd_meta(args: &[String]) -> Result<(), String> {
    let Some(dir) = args.first() else {
        return Err("missing session directory".into());
    };
    let session = SessionDir::new(dir);
    let loaded = sword_offline::LoadedSession::load(&session).map_err(|e| e.to_string())?;
    let mut regions = Table::new("regions.meta", &["pid", "ppid", "level", "span", "fork label"]);
    let mut sorted: Vec<_> = loaded.regions.values().collect();
    sorted.sort_by_key(|r| r.pid);
    for r in sorted {
        regions.row(&[
            r.pid.to_string(),
            r.ppid.map_or("-".into(), |p| p.to_string()),
            r.level.to_string(),
            r.span.to_string(),
            format!("{}", r.fork_label()),
        ]);
    }
    println!("{}", regions.render());
    for (tid, rows) in &loaded.threads {
        let mut t = Table::new(
            format!("thread_{tid}.meta (Table I)"),
            &["pid", "ppid", "bid", "offset", "span", "level", "data_begin", "size"],
        );
        for r in rows {
            t.row(&[
                r.pid.to_string(),
                r.ppid.map_or("-".into(), |p| p.to_string()),
                r.bid.to_string(),
                r.offset.to_string(),
                r.span.to_string(),
                r.level.to_string(),
                r.data_begin.to_string(),
                r.size.to_string(),
            ]);
        }
        println!("{}", t.render());
    }
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let defaults = FuzzOptions::default();
    let opts = FuzzOptions {
        seed: flags.get_u64("seed", defaults.seed)?,
        iters: flags.get_u64("iters", defaults.iters)?,
        teams: match flags.map.get("team") {
            None => defaults.teams,
            Some(v) => {
                vec![v.parse().map_err(|_| format!("--team expects a number, got `{v}`"))?]
            }
        },
        fault_inject: flags.has("fault-inject"),
        tasking: flags.has("tasking"),
        corpus_dir: flags.map.get("corpus").map(PathBuf::from),
    };
    println!(
        "fuzzing: {} iterations from seed {}, teams {:?}{}{}",
        opts.iters,
        opts.seed,
        opts.teams,
        if opts.tasking { ", tasking profile" } else { "" },
        if opts.fault_inject { ", with fault injection" } else { "" }
    );
    let obs = flags.has("obs").then(Obs::new);
    let fuzz_journal = obs.as_ref().map(|o| o.journal.for_thread(Layer::Cli, "fuzz"));
    let campaign_start = fuzz_journal.as_ref().map(|j| j.now_us());
    let sw = Stopwatch::start();
    let every = (opts.iters / 10).max(25);
    let summary = run_fuzz(&opts, |i, so_far| {
        if (i + 1) % every == 0 {
            println!(
                "  [{:5}/{}] {} racy, {} oracle pairs, {} failure(s), {:.1}s",
                i + 1,
                opts.iters,
                so_far.programs_with_races,
                so_far.oracle_pairs,
                so_far.failures.len(),
                sw.secs()
            );
            if let Some(j) = &fuzz_journal {
                j.instant(
                    "fuzz-progress",
                    vec![
                        ("iter".to_string(), (i + 1) as f64),
                        ("failures".to_string(), so_far.failures.len() as f64),
                    ],
                );
            }
        }
    });
    println!("{}", summary.render());
    if let (Some(o), Some(j), Some(start)) = (&obs, &fuzz_journal, campaign_start) {
        let dur = j.now_us().saturating_sub(start);
        j.span_closed(
            "fuzz-campaign",
            start,
            dur,
            vec![
                ("iters".to_string(), opts.iters as f64),
                ("failures".to_string(), summary.failures.len() as f64),
            ],
        );
        // The fuzzer has no session directory; its journal goes to a
        // standalone file next to the corpus (or in the temp dir).
        let out_dir = opts.corpus_dir.clone().unwrap_or_else(std::env::temp_dir);
        std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
        let out = out_dir.join("fuzz-obs.jsonl");
        let mut sink = JournalSink::create(&out).map_err(|e| e.to_string())?;
        let mut dropped = 0u64;
        sink.drain_from(&o.journal, &mut dropped).map_err(|e| e.to_string())?;
        println!("observability journal: {}", out.display());
    }
    if summary.failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} detector divergence(s) — see reproducers above", summary.failures.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs_and_bools() {
        let f = Flags::parse(&s(&["--threads", "8", "--ilp", "--size", "100"])).unwrap();
        assert_eq!(f.get_usize("threads", 4).unwrap(), 8);
        assert_eq!(f.get_u64("size", 0).unwrap(), 100);
        assert!(f.has("ilp"));
        assert!(!f.has("json"));
        assert_eq!(f.get_usize("workers", 3).unwrap(), 3, "default when absent");
    }

    #[test]
    fn flags_reject_garbage() {
        assert!(Flags::parse(&s(&["positional"])).is_err());
        let f = Flags::parse(&s(&["--threads", "many"])).unwrap();
        assert!(f.get_usize("threads", 4).is_err());
    }

    #[test]
    fn dispatcher_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["check", "no-such-workload"])).is_err());
        assert!(run(&s(&["analyze"])).is_err());
        assert!(run(&s(&["watch"])).is_err());
        assert!(run(&s(&["watch", "/no/such/session-dir"])).is_err());
        assert!(run(&s(&["explain"])).is_err());
        assert!(run(&s(&["explain", "/tmp/whatever"])).is_err(), "missing race id");
        assert!(run(&s(&["explain", "/tmp/whatever", "zero"])).is_err(), "non-numeric id");
    }

    #[test]
    fn list_and_check_work_end_to_end() {
        run(&s(&["list"])).expect("list");
        // `check` runs collection + analysis on a tiny pinned kernel.
        run(&s(&["check", "plusplus-orig-yes", "--threads", "4"])).expect("check");
        run(&s(&["check", "c_pi", "--json"])).expect("check --json");
    }

    #[test]
    fn run_then_meta_then_analyze() {
        let session = std::env::temp_dir().join(format!("sword-cli-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&session);
        run(&s(&["run", "sections1-orig-yes", "--session", session.to_str().unwrap(), "--stats"]))
            .expect("run --stats");
        // The collector persisted its flush counters for `analyze --stats`.
        let info = SessionDir::new(&session).read_info().expect("info");
        assert!(sword_metrics::FlushSnapshot::from_info(&info).is_some());
        run(&s(&["meta", session.to_str().unwrap()])).expect("meta");
        run(&s(&["analyze", session.to_str().unwrap(), "--workers", "1"])).expect("analyze");
        run(&s(&["analyze", session.to_str().unwrap(), "--json"])).expect("analyze --json");
        run(&s(&["analyze", session.to_str().unwrap(), "--stats"])).expect("analyze --stats");
        run(&s(&["analyze", session.to_str().unwrap(), "--read-mode", "buffered"]))
            .expect("analyze --read-mode buffered");
        run(&s(&["analyze", session.to_str().unwrap(), "--no-verdict-cache"]))
            .expect("analyze --no-verdict-cache");
        run(&s(&["analyze", session.to_str().unwrap(), "--solver-tiers", "none"]))
            .expect("analyze --solver-tiers none");
        run(&s(&["analyze", session.to_str().unwrap(), "--solver-tiers", "gcd,batch"]))
            .expect("analyze --solver-tiers gcd,batch");
        assert!(
            run(&s(&["analyze", session.to_str().unwrap(), "--read-mode", "weird"])).is_err(),
            "unknown read mode is rejected"
        );
        assert!(
            run(&s(&["analyze", session.to_str().unwrap(), "--solver-tiers", "warp"])).is_err(),
            "unknown solver tier is rejected"
        );
        std::fs::remove_dir_all(&session).unwrap();
    }

    #[test]
    fn fuzz_smoke_is_clean_and_deterministic() {
        run(&s(&["fuzz", "--seed", "7", "--iters", "4", "--team", "2"])).expect("fuzz");
        // Bad flag values fail up front, before any iteration runs.
        assert!(run(&s(&["fuzz", "--iters", "many"])).is_err());
        assert!(run(&s(&["fuzz", "--team", "x"])).is_err());
    }

    #[test]
    fn compare_runs_all_tools() {
        run(&s(&["compare", "c_pi", "--threads", "2"])).expect("compare");
    }

    #[test]
    fn watch_pre_written_session() {
        // A finished live-mode session: watch ingests it in one poll,
        // reports its race, and exits.
        let session = std::env::temp_dir().join(format!("sword-cli-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&session);
        run(&s(&["run", "plusplus-orig-yes", "--session", session.to_str().unwrap(), "--live"]))
            .expect("run --live");
        run(&s(&["watch", session.to_str().unwrap(), "--stats"])).expect("watch");
        run(&s(&["watch", session.to_str().unwrap(), "--json"])).expect("watch --json");
        std::fs::remove_dir_all(&session).unwrap();
    }

    #[test]
    fn obs_run_analyze_export_report_end_to_end() {
        use sword_obs::json::Value;

        let session = std::env::temp_dir().join(format!("sword-cli-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&session);
        let dir = session.to_str().unwrap();
        run(&s(&["run", "plusplus-orig-yes", "--session", dir, "--obs", "--stats"]))
            .expect("run --obs");
        run(&s(&["analyze", dir, "--obs", "--stats"])).expect("analyze --obs");
        run(&s(&["trace", "export", dir, "--format", "chrome"])).expect("trace export");
        run(&s(&["report", dir, "--top", "5"])).expect("report");
        run(&s(&["explain", dir, "0"])).expect("explain race 0");
        assert!(run(&s(&["explain", dir, "99"])).is_err(), "out-of-range race id");

        // The HTML dashboard is self-contained and carries one card per
        // reported race plus hot-site rows sourced from the journaled
        // site gauges.
        run(&s(&["report", dir, "--html"])).expect("report --html");
        let html = std::fs::read_to_string(session.join("report.html")).expect("report.html");
        assert!(html.starts_with("<!DOCTYPE html>"));
        // plusplus-orig-yes dedups to two source pairs (read-write and
        // write-write on the shared counter) — one card each.
        assert_eq!(html.matches("<details class=\"race\"").count(), 2, "one card per race");
        assert!(html.contains("Hot sites"), "hot-site section present");
        let journal = std::fs::read_to_string(SessionDir::new(&session).obs_path()).unwrap();
        assert!(journal.contains("sword_site_pairs{site="), "site gauges journaled");

        // The exported trace carries spans from all three layers, with
        // proper nesting per (pid, tid) lane.
        let text = std::fs::read_to_string(session.join("trace.json")).expect("trace.json");
        let doc = sword_obs::json::parse(&text).expect("valid chrome trace JSON");
        let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
        let spans: Vec<(u64, u64, u64, u64)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .map(|e| {
                (
                    e.get("pid").and_then(Value::as_u64).unwrap(),
                    e.get("tid").and_then(Value::as_u64).unwrap(),
                    e.get("ts").and_then(Value::as_u64).unwrap(),
                    e.get("dur").and_then(Value::as_u64).unwrap(),
                )
            })
            .collect();
        for pid in [Layer::Runtime.pid(), Layer::Offline.pid(), Layer::Cli.pid()] {
            assert!(
                spans.iter().any(|(p, ..)| *p == pid),
                "expected complete spans from layer pid {pid}"
            );
        }
        // Nesting: two spans on the same lane either nest or are
        // disjoint — partial overlap would mean corrupt span bounds.
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                if (a.0, a.1) != (b.0, b.1) {
                    continue;
                }
                let (a0, a1) = (a.2, a.2 + a.3);
                let (b0, b1) = (b.2, b.2 + b.3);
                let disjoint = a1 <= b0 || b1 <= a0;
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                assert!(
                    disjoint || nested,
                    "partially overlapping spans on pid {} tid {}: [{a0},{a1}) vs [{b0},{b1})",
                    a.0,
                    a.1
                );
            }
        }
        // Per-thread ordering: each lane's instant events appear in
        // nondecreasing timestamp order (ring drains preserve program
        // order within a thread).
        let mut last_instant: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
        for e in events {
            if e.get("ph").and_then(Value::as_str) != Some("i") {
                continue;
            }
            let key = (
                e.get("pid").and_then(Value::as_u64).unwrap(),
                e.get("tid").and_then(Value::as_u64).unwrap(),
            );
            let ts = e.get("ts").and_then(Value::as_u64).unwrap();
            if let Some(prev) = last_instant.insert(key, ts) {
                assert!(prev <= ts, "instants out of order on lane {key:?}");
            }
        }

        // The report sources its memory section from the journaled
        // registry snapshots (collector gauge + analyzer tree gauges)
        // and checks them against the paper's per-thread bound.
        let read = sword_obs::read_journal(&SessionDir::new(&session).obs_path()).unwrap();
        let info = SessionDir::new(&session).read_info().unwrap();
        let report = sword_obs::render_report(&ReportInput {
            events: read.events,
            info,
            truncated_tail: read.truncated_tail,
            top_n: 10,
        });
        assert!(report.contains("sword_collector_tool_mem_bytes"), "collector gauge:\n{report}");
        assert!(report.contains("sword_analyzer_tree_mem_peak_bytes"), "tree gauge:\n{report}");
        assert!(report.contains("within"), "memory must sit within the paper bound:\n{report}");
        assert!(report.contains("3.30 MB"), "per-thread bound quoted:\n{report}");

        // Error paths: unknown format, journal-less session.
        assert!(run(&s(&["trace", "export", dir, "--format", "svg"])).is_err());
        let bare = std::env::temp_dir().join(format!("sword-cli-bare-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&bare);
        SessionDir::new(&bare).create().unwrap();
        // A journal-less session still reports a skeleton (warning only);
        // trace export has nothing to convert and stays an error.
        run(&s(&["report", bare.to_str().unwrap()])).expect("bare report skeleton");
        assert!(run(&s(&["trace", "export", bare.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&bare).unwrap();
        std::fs::remove_dir_all(&session).unwrap();
    }

    #[test]
    fn fuzz_obs_writes_standalone_journal() {
        let corpus = std::env::temp_dir().join(format!("sword-fuzz-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&corpus);
        run(&s(&[
            "fuzz",
            "--seed",
            "3",
            "--iters",
            "2",
            "--team",
            "2",
            "--corpus",
            corpus.to_str().unwrap(),
            "--obs",
        ]))
        .expect("fuzz --obs");
        let read = sword_obs::read_journal(&corpus.join("fuzz-obs.jsonl")).expect("fuzz journal");
        assert!(
            read.events.iter().any(|e| e.layer == Layer::Cli && e.name == "fuzz-campaign"),
            "campaign span journaled"
        );
        std::fs::remove_dir_all(&corpus).unwrap();
    }

    /// Reserves an ephemeral port by binding and immediately releasing it.
    /// A tiny race window remains, but nothing else in the test process
    /// binds ports concurrently.
    fn free_addr() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    }

    #[test]
    fn listen_serves_status_metrics_and_events_during_watch() {
        use std::time::{Duration, Instant};

        // A live-mode session that never finishes: watch polls it for a
        // few seconds, giving a deterministic window to exercise every
        // telemetry endpoint against the in-flight command.
        let dir = std::env::temp_dir().join(format!("sword-cli-listen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = SessionDir::new(&dir);
        session.create().unwrap();
        std::fs::write(session.thread_meta(0), "").unwrap();
        session.write_live(sword_trace::LiveStatus { generation: 1, finished: false }).unwrap();
        let addr = free_addr();
        let watcher = {
            let dir = dir.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                run(&s(&[
                    "watch",
                    dir.to_str().unwrap(),
                    "--interval-ms",
                    "20",
                    "--timeout-secs",
                    "4",
                    "--listen",
                    &addr,
                ]))
            })
        };
        // Wait for the exporter to come up, then hit each endpoint.
        let deadline = Instant::now() + Duration::from_secs(3);
        let status = loop {
            match http_get(&addr, "/status", Duration::from_secs(1)) {
                Ok(body) => break body,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Err(e) => panic!("telemetry endpoint never came up: {e}"),
            }
        };
        let doc = sword_obs::json::parse(&status).expect("status JSON");
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            doc.get("session").and_then(Value::as_str),
            Some(dir.to_str().unwrap()),
            "{status}"
        );
        assert!(doc.get("races").is_some(), "{status}");
        assert!(doc.get("polls").is_some(), "{status}");
        let metrics = http_get(&addr, "/metrics", Duration::from_secs(2)).unwrap();
        assert!(metrics.contains("sword_exporter_requests_total"), "{metrics}");
        let health = http_get(&addr, "/healthz", Duration::from_secs(2)).unwrap();
        assert_eq!(sword_obs::json::parse(&health).unwrap().get("ok"), Some(&Value::Bool(true)));
        let races = http_get(&addr, "/races", Duration::from_secs(2)).unwrap();
        assert!(sword_obs::json::parse(&races).unwrap().as_arr().is_some());
        // SSE: the stream head arrives even when no events flow yet.
        {
            use std::io::{BufRead, BufReader, Write};
            let mut stream = std::net::TcpStream::connect(&addr).unwrap();
            stream
                .write_all(
                    format!("GET /events?limit=1 HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes(),
                )
                .unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut first = String::new();
            BufReader::new(stream).read_line(&mut first).unwrap();
            assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        }
        // `sword top` renders frames from the same live endpoint.
        run(&s(&["top", &addr, "--iters", "2", "--interval-ms", "10"])).expect("top vs http");
        watcher.join().unwrap().expect("watch --listen");
        // After the command ends, the exporter is down.
        assert!(http_get(&addr, "/healthz", Duration::from_secs(1)).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_with_listen_attaches_exporter_and_top_reads_session() {
        let dir = std::env::temp_dir().join(format!("sword-cli-rls-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let addr = free_addr();
        run(&s(&[
            "run",
            "plusplus-orig-yes",
            "--session",
            dir.to_str().unwrap(),
            "--live",
            "--listen",
            &addr,
        ]))
        .expect("run --live --listen");
        // The exporter shared the collector's registry: its self-metering
        // rows landed in the finalize-time Prometheus exposition.
        let prom = std::fs::read_to_string(SessionDir::new(&dir).metrics_path()).unwrap();
        assert!(prom.contains("sword_exporter_requests_total"), "{prom}");
        assert!(prom.contains("sword_flush_queue_wait_us"), "{prom}");
        assert!(prom.contains("{quantile=\"0.95\"}"), "{prom}");
        // Session-directory `sword top`: finished session renders one
        // frame (queue depths + quantiles) and exits on its own.
        run(&s(&["top", dir.to_str().unwrap()])).expect("top vs session dir");
        assert!(run(&s(&["top", "/no/such/target"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verdicts_identical_with_and_without_exporter() {
        use std::sync::atomic::{AtomicBool, Ordering};

        // One session, analyzed twice: bare, and with the exporter
        // scraping the live registry throughout. The verdicts and
        // evidence must render byte-identically — telemetry reads must
        // never perturb analysis results.
        let dir = std::env::temp_dir().join(format!("sword-cli-ident-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        run(&s(&["run", "plusplus-orig-yes", "--session", dir.to_str().unwrap()])).expect("run");
        let session = SessionDir::new(&dir);
        let pcs = read_pcs(&session).unwrap();

        // Wall-clock fields differ between any two runs; everything up to
        // the stats block (all races + evidence) must match exactly.
        fn verdict_bytes(text: &str) -> &str {
            text.split("\"stats\"").next().unwrap()
        }

        let bare = analyze(&session, &AnalysisConfig::default()).unwrap();
        let bare_text = sword_offline::render_json(&bare, &pcs);

        let obs = Obs::new();
        let config = AnalysisConfig::default().with_obs(obs.clone());
        let server =
            TelemetryServer::start(ServerConfig::bind("127.0.0.1:0"), TelemetryHandles::new(obs))
                .unwrap();
        let addr = server.local_addr().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = {
            let stop = Arc::clone(&stop);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut hits = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    if http_get(&addr, "/metrics", std::time::Duration::from_secs(1)).is_ok() {
                        hits += 1;
                    }
                }
                hits
            })
        };
        let watched = analyze(&session, &config).unwrap();
        stop.store(true, Ordering::Relaxed);
        assert!(scraper.join().unwrap() > 0, "scraper must actually have hit /metrics");
        server.shutdown();
        let watched_text = sword_offline::render_json(&watched, &pcs);
        assert_eq!(
            verdict_bytes(&bare_text),
            verdict_bytes(&watched_text),
            "exporter must not perturb verdicts"
        );
        assert!(bare_text.contains("\"races\""), "guard: split kept the verdict section");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watch_times_out_on_a_stalled_session() {
        // A session that claims to be in flight but never progresses:
        // watch must give up at the timeout and report partial results.
        let dir = std::env::temp_dir().join(format!("sword-cli-stall-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = SessionDir::new(&dir);
        session.create().unwrap();
        std::fs::write(session.thread_meta(0), "").unwrap();
        session.write_live(sword_trace::LiveStatus { generation: 1, finished: false }).unwrap();
        run(&s(&["watch", dir.to_str().unwrap(), "--interval-ms", "10", "--timeout-secs", "1"]))
            .expect("watch --timeout-secs");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
