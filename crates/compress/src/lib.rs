//! Block compression for SWORD's bounded-buffer trace pipeline.
//!
//! When a thread's bounded event buffer fills, SWORD compresses it and
//! writes it to the thread's log file asynchronously (§III-A). The paper
//! compared LZO, Snappy, and LZ4, found them interchangeable for this
//! workload, and picked LZO for integration convenience. This crate is the
//! stand-in: a byte-oriented LZ77-family codec of the same family —
//! hash-table match finding with an LZ4-style token stream, skip-trigger
//! acceleration over incompressible runs, and a reusable [`Compressor`]
//! scratch struct so worker threads never re-zero the hash table per
//! block — plus a framed block format ([`FrameWriter`]/[`FrameReader`])
//! with a stored-block fallback so incompressible data never expands by
//! more than the 13-byte frame header. [`encode_frame_into`] exposes the
//! frame encoder directly for compression worker pools that hand finished
//! frame bytes to a separate ordered I/O thread.
//!
//! Trace data (varint-packed deltas of addresses and program counters) is
//! highly repetitive, so ratios on real logs are typically far above 10×;
//! see the `ablation_compression` bench.
//!
//! # Example
//!
//! ```
//! use sword_compress::{FrameReader, FrameWriter};
//!
//! // One frame per flushed event buffer.
//! let mut writer = FrameWriter::new(Vec::new());
//! let buffer = vec![7u8; 25_000];
//! writer.write_frame(&buffer).unwrap();
//! assert!(writer.ratio() > 100.0, "repetitive buffers collapse");
//!
//! let bytes = writer.into_inner();
//! let mut reader = FrameReader::new(&bytes[..]);
//! let mut out = Vec::new();
//! reader.read_frame(&mut out).unwrap();
//! assert_eq!(out, buffer);
//! ```

#![forbid(unsafe_code)]

use std::io::{self, Read, Write};

mod lz;

pub use lz::{compress, compress_greedy, decompress, max_compressed_len, Compressor, DecodeError};

/// Magic bytes opening every frame: "SWLZ".
pub const FRAME_MAGIC: [u8; 4] = *b"SWLZ";

/// Frame header layout: magic (4) + raw_len (4, LE) + payload_len (4, LE) +
/// flags (1).
pub const FRAME_HEADER_LEN: usize = 13;

/// Flag: payload is stored uncompressed.
const FLAG_STORED: u8 = 1;

/// Encodes `block` as one complete frame (header + payload) appended to
/// `out`, reusing `compressor`'s scratch state. Falls back to a stored
/// payload when compression does not help. Returns the number of frame
/// bytes appended.
///
/// This is the allocation-free building block behind
/// [`FrameWriter::write_frame`]; compression worker pools call it directly
/// to encode frames off the I/O thread and hand finished bytes to an
/// ordered writer.
pub fn encode_frame_into(compressor: &mut Compressor, block: &[u8], out: &mut Vec<u8>) -> usize {
    assert!(block.len() <= u32::MAX as usize, "frame too large");
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    compressor.compress(block, out);
    let mut payload_len = out.len() - start - FRAME_HEADER_LEN;
    let mut flags = 0u8;
    if payload_len >= block.len() {
        out.truncate(start + FRAME_HEADER_LEN);
        out.extend_from_slice(block);
        payload_len = block.len();
        flags = FLAG_STORED;
    }
    let header = &mut out[start..start + FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..8].copy_from_slice(&(block.len() as u32).to_le_bytes());
    header[8..12].copy_from_slice(&(payload_len as u32).to_le_bytes());
    header[12] = flags;
    out.len() - start
}

/// Writes length-prefixed compressed frames to an underlying writer. One
/// frame corresponds to one flushed event buffer.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    compressor: Compressor,
    scratch: Vec<u8>,
    raw_bytes: u64,
    written_bytes: u64,
    frames: u64,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        FrameWriter {
            inner,
            compressor: Compressor::new(),
            scratch: Vec::new(),
            raw_bytes: 0,
            written_bytes: 0,
            frames: 0,
        }
    }

    /// Compresses `block` and writes one frame, reusing this writer's
    /// [`Compressor`] scratch state across calls. Falls back to a stored
    /// frame when compression does not help. Returns the number of bytes
    /// written to the underlying writer (header included).
    pub fn write_frame(&mut self, block: &[u8]) -> io::Result<usize> {
        self.scratch.clear();
        encode_frame_into(&mut self.compressor, block, &mut self.scratch);
        let total = self.scratch.len();
        self.inner.write_all(&self.scratch)?;
        self.raw_bytes += block.len() as u64;
        self.written_bytes += total as u64;
        self.frames += 1;
        Ok(total)
    }

    /// Writes frame bytes already produced by [`encode_frame_into`]
    /// (compressed elsewhere, e.g. by a worker pool), keeping this
    /// writer's ratio accounting consistent. `raw_len` is the block's
    /// uncompressed length.
    pub fn write_encoded_frame(&mut self, frame: &[u8], raw_len: u64) -> io::Result<usize> {
        self.inner.write_all(frame)?;
        self.raw_bytes += raw_len;
        self.written_bytes += frame.len() as u64;
        self.frames += 1;
        Ok(frame.len())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Total uncompressed bytes accepted.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Total bytes emitted downstream (headers included).
    pub fn written_bytes(&self) -> u64 {
        self.written_bytes
    }

    /// Number of frames written.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Achieved compression ratio (raw / written); 1.0 when nothing was
    /// written.
    pub fn ratio(&self) -> f64 {
        if self.written_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.written_bytes as f64
        }
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// A parsed frame header.
#[derive(Clone, Copy, Debug)]
struct FrameHeader {
    raw_len: usize,
    payload_len: usize,
    flags: u8,
}

/// Reads frames produced by [`FrameWriter`].
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    payload: Vec<u8>,
    /// Header already read by a peek, not yet consumed.
    pending: Option<FrameHeader>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, payload: Vec::new(), pending: None }
    }

    fn next_header(&mut self) -> io::Result<Option<FrameHeader>> {
        if let Some(h) = self.pending.take() {
            return Ok(Some(h));
        }
        let mut header = [0u8; FRAME_HEADER_LEN];
        // Distinguish clean EOF (no bytes) from a truncated header.
        let mut got = 0;
        while got < FRAME_HEADER_LEN {
            let n = self.inner.read(&mut header[got..])?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                return Err(bad_data("truncated frame header"));
            }
            got += n;
        }
        if header[..4] != FRAME_MAGIC {
            return Err(bad_data("bad frame magic"));
        }
        Ok(Some(FrameHeader {
            raw_len: u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize,
            payload_len: u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize,
            flags: header[12],
        }))
    }

    /// Uncompressed length of the next frame without consuming it, or
    /// `None` at end of stream.
    pub fn peek_raw_len(&mut self) -> io::Result<Option<usize>> {
        let h = self.next_header()?;
        self.pending = h;
        Ok(h.map(|h| h.raw_len))
    }

    /// Skips the next frame *without decompressing it* — the offline
    /// analyzer uses this to seek log files to a barrier interval's byte
    /// offset cheaply. Returns the skipped frame's raw length, or `None`
    /// at end of stream.
    pub fn skip_frame(&mut self) -> io::Result<Option<usize>> {
        let Some(h) = self.next_header()? else { return Ok(None) };
        self.payload.resize(h.payload_len, 0);
        self.inner.read_exact(&mut self.payload)?;
        Ok(Some(h.raw_len))
    }

    /// Reads the next frame, appending the decompressed block to `out`.
    /// Returns `Ok(None)` at a clean end of stream, the decompressed length
    /// otherwise.
    pub fn read_frame(&mut self, out: &mut Vec<u8>) -> io::Result<Option<usize>> {
        let Some(FrameHeader { raw_len, payload_len, flags }) = self.next_header()? else {
            return Ok(None);
        };
        self.payload.resize(payload_len, 0);
        self.inner.read_exact(&mut self.payload)?;
        if flags & FLAG_STORED != 0 {
            if payload_len != raw_len {
                return Err(bad_data("stored frame length mismatch"));
            }
            out.extend_from_slice(&self.payload);
        } else {
            let before = out.len();
            decompress(&self.payload, out).map_err(|e| bad_data(&format!("corrupt frame: {e}")))?;
            if out.len() - before != raw_len {
                return Err(bad_data("decompressed length mismatch"));
            }
        }
        Ok(Some(raw_len))
    }

    /// Reads every remaining frame into `out`, returning the number of
    /// frames read.
    pub fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        let mut frames = 0;
        while self.read_frame(out)?.is_some() {
            frames += 1;
        }
        Ok(frames)
    }

    /// Unwraps the underlying reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// One frame parsed *in place* from a byte image: the payload borrows the
/// image, so stored frames can be consumed zero-copy and compressed frames
/// decompressed straight into a caller-recycled arena. This is the
/// decode-into counterpart of [`FrameReader`], for readers that hold a
/// whole log image in memory instead of streaming it.
#[derive(Clone, Copy, Debug)]
pub struct FrameView<'a> {
    /// Uncompressed length of the frame's block.
    pub raw_len: usize,
    /// The frame's payload bytes, borrowed from the image.
    pub payload: &'a [u8],
    /// `true` when the payload *is* the block (stored uncompressed).
    pub stored: bool,
}

impl FrameView<'_> {
    /// Decompresses this frame's block into `arena`, replacing its
    /// contents but keeping its allocation — the recycled-arena decode
    /// path. Stored frames copy; for those prefer using
    /// [`FrameView::payload`] directly (no copy at all). Length-checked
    /// like [`FrameReader::read_frame`].
    pub fn decode_into(&self, arena: &mut Vec<u8>) -> io::Result<()> {
        arena.clear();
        if self.stored {
            arena.extend_from_slice(self.payload);
        } else {
            decompress(self.payload, arena)
                .map_err(|e| bad_data(&format!("corrupt frame: {e}")))?;
        }
        if arena.len() != self.raw_len {
            return Err(bad_data("decompressed length mismatch"));
        }
        Ok(())
    }
}

/// Parses the frame starting at `buf[0]`, returning its borrowed
/// [`FrameView`] and the total encoded bytes it occupies (header +
/// payload). Returns `Ok(None)` on an empty `buf` (clean end of image).
///
/// A header torn mid-way is `InvalidData`; a payload extending past the
/// image is `UnexpectedEof` — the same split [`FrameReader`] reports on a
/// truncated stream, so mapped and streamed readers degrade alike.
pub fn parse_frame(buf: &[u8]) -> io::Result<Option<(FrameView<'_>, usize)>> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() < FRAME_HEADER_LEN {
        return Err(bad_data("truncated frame header"));
    }
    if buf[..4] != FRAME_MAGIC {
        return Err(bad_data("bad frame magic"));
    }
    let raw_len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    let payload_len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    let flags = buf[12];
    let end =
        FRAME_HEADER_LEN.checked_add(payload_len).filter(|&end| end <= buf.len()).ok_or_else(
            || io::Error::new(io::ErrorKind::UnexpectedEof, "frame payload past end of image"),
        )?;
    let stored = flags & FLAG_STORED != 0;
    if stored && payload_len != raw_len {
        return Err(bad_data("stored frame length mismatch"));
    }
    Ok(Some((FrameView { raw_len, payload: &buf[FRAME_HEADER_LEN..end], stored }, end)))
}

/// One-shot helper: compress `data` into a standalone frame byte vector.
pub fn frame_compress(data: &[u8]) -> Vec<u8> {
    let mut w = FrameWriter::new(Vec::new());
    w.write_frame(data).expect("vec write cannot fail");
    w.into_inner()
}

/// One-shot helper: decompress a standalone frame produced by
/// [`frame_compress`].
pub fn frame_decompress(frame: &[u8]) -> io::Result<Vec<u8>> {
    let mut r = FrameReader::new(frame);
    let mut out = Vec::new();
    r.read_frame(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        assert_eq!(frame_decompress(&frame_compress(b"")).unwrap(), b"");
    }

    #[test]
    fn roundtrip_small() {
        let data = b"hello hello hello hello";
        assert_eq!(frame_decompress(&frame_compress(data)).unwrap(), data);
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 17) as u8).collect();
        let frame = frame_compress(&data);
        assert!(frame.len() < data.len() / 4, "frame {} vs raw {}", frame.len(), data.len());
        assert_eq!(frame_decompress(&frame).unwrap(), data);
    }

    #[test]
    fn incompressible_data_stores() {
        // Pseudo-random bytes: stored fallback caps expansion at the header.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let frame = frame_compress(&data);
        assert!(frame.len() <= data.len() + FRAME_HEADER_LEN);
        assert_eq!(frame_decompress(&frame).unwrap(), data);
    }

    #[test]
    fn multi_frame_stream() {
        let mut w = FrameWriter::new(Vec::new());
        let blocks: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 1000 * (i + 1)]).collect();
        for b in &blocks {
            w.write_frame(b).unwrap();
        }
        assert_eq!(w.frames(), 10);
        assert!(w.ratio() > 10.0, "constant blocks compress well: {}", w.ratio());
        let bytes = w.into_inner();
        let mut r = FrameReader::new(&bytes[..]);
        let mut out = Vec::new();
        assert_eq!(r.read_to_end(&mut out).unwrap(), 10);
        let expect: Vec<u8> = blocks.concat();
        assert_eq!(out, expect);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut frame = frame_compress(b"some data to protect");
        frame[0] ^= 0xFF;
        assert!(frame_decompress(&frame).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        let frame = frame_compress(b"some data");
        let err = frame_decompress(&frame[..5]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_rejected() {
        let frame = frame_compress(&vec![7u8; 5000]);
        assert!(frame_decompress(&frame[..frame.len() - 1]).is_err());
    }

    #[test]
    fn skip_and_peek_frames() {
        let mut w = FrameWriter::new(Vec::new());
        w.write_frame(&vec![1u8; 500]).unwrap();
        w.write_frame(&vec![2u8; 700]).unwrap();
        w.write_frame(&vec![3u8; 900]).unwrap();
        let bytes = w.into_inner();
        let mut r = FrameReader::new(&bytes[..]);
        assert_eq!(r.peek_raw_len().unwrap(), Some(500));
        assert_eq!(r.peek_raw_len().unwrap(), Some(500), "peek is idempotent");
        assert_eq!(r.skip_frame().unwrap(), Some(500));
        assert_eq!(r.peek_raw_len().unwrap(), Some(700));
        assert_eq!(r.skip_frame().unwrap(), Some(700));
        let mut out = Vec::new();
        assert_eq!(r.read_frame(&mut out).unwrap(), Some(900));
        assert_eq!(out, vec![3u8; 900]);
        assert_eq!(r.skip_frame().unwrap(), None);
        assert_eq!(r.peek_raw_len().unwrap(), None);
    }

    #[test]
    fn peek_then_read() {
        let bytes = frame_compress(b"peek me");
        let mut r = FrameReader::new(&bytes[..]);
        assert_eq!(r.peek_raw_len().unwrap(), Some(7));
        let mut out = Vec::new();
        assert_eq!(r.read_frame(&mut out).unwrap(), Some(7));
        assert_eq!(out, b"peek me");
    }

    #[test]
    fn eof_between_frames_is_clean() {
        let mut r = FrameReader::new(&b""[..]);
        let mut out = Vec::new();
        assert_eq!(r.read_frame(&mut out).unwrap(), None);
    }

    #[test]
    fn encode_frame_into_matches_write_frame() {
        let blocks: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![7u8; 5000],
            (0..4000u32).flat_map(|i| i.to_le_bytes()).collect(),
            b"mixed mixed mixed 123456".to_vec(),
        ];
        let mut w = FrameWriter::new(Vec::new());
        for b in &blocks {
            w.write_frame(b).unwrap();
        }
        let via_writer = w.into_inner();

        let mut comp = Compressor::new();
        let mut via_encode = Vec::new();
        for b in &blocks {
            encode_frame_into(&mut comp, b, &mut via_encode);
        }
        assert_eq!(via_writer, via_encode, "both paths emit identical frame streams");
    }

    #[test]
    fn write_encoded_frame_accounting_and_decode() {
        let block = vec![3u8; 10_000];
        let mut comp = Compressor::new();
        let mut frame = Vec::new();
        let n = encode_frame_into(&mut comp, &block, &mut frame);
        assert_eq!(n, frame.len());

        let mut w = FrameWriter::new(Vec::new());
        w.write_encoded_frame(&frame, block.len() as u64).unwrap();
        assert_eq!(w.raw_bytes(), block.len() as u64);
        assert_eq!(w.written_bytes(), frame.len() as u64);
        assert_eq!(w.frames(), 1);
        let bytes = w.into_inner();
        let mut out = Vec::new();
        FrameReader::new(&bytes[..]).read_frame(&mut out).unwrap();
        assert_eq!(out, block);
    }

    #[test]
    fn parse_frame_walks_an_image_zero_copy() {
        let mut w = FrameWriter::new(Vec::new());
        let repetitive = vec![5u8; 4000]; // compresses
        let mut x = 0x9e3779b97f4a7c15u64;
        let noisy: Vec<u8> = (0..600)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect(); // stores
        w.write_frame(&repetitive).unwrap();
        w.write_frame(&noisy).unwrap();
        let image = w.into_inner();

        let (f1, n1) = parse_frame(&image).unwrap().unwrap();
        assert!(!f1.stored);
        assert_eq!(f1.raw_len, repetitive.len());
        let mut arena = Vec::new();
        f1.decode_into(&mut arena).unwrap();
        assert_eq!(arena, repetitive);

        let (f2, n2) = parse_frame(&image[n1..]).unwrap().unwrap();
        assert!(f2.stored, "noisy block falls back to stored");
        assert_eq!(f2.payload, &noisy[..], "stored payload borrows the image");
        f2.decode_into(&mut arena).unwrap();
        assert_eq!(arena, noisy);

        assert_eq!(n1 + n2, image.len());
        assert!(parse_frame(&image[n1 + n2..]).unwrap().is_none(), "clean end of image");
    }

    #[test]
    fn parse_frame_reports_torn_images() {
        let image = frame_compress(&vec![9u8; 5000]);
        // Torn header: InvalidData.
        let err = parse_frame(&image[..7]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Torn payload: UnexpectedEof, like a truncated stream read.
        let err = parse_frame(&image[..image.len() - 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Flipped magic: InvalidData.
        let mut bad = image.clone();
        bad[0] ^= 0xFF;
        assert_eq!(parse_frame(&bad).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decode_into_recycles_the_arena() {
        let a = frame_compress(&vec![1u8; 3000]);
        let b = frame_compress(&vec![2u8; 2000]);
        let mut arena = Vec::new();
        let (fa, _) = parse_frame(&a).unwrap().unwrap();
        fa.decode_into(&mut arena).unwrap();
        let cap = arena.capacity();
        let (fb, _) = parse_frame(&b).unwrap().unwrap();
        fb.decode_into(&mut arena).unwrap();
        assert_eq!(arena, vec![2u8; 2000]);
        assert_eq!(arena.capacity(), cap, "smaller block reuses the allocation");
    }

    #[test]
    fn ratio_accounting() {
        let mut w = FrameWriter::new(Vec::new());
        w.write_frame(&vec![0u8; 4096]).unwrap();
        assert_eq!(w.raw_bytes(), 4096);
        assert!(w.written_bytes() < 200);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn frame_roundtrip(data in prop::collection::vec(any::<u8>(), 0..20_000)) {
            prop_assert_eq!(frame_decompress(&frame_compress(&data)).unwrap(), data);
        }

        #[test]
        fn frame_roundtrip_structured(
            runs in prop::collection::vec((any::<u8>(), 1usize..500), 0..60),
        ) {
            // Run-length structured data resembling varint event streams.
            let mut data = Vec::new();
            for (byte, len) in runs {
                data.extend(std::iter::repeat_n(byte, len));
            }
            prop_assert_eq!(frame_decompress(&frame_compress(&data)).unwrap(), data);
        }

        #[test]
        fn multiframe_roundtrip(blocks in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..2000), 0..12)
        ) {
            let mut w = FrameWriter::new(Vec::new());
            for b in &blocks {
                w.write_frame(b).unwrap();
            }
            let bytes = w.into_inner();
            let mut r = FrameReader::new(&bytes[..]);
            let mut out = Vec::new();
            prop_assert_eq!(r.read_to_end(&mut out).unwrap(), blocks.len());
            prop_assert_eq!(out, blocks.concat());
        }
    }
}
