//! The LZ77 codec: greedy hash-table match finding with an LZ4-style token
//! stream.
//!
//! Encoded stream grammar (all lengths little-endian where multi-byte):
//!
//! ```text
//! sequence := token literals… (offset_lo offset_hi)?
//! token    := (lit_len : 4 bits high) | (match_len : 4 bits low)
//! ```
//!
//! * `lit_len` 0–14 inline; 15 means "add following 255-chain bytes".
//! * `match_len` 0 means "no match" (terminal literal run); 1–14 encode a
//!   match of `match_len + MIN_MATCH - 1` bytes; 15 extends via 255-chain.
//! * `offset` is the 16-bit distance back into the already-decoded output
//!   (1-based; ≤ 65535), so matches may overlap themselves, which encodes
//!   RLE runs efficiently — important for the long runs of identical event
//!   headers in SWORD logs.

/// Minimum match length worth encoding (token + offset = 3 bytes).
const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (16-bit offsets).
const MAX_OFFSET: usize = 65_535;
/// log2 of the hash table size.
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Errors from [`decompress`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside a sequence.
    Truncated,
    /// A match referenced data before the start of the output.
    BadOffset,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "compressed stream truncated"),
            DecodeError::BadOffset => write!(f, "match offset out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on compressed size for `len` input bytes (worst case is all
/// literals with 255-chain length extension).
pub fn max_compressed_len(len: usize) -> usize {
    len + len / 255 + 16
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`, appending to `out`.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    out.reserve(input.len() / 2 + 16);
    // Positions of previous occurrences of 4-byte prefixes.
    let mut table = vec![usize::MAX; HASH_SIZE];
    let mut pos = 0usize;
    let mut literal_start = 0usize;
    let n = input.len();

    while pos + MIN_MATCH <= n {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        if candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match greedily.
            let mut len = MIN_MATCH;
            while pos + len < n && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            emit_sequence(out, &input[literal_start..pos], pos - candidate, len);
            // Insert a few positions inside the match to keep the table
            // warm without paying per-byte hashing cost.
            let step = (len / 4).max(1);
            let mut p = pos + 1;
            while p + MIN_MATCH <= n && p < pos + len {
                table[hash4(&input[p..])] = p;
                p += step;
            }
            pos += len;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    // Terminal literal run (match_len nibble = 0).
    emit_sequence(out, &input[literal_start..], 0, 0);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    debug_assert!(match_len == 0 || match_len >= MIN_MATCH);
    let lit_len = literals.len();
    let lit_nibble = lit_len.min(15) as u8;
    let match_code = if match_len == 0 { 0 } else { match_len - MIN_MATCH + 1 };
    let match_nibble = match_code.min(15) as u8;
    out.push((lit_nibble << 4) | match_nibble);
    if lit_nibble == 15 {
        emit_chain(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        debug_assert!((1..=MAX_OFFSET).contains(&offset));
        if match_nibble == 15 {
            emit_chain(out, match_code - 15);
        }
        out.extend_from_slice(&(offset as u16).to_le_bytes());
    }
}

/// 255-chain: a run of 0xFF bytes plus a final byte < 0xFF summing to `v`.
fn emit_chain(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

/// Decompresses `input` (one [`compress`] stream), appending to `out`.
pub fn decompress(input: &[u8], out: &mut Vec<u8>) -> Result<(), DecodeError> {
    let mut pos = 0usize;
    let n = input.len();
    let base = out.len();
    loop {
        if pos >= n {
            // A valid stream always ends with an explicit terminal
            // sequence (match nibble 0), so running off the end — even of
            // an empty input — is a truncation.
            return Err(DecodeError::Truncated);
        }
        let token = input[pos];
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        let match_code_nibble = (token & 0x0F) as usize;
        if lit_len == 15 {
            lit_len += read_chain(input, &mut pos)?;
        }
        if pos + lit_len > n {
            return Err(DecodeError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;
        if match_code_nibble == 0 {
            // Terminal sequence.
            if pos != n {
                return Err(DecodeError::Truncated);
            }
            return Ok(());
        }
        let mut match_code = match_code_nibble;
        if match_code == 15 {
            match_code += read_chain(input, &mut pos)?;
        }
        let match_len = match_code + MIN_MATCH - 1;
        if pos + 2 > n {
            return Err(DecodeError::Truncated);
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() - base {
            return Err(DecodeError::BadOffset);
        }
        // Byte-by-byte copy: offsets smaller than the length self-overlap
        // (RLE semantics).
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
}

fn read_chain(input: &[u8], pos: &mut usize) -> Result<usize, DecodeError> {
    let mut total = 0usize;
    loop {
        let b = *input.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut c = Vec::new();
        compress(data, &mut c);
        let mut d = Vec::new();
        decompress(&c, &mut d).expect("decompress");
        d
    }

    #[test]
    fn empty() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn short_literals() {
        for len in 0..20 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn rle_run() {
        let data = vec![42u8; 10_000];
        let mut c = Vec::new();
        compress(&data, &mut c);
        assert!(c.len() < 64, "RLE run should compress to ~nothing, got {}", c.len());
        let mut d = Vec::new();
        decompress(&c, &mut d).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn repeated_pattern() {
        let data: Vec<u8> = b"abcdefgh".iter().cycle().take(8000).copied().collect();
        let mut c = Vec::new();
        compress(&data, &mut c);
        assert!(c.len() < 200);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_literal_chain() {
        // >15 literals exercises the 255-chain.
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + i / 3) as u8).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_match_chain() {
        // Match of length >18 exercises match 255-chain.
        let mut data = vec![0u8; 4];
        data.extend((0..50).map(|i| i as u8));
        let pattern = data.clone();
        data.extend(&pattern); // long repeat
        data.extend(&pattern);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn far_matches_within_window() {
        let mut data = b"0123456789abcdef_payload_".to_vec();
        data.extend(vec![9u8; 60_000]);
        data.extend(b"0123456789abcdef_payload_");
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn matches_beyond_window_are_not_used() {
        // Distance > 65535: the second copy must still roundtrip (encoded
        // as literals or nearer matches).
        let mut data = b"unique-prefix-0123456789".to_vec();
        let mut x = 1u64;
        data.extend((0..70_000).map(|_| {
            x = x.wrapping_mul(48271) % 0x7fffffff;
            (x >> 7) as u8
        }));
        data.extend(b"unique-prefix-0123456789");
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let mut c = Vec::new();
        compress(&vec![7u8; 1000], &mut c);
        for cut in 0..c.len() {
            let mut d = Vec::new();
            assert!(decompress(&c[..cut], &mut d).is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn bad_offset_detected() {
        // Hand-craft: token with match but offset 0.
        let stream = [0x01u8, 0x00, 0x00]; // lit 0, match_code 1, offset 0
        let mut d = Vec::new();
        assert_eq!(decompress(&stream, &mut d), Err(DecodeError::BadOffset));
        // Offset pointing before start of output.
        let stream = [0x11u8, b'x', 0x05, 0x00]; // 1 literal, match offset 5
        let mut d = Vec::new();
        assert_eq!(decompress(&stream, &mut d), Err(DecodeError::BadOffset));
    }

    #[test]
    fn decompress_appends() {
        let mut c = Vec::new();
        compress(b"hello world hello world", &mut c);
        let mut out = b"prefix:".to_vec();
        decompress(&c, &mut out).unwrap();
        assert_eq!(out, b"prefix:hello world hello world");
    }

    #[test]
    fn max_compressed_len_holds() {
        let mut worst = Vec::new();
        // Incompressible: every 4-gram unique.
        let data: Vec<u8> = (0..30_000u32).flat_map(|i| i.to_le_bytes()).collect();
        compress(&data, &mut worst);
        assert!(worst.len() <= max_compressed_len(data.len()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_random(data in prop::collection::vec(any::<u8>(), 0..30_000)) {
            let mut c = Vec::new();
            compress(&data, &mut c);
            prop_assert!(c.len() <= max_compressed_len(data.len()));
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            prop_assert_eq!(d, data);
        }

        #[test]
        fn roundtrip_low_entropy(
            runs in prop::collection::vec((0u8..4, 1usize..2000), 0..40),
        ) {
            let mut data = Vec::new();
            for (b, len) in runs {
                data.extend(std::iter::repeat_n(b, len));
            }
            let mut c = Vec::new();
            compress(&data, &mut c);
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            prop_assert_eq!(d, data);
        }

        #[test]
        fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..2000)) {
            let mut out = Vec::new();
            let _ = decompress(&data, &mut out); // must not panic
        }
    }
}
