//! The LZ77 codec: hash-table match finding with an LZ4-style token
//! stream, an acceleration (skip-trigger) search, and wide match copies.
//!
//! Encoded stream grammar (all lengths little-endian where multi-byte):
//!
//! ```text
//! sequence := token literals… (offset_lo offset_hi)?
//! token    := (lit_len : 4 bits high) | (match_len : 4 bits low)
//! ```
//!
//! * `lit_len` 0–14 inline; 15 means "add following 255-chain bytes".
//! * `match_len` 0 means "no match" (terminal literal run); 1–14 encode a
//!   match of `match_len + MIN_MATCH - 1` bytes; 15 extends via 255-chain.
//! * `offset` is the 16-bit distance back into the already-decoded output
//!   (1-based; ≤ 65535), so matches may overlap themselves, which encodes
//!   RLE runs efficiently — important for the long runs of identical event
//!   headers in SWORD logs.
//!
//! Two compressors emit this format:
//!
//! * [`Compressor`] — the production path. Its hash table is allocated
//!   once and recycled across blocks via an epoch base (entries below the
//!   current block's base are stale), match candidates are confirmed with
//!   one 4-byte load, matches are extended 8 bytes per step, and a
//!   skip-trigger accelerates over incompressible runs (every
//!   `2^SKIP_TRIGGER` consecutive misses grow the probe stride by one
//!   byte, so pseudo-random input costs ~1 probe per `stride` bytes
//!   instead of one per byte).
//! * [`compress_greedy`] — the original byte-at-a-time greedy matcher
//!   with a freshly allocated table per call, retained as the reference
//!   implementation for differential tests and the `collector_hot_path`
//!   before/after bench. Both emit valid streams for the same grammar and
//!   decode under the same [`decompress`].

/// Minimum match length worth encoding (token + offset = 3 bytes).
const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (16-bit offsets).
const MAX_OFFSET: usize = 65_535;
/// log2 of the hash table size.
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Probe-miss budget before the search stride grows by one byte: the
/// stride is `1 + misses / 2^SKIP_TRIGGER`, LZ4's acceleration scheme.
const SKIP_TRIGGER: u32 = 6;
/// Upper bound accepted for a single decoded literal/match run. No
/// stream our compressors emit comes close (runs are bounded by the
/// block size, and blocks by the frame format's u32 `raw_len`); anything
/// larger is adversarial input trying to force a huge reservation.
const MAX_DECODE_RUN: usize = 1 << 30;

/// Errors from [`decompress`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside a sequence.
    Truncated,
    /// A match referenced data before the start of the output.
    BadOffset,
    /// A length-extension chain claimed a run larger than any valid
    /// stream can contain (adversarial input; refused before reserving).
    Oversize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "compressed stream truncated"),
            DecodeError::BadOffset => write!(f, "match offset out of range"),
            DecodeError::Oversize => write!(f, "length chain exceeds decodable bounds"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on compressed size for `len` input bytes (worst case is all
/// literals with 255-chain length extension).
pub fn max_compressed_len(len: usize) -> usize {
    len + len / 255 + 16
}

#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32(input: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(input[pos..pos + 4].try_into().expect("4 bytes"))
}

#[inline]
fn read_u64(input: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(input[pos..pos + 8].try_into().expect("8 bytes"))
}

/// Length of the common prefix of `input[a..]` and `input[b..]` (with
/// `a < b`), compared 8 bytes at a time; the first differing byte is
/// located with a trailing-zeros count instead of a byte loop.
#[inline]
fn common_prefix(input: &[u8], mut a: usize, mut b: usize) -> usize {
    let n = input.len();
    let start = b;
    while b + 8 <= n {
        let x = read_u64(input, a) ^ read_u64(input, b);
        if x != 0 {
            return b - start + (x.trailing_zeros() >> 3) as usize;
        }
        a += 8;
        b += 8;
    }
    while b < n && input[a] == input[b] {
        a += 1;
        b += 1;
    }
    b - start
}

/// Reusable compression state: one hash table per compressor, recycled
/// across blocks without re-zeroing.
///
/// The table maps 4-byte-prefix hashes to `base + position`; `base` is
/// advanced past every compressed block, so entries written by earlier
/// blocks compare below the current block's base and read as empty. The
/// table is only re-zeroed when `base` approaches `u32::MAX` (once per
/// ~4 GiB compressed), making per-block setup O(1) instead of the
/// O(HASH_SIZE) clear the greedy reference pays.
#[derive(Clone, Debug)]
pub struct Compressor {
    table: Vec<u32>,
    base: u32,
}

impl Default for Compressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor {
    /// A fresh compressor (allocates the hash table once).
    pub fn new() -> Self {
        Compressor { table: vec![0; HASH_SIZE], base: 1 }
    }

    /// Compresses `input` as one standalone stream, appending to `out`.
    pub fn compress(&mut self, input: &[u8], out: &mut Vec<u8>) {
        out.reserve(input.len() / 2 + 16);
        let n = input.len();
        // Claim this block's epoch range [base, base + n); wrap by
        // re-zeroing when u32 positions would run out.
        if self.base as u64 + n as u64 >= u32::MAX as u64 {
            self.table.fill(0);
            self.base = 1;
        }
        let base = self.base;
        self.base += n as u32;

        let mut pos = 0usize;
        let mut literal_start = 0usize;
        let mut probes = 1u32 << SKIP_TRIGGER;
        while pos + MIN_MATCH <= n {
            let here = read_u32(input, pos);
            let h = hash4(here);
            let entry = self.table[h];
            self.table[h] = base + pos as u32;
            if entry >= base {
                let candidate = (entry - base) as usize;
                if pos - candidate <= MAX_OFFSET && read_u32(input, candidate) == here {
                    let len =
                        MIN_MATCH + common_prefix(input, candidate + MIN_MATCH, pos + MIN_MATCH);
                    emit_sequence(out, &input[literal_start..pos], pos - candidate, len);
                    pos += len;
                    literal_start = pos;
                    // Keep the table warm at the match tail so adjacent
                    // repeats chain without per-byte hashing.
                    if pos + MIN_MATCH <= n && pos >= 2 {
                        let p = pos - 2;
                        self.table[hash4(read_u32(input, p))] = base + p as u32;
                    }
                    probes = 1 << SKIP_TRIGGER;
                    continue;
                }
            }
            // Miss: accelerate over incompressible data — the stride
            // grows by one byte per 2^SKIP_TRIGGER consecutive misses.
            pos += (probes >> SKIP_TRIGGER) as usize;
            probes += 1;
        }
        // Terminal literal run (match_len nibble = 0).
        emit_sequence(out, &input[literal_start..], 0, 0);
    }
}

/// Compresses `input`, appending to `out`, with one-shot scratch state.
/// Hot paths should hold a [`Compressor`] instead and reuse its table.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    Compressor::new().compress(input, out);
}

/// The original greedy byte-at-a-time compressor (the seed codec),
/// retained unchanged as a differential-testing reference and the
/// baseline of the `collector_hot_path` bench. Emits the same stream
/// grammar as [`Compressor::compress`]; outputs from either decode under
/// [`decompress`].
pub fn compress_greedy(input: &[u8], out: &mut Vec<u8>) {
    let greedy_hash = |bytes: &[u8]| -> usize {
        let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
    };
    out.reserve(input.len() / 2 + 16);
    // Positions of previous occurrences of 4-byte prefixes.
    let mut table = vec![usize::MAX; HASH_SIZE];
    let mut pos = 0usize;
    let mut literal_start = 0usize;
    let n = input.len();

    while pos + MIN_MATCH <= n {
        let h = greedy_hash(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        if candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match greedily.
            let mut len = MIN_MATCH;
            while pos + len < n && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            emit_sequence(out, &input[literal_start..pos], pos - candidate, len);
            // Insert a few positions inside the match to keep the table
            // warm without paying per-byte hashing cost.
            let step = (len / 4).max(1);
            let mut p = pos + 1;
            while p + MIN_MATCH <= n && p < pos + len {
                table[greedy_hash(&input[p..])] = p;
                p += step;
            }
            pos += len;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    // Terminal literal run (match_len nibble = 0).
    emit_sequence(out, &input[literal_start..], 0, 0);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    debug_assert!(match_len == 0 || match_len >= MIN_MATCH);
    let lit_len = literals.len();
    let lit_nibble = lit_len.min(15) as u8;
    let match_code = if match_len == 0 { 0 } else { match_len - MIN_MATCH + 1 };
    let match_nibble = match_code.min(15) as u8;
    out.push((lit_nibble << 4) | match_nibble);
    if lit_nibble == 15 {
        emit_chain(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        debug_assert!((1..=MAX_OFFSET).contains(&offset));
        if match_nibble == 15 {
            emit_chain(out, match_code - 15);
        }
        out.extend_from_slice(&(offset as u16).to_le_bytes());
    }
}

/// 255-chain: a run of 0xFF bytes plus a final byte < 0xFF summing to `v`.
fn emit_chain(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

/// Decompresses `input` (one [`compress`] stream), appending to `out`.
pub fn decompress(input: &[u8], out: &mut Vec<u8>) -> Result<(), DecodeError> {
    let mut pos = 0usize;
    let n = input.len();
    let base = out.len();
    loop {
        if pos >= n {
            // A valid stream always ends with an explicit terminal
            // sequence (match nibble 0), so running off the end — even of
            // an empty input — is a truncation.
            return Err(DecodeError::Truncated);
        }
        let token = input[pos];
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        let match_code_nibble = (token & 0x0F) as usize;
        if lit_len == 15 {
            // Literals come from the input itself, so cap the chain by
            // the bytes actually remaining — a claim past that is a
            // truncation however large the chain says it is, and the cap
            // keeps the arithmetic below overflow-free.
            let remaining = n - pos;
            lit_len = lit_len
                .checked_add(read_chain(input, &mut pos, remaining)?)
                .ok_or(DecodeError::Oversize)?;
        }
        if lit_len > n - pos {
            return Err(DecodeError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;
        if match_code_nibble == 0 {
            // Terminal sequence.
            if pos != n {
                return Err(DecodeError::Truncated);
            }
            return Ok(());
        }
        let mut match_code = match_code_nibble;
        if match_code == 15 {
            // Match bytes are synthesized into the output, so the
            // remaining-input cap does not apply; refuse runs beyond
            // MAX_DECODE_RUN before reserving anything.
            match_code = match_code
                .checked_add(read_chain(input, &mut pos, MAX_DECODE_RUN)?)
                .ok_or(DecodeError::Oversize)?;
        }
        let match_len = match_code + MIN_MATCH - 1;
        if pos + 2 > n {
            return Err(DecodeError::Truncated);
        }
        let offset = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() - base {
            return Err(DecodeError::BadOffset);
        }
        let start = out.len() - offset;
        if offset >= match_len {
            // Disjoint source: one wide append.
            out.extend_from_within(start..start + match_len);
        } else {
            // Self-overlapping match (RLE semantics): the bytes in
            // `out[start..]` form an `offset`-periodic pattern. Appending
            // a prefix of that region preserves the period, and each
            // append doubles the available source, so the copy completes
            // in O(log(match_len / offset)) wide appends instead of
            // byte-at-a-time pushes.
            out.reserve(match_len);
            let mut remaining = match_len;
            let mut avail = offset;
            while remaining > 0 {
                let step = avail.min(remaining);
                out.extend_from_within(start..start + step);
                remaining -= step;
                avail += step;
            }
        }
    }
}

/// Reads a 255-chain, refusing totals above `cap` (adversarial chains
/// otherwise force huge downstream reservations).
fn read_chain(input: &[u8], pos: &mut usize, cap: usize) -> Result<usize, DecodeError> {
    let mut total = 0usize;
    loop {
        let b = *input.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        total += b as usize;
        if total > cap {
            return Err(if cap == MAX_DECODE_RUN {
                DecodeError::Oversize
            } else {
                DecodeError::Truncated
            });
        }
        if b != 255 {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut c = Vec::new();
        compress(data, &mut c);
        let mut d = Vec::new();
        decompress(&c, &mut d).expect("decompress");
        d
    }

    #[test]
    fn empty() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn short_literals() {
        for len in 0..20 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn rle_run() {
        let data = vec![42u8; 10_000];
        let mut c = Vec::new();
        compress(&data, &mut c);
        assert!(c.len() < 64, "RLE run should compress to ~nothing, got {}", c.len());
        let mut d = Vec::new();
        decompress(&c, &mut d).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn repeated_pattern() {
        let data: Vec<u8> = b"abcdefgh".iter().cycle().take(8000).copied().collect();
        let mut c = Vec::new();
        compress(&data, &mut c);
        assert!(c.len() < 200);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_literal_chain() {
        // >15 literals exercises the 255-chain.
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + i / 3) as u8).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_match_chain() {
        // Match of length >18 exercises match 255-chain.
        let mut data = vec![0u8; 4];
        data.extend((0..50).map(|i| i as u8));
        let pattern = data.clone();
        data.extend(&pattern); // long repeat
        data.extend(&pattern);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn far_matches_within_window() {
        let mut data = b"0123456789abcdef_payload_".to_vec();
        data.extend(vec![9u8; 60_000]);
        data.extend(b"0123456789abcdef_payload_");
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn matches_beyond_window_are_not_used() {
        // Distance > 65535: the second copy must still roundtrip (encoded
        // as literals or nearer matches).
        let mut data = b"unique-prefix-0123456789".to_vec();
        let mut x = 1u64;
        data.extend((0..70_000).map(|_| {
            x = x.wrapping_mul(48271) % 0x7fffffff;
            (x >> 7) as u8
        }));
        data.extend(b"unique-prefix-0123456789");
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let mut c = Vec::new();
        compress(&vec![7u8; 1000], &mut c);
        for cut in 0..c.len() {
            let mut d = Vec::new();
            assert!(decompress(&c[..cut], &mut d).is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn bad_offset_detected() {
        // Hand-craft: token with match but offset 0.
        let stream = [0x01u8, 0x00, 0x00]; // lit 0, match_code 1, offset 0
        let mut d = Vec::new();
        assert_eq!(decompress(&stream, &mut d), Err(DecodeError::BadOffset));
        // Offset pointing before start of output.
        let stream = [0x11u8, b'x', 0x05, 0x00]; // 1 literal, match offset 5
        let mut d = Vec::new();
        assert_eq!(decompress(&stream, &mut d), Err(DecodeError::BadOffset));
    }

    #[test]
    fn decompress_appends() {
        let mut c = Vec::new();
        compress(b"hello world hello world", &mut c);
        let mut out = b"prefix:".to_vec();
        decompress(&c, &mut out).unwrap();
        assert_eq!(out, b"prefix:hello world hello world");
    }

    #[test]
    fn max_compressed_len_holds() {
        // Incompressible: every 4-gram unique.
        let data: Vec<u8> = (0..30_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut worst = Vec::new();
        compress(&data, &mut worst);
        assert!(worst.len() <= max_compressed_len(data.len()));
        let mut worst_greedy = Vec::new();
        compress_greedy(&data, &mut worst_greedy);
        assert!(worst_greedy.len() <= max_compressed_len(data.len()));
    }

    #[test]
    fn compressor_reuse_across_blocks() {
        // One Compressor over many different blocks: stale table entries
        // from earlier blocks must never alias into later ones.
        let mut comp = Compressor::new();
        let blocks: Vec<Vec<u8>> = (0..32u8)
            .map(|seed| {
                let mut x = seed as u64 + 1;
                (0..5000)
                    .map(|i| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        if i % 7 < 3 {
                            seed
                        } else {
                            (x >> 33) as u8
                        }
                    })
                    .collect()
            })
            .collect();
        for block in &blocks {
            let mut c = Vec::new();
            comp.compress(block, &mut c);
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            assert_eq!(&d, block);
        }
    }

    #[test]
    fn compressor_epoch_wrap_resets_table() {
        // Force the epoch counter to the wrap threshold and compress
        // across it: the table re-zero must keep streams standalone.
        let mut comp = Compressor::new();
        comp.base = u32::MAX - 100;
        let data: Vec<u8> = b"wrap-around-pattern-".iter().cycle().take(4000).copied().collect();
        for _ in 0..3 {
            let mut c = Vec::new();
            comp.compress(&data, &mut c);
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            assert_eq!(d, data);
        }
    }

    #[test]
    fn adversarial_literal_chain_rejected_without_reservation() {
        // Token claims a literal run of ~4 GB backed by 3 input bytes:
        // must fail fast as truncation, never reserve.
        let mut stream = vec![0xF0u8];
        stream.extend(std::iter::repeat_n(0xFF, 3));
        stream.push(0x00);
        let mut d = Vec::new();
        assert_eq!(decompress(&stream, &mut d), Err(DecodeError::Truncated));
        assert!(d.capacity() < 1 << 20, "no giant reservation: {}", d.capacity());
    }

    #[test]
    fn adversarial_match_chain_rejected() {
        // A tiny valid prefix, then a match whose 255-chain claims more
        // than MAX_DECODE_RUN bytes: Oversize, not an allocation attempt.
        let mut stream = vec![0x4F, b'a', b'b', b'c', b'd']; // 4 literals, match chain follows
        let chain_bytes = MAX_DECODE_RUN / 255 + 2;
        stream.extend(std::iter::repeat_n(0xFF, chain_bytes));
        stream.push(0x00);
        stream.extend_from_slice(&1u16.to_le_bytes());
        let mut d = Vec::new();
        assert_eq!(decompress(&stream, &mut d), Err(DecodeError::Oversize));
        assert!(d.capacity() < 1 << 20, "no giant reservation: {}", d.capacity());
    }

    #[test]
    fn decompress_appends_overlapping_doubling() {
        // Offsets 1..=9 against lengths around the doubling boundaries.
        for offset in 1usize..10 {
            for extra in [0usize, 1, 7, 8, 9, 63, 64, 255, 256, 1000] {
                let pattern: Vec<u8> = (0..offset as u8).collect();
                let mut data = pattern.clone();
                let match_len = MIN_MATCH + extra;
                for i in 0..match_len {
                    data.push(pattern[i % offset]);
                }
                assert_eq!(roundtrip(&data), data, "offset {offset} extra {extra}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Structured data shaped like encoded event streams: short repeated
    /// records with occasional noise.
    fn arb_eventish() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 1..6), 1usize..300, any::<u8>()),
            0..30,
        )
        .prop_map(|chunks| {
            let mut data = Vec::new();
            for (record, repeats, noise) in chunks {
                for i in 0..repeats {
                    data.extend_from_slice(&record);
                    if i % 17 == 0 {
                        data.push(noise);
                    }
                }
            }
            data
        })
    }

    proptest! {
        #[test]
        fn roundtrip_random(data in prop::collection::vec(any::<u8>(), 0..30_000)) {
            let mut c = Vec::new();
            compress(&data, &mut c);
            prop_assert!(c.len() <= max_compressed_len(data.len()));
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            prop_assert_eq!(d, data);
        }

        #[test]
        fn roundtrip_low_entropy(
            runs in prop::collection::vec((0u8..4, 1usize..2000), 0..40),
        ) {
            let mut data = Vec::new();
            for (b, len) in runs {
                data.extend(std::iter::repeat_n(b, len));
            }
            let mut c = Vec::new();
            compress(&data, &mut c);
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            prop_assert_eq!(d, data);
        }

        #[test]
        fn accelerated_roundtrip_structured(data in arb_eventish()) {
            let mut comp = Compressor::new();
            let mut c = Vec::new();
            comp.compress(&data, &mut c);
            prop_assert!(c.len() <= max_compressed_len(data.len()));
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            prop_assert_eq!(d, data);
        }

        /// Format compatibility: the seed greedy compressor's streams
        /// must keep decoding under the rewritten decompressor.
        #[test]
        fn greedy_streams_decode_under_new_decompressor(
            data in prop::collection::vec(any::<u8>(), 0..20_000),
        ) {
            let mut c = Vec::new();
            compress_greedy(&data, &mut c);
            prop_assert!(c.len() <= max_compressed_len(data.len()));
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            prop_assert_eq!(d, data);
        }

        #[test]
        fn greedy_structured_streams_decode(data in arb_eventish()) {
            let mut c = Vec::new();
            compress_greedy(&data, &mut c);
            let mut d = Vec::new();
            decompress(&c, &mut d).unwrap();
            prop_assert_eq!(d, data);
        }

        /// One reused Compressor over a block sequence behaves exactly
        /// like fresh per-block compressors.
        #[test]
        fn reused_compressor_matches_fresh(
            blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..4000), 0..8),
        ) {
            let mut shared = Compressor::new();
            for block in &blocks {
                let mut reused = Vec::new();
                shared.compress(block, &mut reused);
                let mut fresh = Vec::new();
                Compressor::new().compress(block, &mut fresh);
                prop_assert_eq!(&reused, &fresh, "reuse must not change the stream");
                let mut d = Vec::new();
                decompress(&reused, &mut d).unwrap();
                prop_assert_eq!(&d, block);
            }
        }

        #[test]
        fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..2000)) {
            let mut out = Vec::new();
            let _ = decompress(&data, &mut out); // must not panic
        }
    }
}
