//! Measurement support for reproducing the paper's evaluation.
//!
//! * [`MemGauge`] — a thread-safe byte counter each detector updates as it
//!   allocates/frees analysis state, so memory-overhead numbers (Figures
//!   6–8, Table IV) are *measured from the actual data structures*, not
//!   estimated.
//! * [`NodeModel`] — maps measured footprints onto a configurable compute
//!   node (default: the paper's 32 GB testbed) to decide when a tool runs
//!   out of memory, reproducing ARCHER's OOM on AMG2013 at 40³.
//! * [`geomean`] — the paper reports geometric means over benchmark suites
//!   (Figure 6).
//! * [`Stopwatch`]/[`RunStats`] — wall-clock timing over repeated runs
//!   (the paper averages 10 executions).
//! * [`Table`] — aligned ASCII table output for the per-table/per-figure
//!   bench harnesses.
//!
//! # Example
//!
//! ```
//! use sword_metrics::{geomean, NodeModel, Placement};
//!
//! // The paper's AMG2013_40 situation on a 32 GB node: a ~27 GB baseline
//! // plus ~5x shadow memory cannot fit; a 3.3 MB/thread collector can.
//! let node = NodeModel::paper_node();
//! let baseline = 27u64 << 30;
//! assert_eq!(node.place(baseline, baseline * 5), Placement::OutOfMemory);
//! assert!(node.place(baseline, 24 * 3_460_300).fits());
//!
//! assert_eq!(geomean(&[1.0, 4.0, 16.0]), Some(4.0));
//! ```

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared gauge of live tool-allocated bytes with peak tracking.
#[derive(Clone, Debug, Default)]
pub struct MemGauge {
    inner: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    live: AtomicU64,
    peak: AtomicU64,
}

impl MemGauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&self, bytes: u64) {
        let live = self.inner.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak.fetch_max(live, Ordering::Relaxed);
    }

    /// Records a release of `bytes`.
    pub fn free(&self, bytes: u64) {
        let prev = self.inner.live.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "gauge underflow: freeing {bytes} of {prev}");
    }

    /// Adjusts by a signed delta (for resize-style updates).
    pub fn adjust(&self, delta: i64) {
        if delta >= 0 {
            self.alloc(delta as u64);
        } else {
            self.free((-delta) as u64);
        }
    }

    /// Sets the live value directly, keeping the peak (for tools that
    /// recompute a modeled total rather than tracking alloc/free deltas,
    /// e.g. archer-sim's shadow/VC accounting).
    pub fn set(&self, bytes: u64) {
        self.inner.live.store(bytes, Ordering::Relaxed);
        self.inner.peak.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Currently live bytes.
    pub fn live(&self) -> u64 {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Resets both counters (between benchmark repetitions).
    pub fn reset(&self) {
        self.inner.live.store(0, Ordering::Relaxed);
        self.inner.peak.store(0, Ordering::Relaxed);
    }
}

/// A compute-node memory model: decides whether an application plus a
/// tool's measured overhead fits, reproducing the paper's OOM outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeModel {
    /// Physical memory of the node in bytes.
    pub total_bytes: u64,
    /// Bytes reserved for OS/runtime before the application starts.
    pub reserved_bytes: u64,
}

/// Outcome of placing a run on a [`NodeModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Fits; payload is the fraction of node memory used (×1000).
    Fits {
        /// Node memory used, in thousandths.
        permille_used: u32,
    },
    /// Exceeds node memory: the run is killed, as ARCHER was on AMG2013_40.
    OutOfMemory,
}

impl NodeModel {
    /// The paper's evaluation node: 32 GB RAM (2×12-core Xeon E5-2695v2);
    /// 1 GB reserved for system software.
    pub fn paper_node() -> Self {
        NodeModel { total_bytes: 32 << 30, reserved_bytes: 1 << 30 }
    }

    /// A node with the given total memory and 1/32 reserved.
    pub fn with_total(total_bytes: u64) -> Self {
        NodeModel { total_bytes, reserved_bytes: total_bytes / 32 }
    }

    /// Memory available to application + tool.
    pub fn available(&self) -> u64 {
        self.total_bytes.saturating_sub(self.reserved_bytes)
    }

    /// Places an application of `baseline_bytes` plus `tool_bytes` of
    /// detector overhead.
    pub fn place(&self, baseline_bytes: u64, tool_bytes: u64) -> Placement {
        let need = baseline_bytes.saturating_add(tool_bytes);
        if need > self.available() {
            Placement::OutOfMemory
        } else {
            let permille = (need as u128 * 1000 / self.total_bytes.max(1) as u128) as u32;
            Placement::Fits { permille_used: permille }
        }
    }
}

impl Placement {
    /// `true` when the run fits.
    pub fn fits(&self) -> bool {
        matches!(self, Placement::Fits { .. })
    }
}

/// Geometric mean of strictly positive values; `None` when the slice is
/// empty or contains a non-positive value.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Wall-clock stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as f64.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Summary statistics over repeated timed runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Arithmetic mean in seconds.
    pub mean: f64,
    /// Fastest run.
    pub min: f64,
    /// Slowest run.
    pub max: f64,
    /// Number of runs.
    pub runs: usize,
}

impl RunStats {
    /// Computes stats from raw per-run seconds.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return RunStats::default();
        }
        let sum: f64 = samples.iter().sum();
        RunStats {
            mean: sum / samples.len() as f64,
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            runs: samples.len(),
        }
    }
}

/// Times `f` over `runs` repetitions and summarizes.
pub fn time_runs<F: FnMut()>(runs: usize, mut f: F) -> RunStats {
    let samples: Vec<f64> = (0..runs)
        .map(|_| {
            let sw = Stopwatch::start();
            f();
            sw.secs()
        })
        .collect();
    RunStats::from_samples(&samples)
}

/// Formats a byte count for reports (`3.30 MB`, `1.20 GB`, …).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [(&str, u64); 4] = [("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10), ("B", 1)];
    for (name, size) in UNITS {
        if bytes >= size {
            // Plain bytes are exact: no fractional digits.
            return if size == 1 {
                format!("{bytes} {name}")
            } else {
                format!("{:.2} {}", bytes as f64 / size as f64, name)
            };
        }
    }
    "0 B".to_string()
}

/// An aligned ASCII table, used by every table/figure bench harness so
/// reproduced rows look like the paper's.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "table row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Shared atomic counters for the online collector's flush path.
///
/// App threads, compression workers, and the ordered file writer each
/// update their own counters lock-free; [`FlushCounters::snapshot`] reads
/// a coherent-enough view for reporting (counters are monotonic, so a
/// snapshot taken mid-run may mix instants but never goes backwards).
#[derive(Debug, Default)]
pub struct FlushCounters {
    flushes: AtomicU64,
    stall_nanos: AtomicU64,
    compress_nanos: AtomicU64,
    write_nanos: AtomicU64,
    raw_bytes: AtomicU64,
    compressed_bytes: AtomicU64,
}

impl FlushCounters {
    /// Fresh counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one buffer handoff from an app thread.
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds nanoseconds an app thread spent stalled waiting for a drained
    /// buffer (the cost the double-buffering pool exists to eliminate).
    pub fn add_stall(&self, nanos: u64) {
        self.stall_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Adds compression-worker busy time and the block's byte sizes.
    pub fn add_compress(&self, nanos: u64, raw_bytes: u64, compressed_bytes: u64) {
        self.compress_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.raw_bytes.fetch_add(raw_bytes, Ordering::Relaxed);
        self.compressed_bytes.fetch_add(compressed_bytes, Ordering::Relaxed);
    }

    /// Adds file-writer busy time.
    pub fn add_write(&self, nanos: u64) {
        self.write_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Reads the current counter values.
    pub fn snapshot(&self) -> FlushSnapshot {
        FlushSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            stall_nanos: self.stall_nanos.load(Ordering::Relaxed),
            compress_nanos: self.compress_nanos.load(Ordering::Relaxed),
            write_nanos: self.write_nanos.load(Ordering::Relaxed),
            raw_bytes: self.raw_bytes.load(Ordering::Relaxed),
            compressed_bytes: self.compressed_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FlushCounters`], embeddable in run summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushSnapshot {
    /// Buffer flushes handed off by app threads.
    pub flushes: u64,
    /// Total app-thread nanoseconds stalled on buffer handoff.
    pub stall_nanos: u64,
    /// Total compression-worker busy nanoseconds.
    pub compress_nanos: u64,
    /// Total file-writer busy nanoseconds.
    pub write_nanos: u64,
    /// Uncompressed bytes through the compression workers.
    pub raw_bytes: u64,
    /// Compressed frame bytes produced (headers included).
    pub compressed_bytes: u64,
}

impl FlushSnapshot {
    /// Achieved compression ratio (raw / compressed); 1.0 before any
    /// bytes were compressed.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Compression throughput over worker busy time, in bytes/sec.
    pub fn compress_throughput(&self) -> f64 {
        if self.compress_nanos == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / (self.compress_nanos as f64 / 1e9)
        }
    }

    /// Serializes the snapshot into a session info map, so the offline
    /// analyzer can report collection-time flush behaviour after the run.
    pub fn to_info(&self, info: &mut std::collections::BTreeMap<String, String>) {
        info.insert("flush_count".into(), self.flushes.to_string());
        info.insert("flush_stall_nanos".into(), self.stall_nanos.to_string());
        info.insert("flush_compress_nanos".into(), self.compress_nanos.to_string());
        info.insert("flush_write_nanos".into(), self.write_nanos.to_string());
        info.insert("flush_raw_bytes".into(), self.raw_bytes.to_string());
        info.insert("flush_compressed_bytes".into(), self.compressed_bytes.to_string());
    }

    /// Reads a snapshot back from a session info map. `None` when the
    /// session predates flush accounting (no `flush_count` key); other
    /// missing or malformed keys fall back to zero.
    pub fn from_info(info: &std::collections::BTreeMap<String, String>) -> Option<Self> {
        let get = |key: &str| info.get(key).and_then(|v| v.parse().ok()).unwrap_or(0);
        info.get("flush_count")?;
        Some(FlushSnapshot {
            flushes: get("flush_count"),
            stall_nanos: get("flush_stall_nanos"),
            compress_nanos: get("flush_compress_nanos"),
            write_nanos: get("flush_write_nanos"),
            raw_bytes: get("flush_raw_bytes"),
            compressed_bytes: get("flush_compressed_bytes"),
        })
    }

    /// Renders the flush-path report shown by `sword run --stats`.
    pub fn render(&self) -> String {
        let mut t = Table::new("flush path", &["counter", "value"]);
        let ms = |nanos: u64| format!("{:.3} ms", nanos as f64 / 1e6);
        t.row(&["flushes".into(), self.flushes.to_string()]);
        t.row(&["app-thread stall".into(), ms(self.stall_nanos)]);
        t.row(&["compression busy".into(), ms(self.compress_nanos)]);
        t.row(&["write busy".into(), ms(self.write_nanos)]);
        t.row(&["raw bytes".into(), format_bytes(self.raw_bytes)]);
        t.row(&["compressed bytes".into(), format_bytes(self.compressed_bytes)]);
        t.row(&["compression ratio".into(), format!("{:.1}x", self.ratio())]);
        t.row(&[
            "compression throughput".into(),
            format!("{}/s", format_bytes(self.compress_throughput() as u64)),
        ]);
        t.render()
    }
}

/// Cumulative counters for one stage of a streaming pipeline.
///
/// `busy_secs` is the summed busy time of every worker that executed the
/// stage (for serial stages this equals wall time; for fanned-out stages
/// it can exceed wall time — divide by the worker count for an average).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageMetrics {
    /// Stage name (pipeline position order is kept by [`StageTable`]).
    pub name: String,
    /// Summed busy seconds across all executions of this stage.
    pub busy_secs: f64,
    /// Work items processed (intervals, tasks, pairs — stage-defined).
    pub items: u64,
    /// Payload bytes processed, when the stage is byte-oriented.
    pub bytes: u64,
}

impl StageMetrics {
    /// Items per busy second (0 when no time was recorded).
    pub fn items_per_sec(&self) -> f64 {
        if self.busy_secs > 0.0 {
            self.items as f64 / self.busy_secs
        } else {
            0.0
        }
    }
}

/// Per-stage timing/throughput accumulator for a staged pipeline.
///
/// Stages appear in first-recorded order; repeated records under the same
/// name accumulate, and tables from parallel workers merge associatively,
/// so each worker can keep a private table and the reducer folds them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StageTable {
    stages: Vec<StageMetrics>,
}

impl StageTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `secs`/`items`/`bytes` to stage `name`, creating it on first
    /// use.
    pub fn record(&mut self, name: &str, secs: f64, items: u64, bytes: u64) {
        let stage = match self.stages.iter_mut().find(|s| s.name == name) {
            Some(s) => s,
            None => {
                self.stages.push(StageMetrics { name: name.to_string(), ..Default::default() });
                self.stages.last_mut().expect("just pushed")
            }
        };
        stage.busy_secs += secs;
        stage.items += items;
        stage.bytes += bytes;
    }

    /// Times `f`, charging its duration (plus `items`/`bytes`) to `name`,
    /// and returns its result.
    pub fn time<R>(&mut self, name: &str, items: u64, bytes: u64, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(name, start.elapsed().as_secs_f64(), items, bytes);
        result
    }

    /// Folds another table in (stage order of `self` wins; `other`'s new
    /// stages append).
    pub fn merge(&mut self, other: &StageTable) {
        for s in &other.stages {
            self.record(&s.name, s.busy_secs, s.items, s.bytes);
        }
    }

    /// Looks up one stage.
    pub fn get(&self, name: &str) -> Option<&StageMetrics> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Stages in pipeline order.
    pub fn stages(&self) -> &[StageMetrics] {
        &self.stages
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Renders an aligned per-stage report.
    pub fn render(&self) -> String {
        let mut t =
            Table::new("pipeline stages", &["stage", "busy (s)", "items", "items/s", "bytes"]);
        for s in &self.stages {
            t.row(&[
                s.name.clone(),
                format!("{:.4}", s.busy_secs),
                s.items.to_string(),
                format!("{:.0}", s.items_per_sec()),
                format_bytes(s.bytes),
            ]);
        }
        t.render()
    }
}

/// Number of log2 buckets in a [`DurationHist`] (1 µs up to ~17 min).
const DURATION_BUCKETS: usize = 40;

/// Lower bound of the first [`DurationHist`] bucket, in seconds.
const DURATION_FLOOR_SECS: f64 = 1e-6;

/// Fixed-footprint duration histogram with log2 buckets.
///
/// Replaces unbounded per-task `Vec<f64>` sample lists on the analysis
/// hot path: each sample lands in one of 40 log2 buckets
/// (powers of two above 1 µs), which keep both a count and a summed
/// duration so the bucket mean is exact enough for scheduling models
/// while the total and maximum stay exact. Histograms from parallel
/// workers merge associatively.
#[derive(Clone, Debug, PartialEq)]
pub struct DurationHist {
    counts: [u64; DURATION_BUCKETS],
    sums: [f64; DURATION_BUCKETS],
    max_secs: f64,
}

impl Default for DurationHist {
    fn default() -> Self {
        DurationHist { counts: [0; DURATION_BUCKETS], sums: [0.0; DURATION_BUCKETS], max_secs: 0.0 }
    }
}

impl DurationHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(secs: f64) -> usize {
        if secs.is_nan() || secs <= DURATION_FLOOR_SECS {
            return 0;
        }
        let exp = (secs / DURATION_FLOOR_SECS).log2().ceil() as usize;
        exp.min(DURATION_BUCKETS - 1)
    }

    /// Records one duration (negative/NaN samples clamp to the floor
    /// bucket with a zero contribution to the sum).
    pub fn record(&mut self, secs: f64) {
        let secs = if secs.is_finite() && secs > 0.0 { secs } else { 0.0 };
        let b = Self::bucket_of(secs);
        self.counts[b] += 1;
        self.sums[b] += secs;
        if secs > self.max_secs {
            self.max_secs = secs;
        }
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &DurationHist) {
        for b in 0..DURATION_BUCKETS {
            self.counts[b] += other.counts[b];
            self.sums[b] += other.sums[b];
        }
        if other.max_secs > self.max_secs {
            self.max_secs = other.max_secs;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exact sum of all recorded durations.
    pub fn total_secs(&self) -> f64 {
        self.sums.iter().sum()
    }

    /// Exact maximum recorded duration (0 when empty).
    pub fn max_secs(&self) -> f64 {
        self.max_secs
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Non-empty buckets as `(mean_secs, count)` pairs, cheapest first.
    ///
    /// The bucket mean (`sum / count`) preserves the histogram total
    /// exactly, so a scheduling model summing `mean * count` over every
    /// bucket reproduces [`Self::total_secs`].
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..DURATION_BUCKETS)
            .filter(|&b| self.counts[b] > 0)
            .map(|b| (self.sums[b] / self.counts[b] as f64, self.counts[b]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_hist_totals_are_exact() {
        let mut h = DurationHist::new();
        for s in [0.0001, 0.003, 0.003, 1.5, 0.0] {
            h.record(s);
        }
        assert_eq!(h.count(), 5);
        assert!((h.total_secs() - 1.5061).abs() < 1e-12);
        assert_eq!(h.max_secs(), 1.5);
        let rebuilt: f64 = h.buckets().map(|(mean, n)| mean * n as f64).sum();
        assert!((rebuilt - h.total_secs()).abs() < 1e-12);
    }

    #[test]
    fn duration_hist_merge_matches_sequential_records() {
        let mut a = DurationHist::new();
        let mut b = DurationHist::new();
        let mut all = DurationHist::new();
        for (i, s) in [1e-7, 2e-6, 0.5, 0.25, 3.0].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*s);
            } else {
                b.record(*s);
            }
            all.record(*s);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn gauge_tracks_live_and_peak() {
        let g = MemGauge::new();
        g.alloc(100);
        g.alloc(50);
        assert_eq!(g.live(), 150);
        g.free(120);
        assert_eq!(g.live(), 30);
        assert_eq!(g.peak(), 150);
        g.adjust(-30);
        g.adjust(10);
        assert_eq!(g.live(), 10);
        g.reset();
        assert_eq!((g.live(), g.peak()), (0, 0));
    }

    #[test]
    fn gauge_set_keeps_peak() {
        let g = MemGauge::new();
        g.set(500);
        g.set(200);
        assert_eq!(g.live(), 200);
        assert_eq!(g.peak(), 500);
        g.set(900);
        assert_eq!((g.live(), g.peak()), (900, 900));
    }

    #[test]
    fn gauge_is_shared_across_clones() {
        let g = MemGauge::new();
        let g2 = g.clone();
        g2.alloc(64);
        assert_eq!(g.live(), 64);
    }

    #[test]
    fn gauge_concurrent_updates() {
        let g = MemGauge::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.alloc(3);
                        g.free(3);
                    }
                });
            }
        });
        assert_eq!(g.live(), 0);
        assert!(g.peak() >= 3);
    }

    #[test]
    fn node_model_placement() {
        let node = NodeModel::paper_node();
        assert!(node.place(20 << 30, 100 << 20).fits());
        // 28 GB baseline + ~5x shadow — way over.
        assert_eq!(node.place(28 << 30, 5 * (28u64 << 30)), Placement::OutOfMemory);
        // Exactly at the boundary.
        let avail = node.available();
        assert!(node.place(avail, 0).fits());
        assert_eq!(node.place(avail, 1), Placement::OutOfMemory);
    }

    #[test]
    fn node_model_permille() {
        let node = NodeModel { total_bytes: 1000, reserved_bytes: 0 };
        match node.place(900, 50) {
            Placement::Fits { permille_used } => assert_eq!(permille_used, 950),
            _ => panic!("should fit"),
        }
    }

    #[test]
    fn geomean_values() {
        let g = geomean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
        let single = geomean(&[7.5]).unwrap();
        assert!((single - 7.5).abs() < 1e-12);
    }

    #[test]
    fn run_stats() {
        let s = RunStats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.runs, 3);
        assert_eq!(RunStats::from_samples(&[]), RunStats::default());
    }

    #[test]
    fn time_runs_counts() {
        let mut n = 0;
        let stats = time_runs(5, || n += 1);
        assert_eq!(n, 5);
        assert_eq!(stats.runs, 5);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(1023), "1023 B");
        assert_eq!(format_bytes(2 << 20), "2.00 MB");
        assert_eq!(format_bytes(3 << 30), "3.00 GB");
        assert_eq!(format_bytes((33 << 20) / 10), "3.30 MB");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Table II", &["benchmark", "archer", "sword"]);
        t.row_strs(&["c_md", "2", "3"]);
        t.row_strs(&["cpp_qsomp1_long_name", "1", "2"]);
        let s = t.render();
        assert!(s.contains("== Table II =="));
        assert!(s.contains("benchmark"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Columns aligned: "archer" header starts at the same index in all
        // data lines.
        let col = lines[1].find("archer").unwrap();
        assert_eq!(&lines[3][col..col + 1], "2");
        assert_eq!(&lines[4][col..col + 1], "1");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn flush_counters_accumulate_and_snapshot() {
        let c = FlushCounters::new();
        c.record_flush();
        c.record_flush();
        c.add_stall(1_000);
        c.add_compress(5_000, 1000, 100);
        c.add_compress(5_000, 1000, 100);
        c.add_write(2_000);
        let s = c.snapshot();
        assert_eq!(s.flushes, 2);
        assert_eq!(s.stall_nanos, 1_000);
        assert_eq!(s.compress_nanos, 10_000);
        assert_eq!(s.write_nanos, 2_000);
        assert_eq!(s.raw_bytes, 2000);
        assert_eq!(s.compressed_bytes, 200);
        assert!((s.ratio() - 10.0).abs() < 1e-12);
        // 2000 bytes over 10 microseconds = 200 MB/s.
        assert!((s.compress_throughput() - 2e8).abs() < 1.0);
        let rendered = s.render();
        assert!(rendered.contains("flush path"));
        assert!(rendered.contains("compression ratio"));
        assert!(rendered.contains("10.0x"));
    }

    #[test]
    fn flush_counters_concurrent_updates() {
        let c = FlushCounters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..500 {
                        c.record_flush();
                        c.add_compress(10, 100, 10);
                    }
                });
            }
        });
        let s = c.snapshot();
        assert_eq!(s.flushes, 4000);
        assert_eq!(s.raw_bytes, 400_000);
    }

    #[test]
    fn flush_snapshot_defaults() {
        let s = FlushSnapshot::default();
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.compress_throughput(), 0.0);
    }

    #[test]
    fn flush_snapshot_info_roundtrip() {
        let snap = FlushSnapshot {
            flushes: 7,
            stall_nanos: 123,
            compress_nanos: 456_000,
            write_nanos: 789,
            raw_bytes: 1 << 20,
            compressed_bytes: 1 << 17,
        };
        let mut info = std::collections::BTreeMap::new();
        info.insert("threads".to_string(), "4".to_string());
        snap.to_info(&mut info);
        assert_eq!(FlushSnapshot::from_info(&info), Some(snap));
        // Sessions collected before flush accounting have no counters.
        let legacy = std::collections::BTreeMap::new();
        assert_eq!(FlushSnapshot::from_info(&legacy), None);
        // A partially-recorded map still parses, defaulting to zero.
        let mut partial = std::collections::BTreeMap::new();
        partial.insert("flush_count".to_string(), "3".to_string());
        let parsed = FlushSnapshot::from_info(&partial).unwrap();
        assert_eq!(parsed.flushes, 3);
        assert_eq!(parsed.raw_bytes, 0);
    }

    #[test]
    fn stage_table_accumulates_and_orders() {
        let mut t = StageTable::new();
        t.record("load-meta", 0.5, 10, 100);
        t.record("compare", 1.0, 4, 0);
        t.record("load-meta", 0.5, 5, 50);
        assert_eq!(t.stages().len(), 2);
        assert_eq!(t.stages()[0].name, "load-meta");
        let lm = t.get("load-meta").unwrap();
        assert_eq!(lm.items, 15);
        assert_eq!(lm.bytes, 150);
        assert!((lm.busy_secs - 1.0).abs() < 1e-12);
        assert!((lm.items_per_sec() - 15.0).abs() < 1e-9);
        assert!(t.get("missing").is_none());
    }

    #[test]
    fn stage_table_merge_is_associative_enough() {
        let mut a = StageTable::new();
        a.record("build", 1.0, 2, 0);
        let mut b = StageTable::new();
        b.record("compare", 2.0, 3, 0);
        b.record("build", 1.0, 2, 0);
        a.merge(&b);
        assert_eq!(a.get("build").unwrap().items, 4);
        assert_eq!(a.get("compare").unwrap().items, 3);
        assert_eq!(a.stages()[0].name, "build", "self's order wins");
    }

    #[test]
    fn stage_table_time_charges_closure() {
        let mut t = StageTable::new();
        let v = t.time("work", 7, 0, || 42);
        assert_eq!(v, 42);
        let s = t.get("work").unwrap();
        assert_eq!(s.items, 7);
        assert!(s.busy_secs >= 0.0);
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("work"));
        assert!(rendered.contains("stage"));
    }
}
