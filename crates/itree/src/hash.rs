//! A minimal multiply-rotate hasher for small fixed-shape keys.
//!
//! The summarizing builder hashes its merge key — a few machine words —
//! once per recorded access, and the analyzer's memo tables hash small
//! structural keys once per lookup. SipHash's per-hash setup cost is
//! pure overhead there: none of these tables hold attacker-controlled
//! keys (they are derived from the program's own PCs, strides, and fork
//! labels), so a fast non-cryptographic mix in the style of rustc's
//! FxHash is the right trade. Hand-rolled because this workspace takes
//! no external dependencies.

use std::hash::{BuildHasher, Hasher};

/// Multiplier from the FxHash family (a large odd constant with good
/// bit dispersion under multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-rotate hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`BuildHasher`] handing out zero-state [`FxHasher`]s, for use as a
/// `HashMap` hasher parameter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher.hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        let a = (7u32, 1u8, 8u8, 0u32);
        let b = (7u32, 1u8, 8u8, 0u32);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nearby_keys_disperse() {
        // Not a statistical test — just that trivially related keys do
        // not collide and bits spread beyond the low byte.
        let hashes: Vec<u64> = (0..64u32).map(|i| hash_of(&(i, 3u8, 8u8, i ^ 1))).collect();
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), hashes.len(), "no collisions on a small dense key set");
        assert!(hashes.iter().any(|h| h >> 56 != hashes[0] >> 56), "high bits vary");
    }

    #[test]
    fn byte_slices_length_distinguished() {
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
        assert_ne!(hash_of(&b"abcdefgh".as_slice()), hash_of(&b"abcdefg".as_slice()));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: std::collections::HashMap<(u32, u8), u32, FxBuildHasher> =
            std::collections::HashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i % 7) as u8), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(500, (500 % 7) as u8)], 500);
    }
}
