//! The augmented red-black tree machinery.
//!
//! An arena-backed (index-based, `#![forbid(unsafe_code)]`) red-black tree
//! keyed by interval begin address, augmented with the maximum interval end
//! of each subtree so that overlap queries prune whole subtrees — the
//! classic CLRS "interval tree" (§14.3), which the paper cites for its
//! offline phase.

use sword_solver::{Fingerprint, StridedInterval};

/// Sentinel index meaning "no node".
pub(crate) const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Color {
    Red,
    Black,
}

#[derive(Clone, Debug)]
pub(crate) struct Node<V> {
    pub interval: StridedInterval,
    pub value: V,
    pub max_end: u64,
    /// Packed stride-class fingerprint of `interval` (see
    /// [`Fingerprint::pack`]), kept in sync on every interval update so the
    /// candidate walk can run the congruence pre-screen without
    /// re-dividing. Packed to 32 bits so it rides in the node's padding —
    /// growing the node measurably slows the walk on big trees.
    pub fp: u32,
    pub parent: u32,
    pub left: u32,
    pub right: u32,
    pub color: Color,
}

/// An augmented red-black interval tree mapping [`StridedInterval`]s to
/// values.
///
/// Duplicate begin addresses are allowed (later inserts go right), so the
/// tree is a multimap over intervals.
#[derive(Clone, Debug)]
pub struct IntervalTree<V> {
    pub(crate) nodes: Vec<Node<V>>,
    pub(crate) root: u32,
    /// Free list of removed slots for reuse.
    free: Vec<u32>,
    len: usize,
}

/// Stable handle to a node in an [`IntervalTree`]. Invalidated by removal
/// of that node (but not by removal of others).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeRef(pub(crate) u32);

impl<V> Default for IntervalTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IntervalTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        IntervalTree { nodes: Vec::new(), root: NIL, free: Vec::new(), len: 0 }
    }

    /// Creates an empty tree with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        IntervalTree { nodes: Vec::with_capacity(cap), root: NIL, free: Vec::new(), len: 0 }
    }

    /// Number of intervals stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no intervals are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate bytes held by the node arena — used by the memory
    /// accounting that feeds the paper's overhead tables.
    pub fn arena_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<V>>()
    }

    /// The interval stored at `handle`.
    #[inline]
    pub fn interval(&self, handle: NodeRef) -> &StridedInterval {
        &self.nodes[handle.0 as usize].interval
    }

    /// The value stored at `handle`.
    #[inline]
    pub fn value(&self, handle: NodeRef) -> &V {
        &self.nodes[handle.0 as usize].value
    }

    /// Mutable access to the value stored at `handle`.
    #[inline]
    pub fn value_mut(&mut self, handle: NodeRef) -> &mut V {
        &mut self.nodes[handle.0 as usize].value
    }

    /// The stride-class fingerprint cached for the interval at `handle`.
    #[inline]
    pub fn fingerprint(&self, handle: NodeRef) -> Fingerprint {
        let node = &self.nodes[handle.0 as usize];
        Fingerprint::unpack(node.fp, &node.interval)
    }

    /// The bounding box of all stored intervals: the smallest begin and the
    /// largest end, or `None` for an empty tree. O(log n) (leftmost descent
    /// plus the root's `max_end` augmentation).
    pub fn bounds(&self) -> Option<(u64, u64)> {
        if self.root == NIL {
            return None;
        }
        let min_begin = self.nodes[self.minimum(self.root) as usize].interval.begin();
        Some((min_begin, self.nodes[self.root as usize].max_end))
    }

    /// Replaces the interval at `handle`. The new interval must keep the
    /// same begin address (summarization only ever extends the tail end of
    /// an interval), so the BST order is untouched; `max_end` augmentation
    /// is repaired upward.
    pub fn extend_interval(&mut self, handle: NodeRef, interval: StridedInterval) {
        let idx = handle.0;
        assert_eq!(
            self.nodes[idx as usize].interval.begin(),
            interval.begin(),
            "extend_interval must preserve the begin address"
        );
        self.nodes[idx as usize].interval = interval;
        self.nodes[idx as usize].fp = Fingerprint::of(&interval).pack();
        self.fix_max_up_value(idx);
    }

    /// Inserts an interval with its value; returns a handle to the node.
    pub fn insert(&mut self, interval: StridedInterval, value: V) -> NodeRef {
        let idx = self.alloc(interval, value);
        // BST insert keyed on begin().
        let key = self.nodes[idx as usize].interval.begin();
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            let cur_key = self.nodes[cur as usize].interval.begin();
            cur = if key < cur_key {
                self.nodes[cur as usize].left
            } else {
                self.nodes[cur as usize].right
            };
        }
        self.nodes[idx as usize].parent = parent;
        if parent == NIL {
            self.root = idx;
        } else if key < self.nodes[parent as usize].interval.begin() {
            self.nodes[parent as usize].left = idx;
        } else {
            self.nodes[parent as usize].right = idx;
        }
        self.fix_max_up(idx);
        self.insert_fixup(idx);
        self.len += 1;
        NodeRef(idx)
    }

    /// Removes the node at `handle`, returning its interval and value.
    pub fn remove(&mut self, handle: NodeRef) -> (StridedInterval, V)
    where
        V: Default,
    {
        let z = handle.0;
        self.delete_node(z);
        self.len -= 1;
        let node = &mut self.nodes[z as usize];
        let interval = node.interval;
        let value = std::mem::take(&mut node.value);
        self.free.push(z);
        (interval, value)
    }

    /// Iterates all nodes in ascending begin-address order.
    pub fn iter(&self) -> InorderIter<'_, V> {
        InorderIter { tree: self, stack: Vec::new(), cur: self.root }
    }

    /// Visits every stored interval whose `[begin, end)` range overlaps
    /// `[lo, hi)`, using the `max_end` augmentation to prune subtrees.
    pub fn for_each_range_overlap<F: FnMut(NodeRef, &StridedInterval, &V)>(
        &self,
        lo: u64,
        hi: u64,
        mut f: F,
    ) {
        self.overlap_rec(self.root, lo, hi, &mut f);
    }

    fn overlap_rec<F: FnMut(NodeRef, &StridedInterval, &V)>(
        &self,
        idx: u32,
        lo: u64,
        hi: u64,
        f: &mut F,
    ) {
        if idx == NIL {
            return;
        }
        let node = &self.nodes[idx as usize];
        // Nothing in this subtree ends after lo: prune.
        if node.max_end <= lo {
            return;
        }
        self.overlap_rec(node.left, lo, hi, f);
        let iv = node.interval;
        if iv.begin() < hi && lo < iv.end() {
            f(NodeRef(idx), &self.nodes[idx as usize].interval, &self.nodes[idx as usize].value);
        }
        // Keys right of here all have begin ≥ this begin; if this begin is
        // already ≥ hi, no right descendant can overlap.
        if iv.begin() < hi {
            self.overlap_rec(node.right, lo, hi, f);
        }
    }

    /// Returns handles of all stored intervals overlapping `[lo, hi)`.
    pub fn range_overlaps(&self, lo: u64, hi: u64) -> Vec<NodeRef> {
        let mut out = Vec::new();
        self.for_each_range_overlap(lo, hi, |h, _, _| out.push(h));
        out
    }

    // ---- internals -------------------------------------------------------

    fn alloc(&mut self, interval: StridedInterval, value: V) -> u32 {
        let max_end = interval.end();
        let node = Node {
            interval,
            value,
            max_end,
            fp: Fingerprint::of(&interval).pack(),
            parent: NIL,
            left: NIL,
            right: NIL,
            color: Color::Red,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NIL, "interval tree node capacity exceeded");
            self.nodes.push(node);
            idx
        }
    }

    #[inline]
    /// Recomputes a node's `max_end` from its interval and children,
    /// returning whether the stored value changed.
    fn recompute_max(&mut self, idx: u32) -> bool {
        let node = &self.nodes[idx as usize];
        let mut m = node.interval.end();
        if node.left != NIL {
            m = m.max(self.nodes[node.left as usize].max_end);
        }
        if node.right != NIL {
            m = m.max(self.nodes[node.right as usize].max_end);
        }
        let changed = self.nodes[idx as usize].max_end != m;
        self.nodes[idx as usize].max_end = m;
        changed
    }

    /// Repairs `max_end` from `idx` all the way to the root. Structural
    /// edits (insert splice, delete transplant) can leave several nodes
    /// along the path stale at once, so no early exit is sound here.
    fn fix_max_up(&mut self, mut idx: u32) {
        while idx != NIL {
            self.recompute_max(idx);
            idx = self.nodes[idx as usize].parent;
        }
    }

    /// Repairs `max_end` upward after a pure value change at `idx` (no
    /// structural edit), stopping at the first node whose stored value
    /// is already correct: every other node's max was consistent before,
    /// and a node whose value is unchanged feeds its ancestors identical
    /// inputs. Interval extension — the summarizer's per-access hot path
    /// — usually settles within a step or two instead of walking the
    /// full depth.
    fn fix_max_up_value(&mut self, mut idx: u32) {
        while idx != NIL {
            if !self.recompute_max(idx) {
                return;
            }
            idx = self.nodes[idx as usize].parent;
        }
    }

    fn rotate_left(&mut self, x: u32) {
        let y = self.nodes[x as usize].right;
        debug_assert!(y != NIL);
        let y_left = self.nodes[y as usize].left;
        self.nodes[x as usize].right = y_left;
        if y_left != NIL {
            self.nodes[y_left as usize].parent = x;
        }
        let x_parent = self.nodes[x as usize].parent;
        self.nodes[y as usize].parent = x_parent;
        if x_parent == NIL {
            self.root = y;
        } else if self.nodes[x_parent as usize].left == x {
            self.nodes[x_parent as usize].left = y;
        } else {
            self.nodes[x_parent as usize].right = y;
        }
        self.nodes[y as usize].left = x;
        self.nodes[x as usize].parent = y;
        // x is now y's child: recompute bottom-up.
        self.recompute_max(x);
        self.recompute_max(y);
    }

    fn rotate_right(&mut self, x: u32) {
        let y = self.nodes[x as usize].left;
        debug_assert!(y != NIL);
        let y_right = self.nodes[y as usize].right;
        self.nodes[x as usize].left = y_right;
        if y_right != NIL {
            self.nodes[y_right as usize].parent = x;
        }
        let x_parent = self.nodes[x as usize].parent;
        self.nodes[y as usize].parent = x_parent;
        if x_parent == NIL {
            self.root = y;
        } else if self.nodes[x_parent as usize].right == x {
            self.nodes[x_parent as usize].right = y;
        } else {
            self.nodes[x_parent as usize].left = y;
        }
        self.nodes[y as usize].right = x;
        self.nodes[x as usize].parent = y;
        self.recompute_max(x);
        self.recompute_max(y);
    }

    fn color(&self, idx: u32) -> Color {
        if idx == NIL {
            Color::Black
        } else {
            self.nodes[idx as usize].color
        }
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.color(self.nodes[z as usize].parent) == Color::Red {
            let parent = self.nodes[z as usize].parent;
            let grand = self.nodes[parent as usize].parent;
            debug_assert!(grand != NIL, "red parent implies grandparent exists");
            if parent == self.nodes[grand as usize].left {
                let uncle = self.nodes[grand as usize].right;
                if self.color(uncle) == Color::Red {
                    self.nodes[parent as usize].color = Color::Black;
                    self.nodes[uncle as usize].color = Color::Black;
                    self.nodes[grand as usize].color = Color::Red;
                    z = grand;
                } else {
                    if z == self.nodes[parent as usize].right {
                        z = parent;
                        self.rotate_left(z);
                    }
                    let parent = self.nodes[z as usize].parent;
                    let grand = self.nodes[parent as usize].parent;
                    self.nodes[parent as usize].color = Color::Black;
                    self.nodes[grand as usize].color = Color::Red;
                    self.rotate_right(grand);
                }
            } else {
                let uncle = self.nodes[grand as usize].left;
                if self.color(uncle) == Color::Red {
                    self.nodes[parent as usize].color = Color::Black;
                    self.nodes[uncle as usize].color = Color::Black;
                    self.nodes[grand as usize].color = Color::Red;
                    z = grand;
                } else {
                    if z == self.nodes[parent as usize].left {
                        z = parent;
                        self.rotate_right(z);
                    }
                    let parent = self.nodes[z as usize].parent;
                    let grand = self.nodes[parent as usize].parent;
                    self.nodes[parent as usize].color = Color::Black;
                    self.nodes[grand as usize].color = Color::Red;
                    self.rotate_left(grand);
                }
            }
        }
        let root = self.root;
        self.nodes[root as usize].color = Color::Black;
    }

    fn minimum(&self, mut idx: u32) -> u32 {
        while self.nodes[idx as usize].left != NIL {
            idx = self.nodes[idx as usize].left;
        }
        idx
    }

    /// Replaces subtree rooted at `u` with subtree rooted at `v` (CLRS
    /// `RB-TRANSPLANT`). `v` may be NIL; `fix_parent` is returned for the
    /// delete fixup to track the "x" position's parent when x is NIL.
    fn transplant(&mut self, u: u32, v: u32) {
        let u_parent = self.nodes[u as usize].parent;
        if u_parent == NIL {
            self.root = v;
        } else if self.nodes[u_parent as usize].left == u {
            self.nodes[u_parent as usize].left = v;
        } else {
            self.nodes[u_parent as usize].right = v;
        }
        if v != NIL {
            self.nodes[v as usize].parent = u_parent;
        }
    }

    fn delete_node(&mut self, z: u32) {
        let mut y = z;
        let mut y_original_color = self.nodes[y as usize].color;
        // x is the node moving into y's old slot (possibly NIL); we track
        // its parent explicitly because NIL carries no parent pointer.
        let x: u32;
        let x_parent: u32;
        if self.nodes[z as usize].left == NIL {
            x = self.nodes[z as usize].right;
            x_parent = self.nodes[z as usize].parent;
            self.transplant(z, x);
        } else if self.nodes[z as usize].right == NIL {
            x = self.nodes[z as usize].left;
            x_parent = self.nodes[z as usize].parent;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.nodes[z as usize].right);
            y_original_color = self.nodes[y as usize].color;
            x = self.nodes[y as usize].right;
            if self.nodes[y as usize].parent == z {
                x_parent = y;
            } else {
                x_parent = self.nodes[y as usize].parent;
                self.transplant(y, x);
                let z_right = self.nodes[z as usize].right;
                self.nodes[y as usize].right = z_right;
                self.nodes[z_right as usize].parent = y;
            }
            self.transplant(z, y);
            let z_left = self.nodes[z as usize].left;
            self.nodes[y as usize].left = z_left;
            self.nodes[z_left as usize].parent = y;
            self.nodes[y as usize].color = self.nodes[z as usize].color;
        }
        // Repair max_end from the deepest structural change upward.
        if x_parent != NIL {
            self.fix_max_up(x_parent);
        } else if self.root != NIL {
            self.fix_max_up(self.root);
        }
        if y_original_color == Color::Black {
            self.delete_fixup(x, x_parent);
        }
    }

    fn delete_fixup(&mut self, mut x: u32, mut x_parent: u32) {
        while x != self.root && self.color(x) == Color::Black {
            if x_parent == NIL {
                break;
            }
            if x == self.nodes[x_parent as usize].left {
                let mut w = self.nodes[x_parent as usize].right;
                if self.color(w) == Color::Red {
                    self.nodes[w as usize].color = Color::Black;
                    self.nodes[x_parent as usize].color = Color::Red;
                    self.rotate_left(x_parent);
                    w = self.nodes[x_parent as usize].right;
                }
                let w_left = if w == NIL { NIL } else { self.nodes[w as usize].left };
                let w_right = if w == NIL { NIL } else { self.nodes[w as usize].right };
                if self.color(w_left) == Color::Black && self.color(w_right) == Color::Black {
                    if w != NIL {
                        self.nodes[w as usize].color = Color::Red;
                    }
                    x = x_parent;
                    x_parent = self.nodes[x as usize].parent;
                } else {
                    if self.color(w_right) == Color::Black {
                        if w_left != NIL {
                            self.nodes[w_left as usize].color = Color::Black;
                        }
                        if w != NIL {
                            self.nodes[w as usize].color = Color::Red;
                            self.rotate_right(w);
                        }
                        let w2 = self.nodes[x_parent as usize].right;
                        self.finish_delete_left(x_parent, w2);
                    } else {
                        self.finish_delete_left(x_parent, w);
                    }
                    x = self.root;
                    x_parent = NIL;
                }
            } else {
                let mut w = self.nodes[x_parent as usize].left;
                if self.color(w) == Color::Red {
                    self.nodes[w as usize].color = Color::Black;
                    self.nodes[x_parent as usize].color = Color::Red;
                    self.rotate_right(x_parent);
                    w = self.nodes[x_parent as usize].left;
                }
                let w_left = if w == NIL { NIL } else { self.nodes[w as usize].left };
                let w_right = if w == NIL { NIL } else { self.nodes[w as usize].right };
                if self.color(w_left) == Color::Black && self.color(w_right) == Color::Black {
                    if w != NIL {
                        self.nodes[w as usize].color = Color::Red;
                    }
                    x = x_parent;
                    x_parent = self.nodes[x as usize].parent;
                } else {
                    if self.color(w_left) == Color::Black {
                        if w_right != NIL {
                            self.nodes[w_right as usize].color = Color::Black;
                        }
                        if w != NIL {
                            self.nodes[w as usize].color = Color::Red;
                            self.rotate_left(w);
                        }
                        let w2 = self.nodes[x_parent as usize].left;
                        self.finish_delete_right(x_parent, w2);
                    } else {
                        self.finish_delete_right(x_parent, w);
                    }
                    x = self.root;
                    x_parent = NIL;
                }
            }
        }
        if x != NIL {
            self.nodes[x as usize].color = Color::Black;
        }
    }

    fn finish_delete_left(&mut self, x_parent: u32, w: u32) {
        if w != NIL {
            self.nodes[w as usize].color = self.nodes[x_parent as usize].color;
            let w_right = self.nodes[w as usize].right;
            if w_right != NIL {
                self.nodes[w_right as usize].color = Color::Black;
            }
        }
        self.nodes[x_parent as usize].color = Color::Black;
        self.rotate_left(x_parent);
    }

    fn finish_delete_right(&mut self, x_parent: u32, w: u32) {
        if w != NIL {
            self.nodes[w as usize].color = self.nodes[x_parent as usize].color;
            let w_left = self.nodes[w as usize].left;
            if w_left != NIL {
                self.nodes[w_left as usize].color = Color::Black;
            }
        }
        self.nodes[x_parent as usize].color = Color::Black;
        self.rotate_right(x_parent);
    }

    // ---- invariant checking (test support) -------------------------------

    /// Verifies the red-black and augmentation invariants; panics with a
    /// description on violation. Exposed (not `cfg(test)`) so integration
    /// and property tests in dependent crates can call it.
    pub fn assert_invariants(&self) {
        if self.root == NIL {
            assert_eq!(self.len, 0, "empty tree with non-zero len");
            return;
        }
        assert_eq!(self.nodes[self.root as usize].parent, NIL, "root has a parent");
        assert_eq!(self.color(self.root), Color::Black, "root must be black");
        let (black_height, count, _min, _max) = self.check_rec(self.root);
        let _ = black_height;
        assert_eq!(count, self.len, "node count mismatch");
    }

    fn check_rec(&self, idx: u32) -> (usize, usize, u64, u64) {
        if idx == NIL {
            return (1, 0, u64::MAX, 0);
        }
        let node = &self.nodes[idx as usize];
        if node.color == Color::Red {
            assert_eq!(self.color(node.left), Color::Black, "red-red violation (left)");
            assert_eq!(self.color(node.right), Color::Black, "red-red violation (right)");
        }
        if node.left != NIL {
            assert_eq!(self.nodes[node.left as usize].parent, idx, "left parent link");
            assert!(
                self.nodes[node.left as usize].interval.begin() <= node.interval.begin(),
                "BST order (left)"
            );
        }
        if node.right != NIL {
            assert_eq!(self.nodes[node.right as usize].parent, idx, "right parent link");
            assert!(
                self.nodes[node.right as usize].interval.begin() >= node.interval.begin(),
                "BST order (right)"
            );
        }
        let (lb, lc, _lmin, lmax) = self.check_rec(node.left);
        let (rb, rc, _rmin, rmax) = self.check_rec(node.right);
        assert_eq!(lb, rb, "black height mismatch");
        let expect_max = node.interval.end().max(lmax).max(rmax);
        assert_eq!(node.max_end, expect_max, "max_end augmentation stale at {idx}");
        assert_eq!(node.fp, Fingerprint::of(&node.interval).pack(), "fingerprint stale at {idx}");
        let black = lb + usize::from(node.color == Color::Black);
        (black, lc + rc + 1, 0, expect_max)
    }

    /// Height of the tree (test support; ~2·log₂(n) for a valid RB tree).
    pub fn height(&self) -> usize {
        fn rec<V>(t: &IntervalTree<V>, idx: u32) -> usize {
            if idx == NIL {
                0
            } else {
                1 + rec(t, t.nodes[idx as usize].left).max(rec(t, t.nodes[idx as usize].right))
            }
        }
        rec(self, self.root)
    }
}

/// In-order iterator over an [`IntervalTree`].
pub struct InorderIter<'a, V> {
    tree: &'a IntervalTree<V>,
    stack: Vec<u32>,
    cur: u32,
}

impl<'a, V> Iterator for InorderIter<'a, V> {
    type Item = (NodeRef, &'a StridedInterval, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while self.cur != NIL {
            self.stack.push(self.cur);
            self.cur = self.tree.nodes[self.cur as usize].left;
        }
        let idx = self.stack.pop()?;
        self.cur = self.tree.nodes[idx as usize].right;
        let node = &self.tree.nodes[idx as usize];
        Some((NodeRef(idx), &node.interval, &node.value))
    }
}
