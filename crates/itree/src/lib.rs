//! Self-balancing interval trees for SWORD's offline race analysis.
//!
//! The offline phase summarizes each thread's memory accesses within one
//! barrier interval into an *augmented red-black interval tree* (§III-B of
//! the paper): a node holds a strided interval — base address, stride,
//! count, access size — plus the access metadata (R/W, program counter,
//! mutex set, atomicity), so a contiguous or strided sweep over an array
//! costs one node instead of one node per access. Race detection then
//! compares the trees of concurrent threads: coarse `[begin, end)` overlap
//! is found with the tree's `max_end` augmentation, and candidates are
//! confirmed with the exact strided-overlap constraint solve from
//! [`sword_solver`].
//!
//! Complexity matches the paper's §III-B analysis: building a tree from
//! `N` accesses is `O(N log N)`; comparing two trees with `M` nodes is
//! `O(M log M)`; summarization makes `M ≤ N` (often `M ≪ N`).
//!
//! # Example
//!
//! ```
//! use sword_itree::{count_exact_overlaps, SummarizingBuilder};
//!
//! // Two threads sweep adjacent halves of an array; merge keys model
//! // (source line, is_write).
//! let mut t0: SummarizingBuilder<(&str, bool), ()> = SummarizingBuilder::new();
//! let mut t1 = SummarizingBuilder::new();
//! for i in 0..500u64 {
//!     t0.insert_with(("w", true), 0x1000 + i * 8, 8, || ());
//! }
//! for i in 499..1000u64 {
//!     t1.insert_with(("r", false), 0x1000 + i * 8, 8, || ());
//! }
//! let a = t0.finish();
//! let b = t1.finish();
//!
//! // 500 accesses each, one strided node each…
//! assert_eq!((a.len(), b.len()), (1, 1));
//! // …and exactly the boundary element overlaps.
//! assert_eq!(count_exact_overlaps(&a, &b), 1);
//! ```

#![forbid(unsafe_code)]

mod hash;
mod tree;

pub use hash::{FxBuildHasher, FxHasher};
pub use sword_solver::{strided_overlap, Fingerprint, StridedInterval};
pub use tree::{IntervalTree, NodeRef};

use std::collections::HashMap;
use std::hash::Hash;

/// Outcome of a [`SummarizingBuilder::insert_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The access extended an existing node (array sweep continuing).
    Extended(NodeRef),
    /// The access repeated the previous one exactly; nothing changed.
    Duplicate(NodeRef),
    /// A fresh node was inserted.
    New(NodeRef),
}

impl MergeOutcome {
    /// The node now covering the access.
    pub fn node(&self) -> NodeRef {
        match *self {
            MergeOutcome::Extended(n) | MergeOutcome::Duplicate(n) | MergeOutcome::New(n) => n,
        }
    }

    /// `true` unless a fresh node was created.
    pub fn merged(&self) -> bool {
        !matches!(self, MergeOutcome::New(_))
    }
}

/// How many recent progressions per merge key the builder tracks. Two
/// slots handle the common "interleaved progressions from one source
/// line" pattern (e.g. `d = a[i] - a[j]` in an i/j double loop), which a
/// single-slot cache degrades to one node per access on.
const MERGE_HISTORY: usize = 2;

/// Largest base→second-element gap accepted when starting a stride
/// hypothesis. Gaps beyond this (e.g. two unrelated operands on the same
/// source line) must not seed a progression, or one wrong guess poisons
/// the node for every later access.
const MAX_STRIDE_BYTES: u64 = 4096;

#[derive(Clone, Copy, Debug)]
struct MergeSlot {
    node: NodeRef,
    /// Authoritative interval of this progression. The tree node lags
    /// behind while a run is open (see `dirty`), so the per-access hot
    /// path never touches the tree: extension decisions read and write
    /// this copy, and the accumulated extent is flushed in one
    /// `extend_interval` when the slot retires.
    iv: StridedInterval,
    /// Whether `iv` has extensions the tree node has not seen yet.
    dirty: bool,
    /// A second element observed after a single access, held back until a
    /// third access confirms the stride (or the slot is retired, at which
    /// point it is materialized as its own node).
    pending: Option<u64>,
}

/// Builds an [`IntervalTree`] from a stream of accesses, summarizing
/// consecutive same-provenance accesses into strided intervals.
///
/// `K` is the merge key — in SWORD it is (program counter, R/W, access
/// size, mutex set, atomicity): only accesses that are equivalent for race
/// reporting may share a node. The builder keeps the most recent
/// progressions per key and extends one when the next access continues
/// its (confirmed) arithmetic progression, which is exactly the shape
/// instrumented array loops emit.
#[derive(Clone, Debug)]
pub struct SummarizingBuilder<K: Hash + Eq + Clone, V> {
    tree: IntervalTree<V>,
    /// Most-recent-first rings of live progressions, one per distinct
    /// key, indexed by [`SummarizingBuilder::index`].
    rings: Vec<[Option<MergeSlot>; MERGE_HISTORY]>,
    /// Key → ring index. Hashed with [`FxBuildHasher`]: the key is a few
    /// machine words hashed once per recorded access, where SipHash's
    /// setup cost dominates the lookup.
    index: HashMap<K, u32, FxBuildHasher>,
    /// Direct-mapped one-way cache in front of `index`, indexed by the
    /// key hash's high bits — the per-access fast path. An instrumented
    /// loop body cycles through a handful of source lines (a 5-operand
    /// stencil touches 5 keys per iteration), so almost every access
    /// resolves here with one compare instead of a map probe.
    memo: Vec<Option<(K, u32)>>,
    accesses: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> Default for SummarizingBuilder<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Entries in the [`SummarizingBuilder::memo`] direct map. Sized for the
/// working set of distinct source lines a compiled loop nest touches
/// between barriers; collisions just fall back to the map probe.
const KEY_CACHE_WAYS: usize = 64;

impl<K: Hash + Eq + Clone, V: Clone> SummarizingBuilder<K, V> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SummarizingBuilder {
            tree: IntervalTree::new(),
            rings: Vec::new(),
            index: HashMap::default(),
            memo: vec![None; KEY_CACHE_WAYS],
            accesses: 0,
        }
    }

    /// Number of raw accesses inserted (the paper's `N`).
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Number of tree nodes (the paper's `M ≤ N`). Pending second
    /// elements are not counted until confirmed or flushed.
    pub fn node_count(&self) -> usize {
        self.tree.len()
    }

    /// The ring index for `key`, creating an empty ring for a fresh key.
    /// Resolves through the direct-mapped key cache before probing the
    /// map.
    #[inline]
    fn ring_of(&mut self, key: &K) -> u32 {
        // The Fx multiply concentrates entropy in the high bits; the low
        // bits of a product are too regular to index with.
        let h = std::hash::BuildHasher::hash_one(&FxBuildHasher, key);
        let mi = (h >> 58) as usize & (KEY_CACHE_WAYS - 1);
        if let Some((k, ri)) = &self.memo[mi] {
            if k == key {
                return *ri;
            }
        }
        let ri = match self.index.get(key) {
            Some(&ri) => ri,
            None => {
                let ri = self.rings.len() as u32;
                self.rings.push([None; MERGE_HISTORY]);
                self.index.insert(key.clone(), ri);
                ri
            }
        };
        self.memo[mi] = Some((key.clone(), ri));
        ri
    }

    /// Inserts one access of `size` bytes at `addr` with merge key `key`.
    /// `value` is stored only when a new node is created (merged accesses
    /// share the representative's value).
    pub fn insert_with(
        &mut self,
        key: K,
        addr: u64,
        size: u64,
        value: impl FnOnce() -> V,
    ) -> MergeOutcome {
        self.accesses += 1;
        let ri = self.ring_of(&key) as usize;
        for i in 0..MERGE_HISTORY {
            let Some(slot) = self.rings[ri][i] else { continue };
            if slot.iv.size != size {
                continue;
            }
            let outcome = match_slot(&slot.iv, slot.pending, addr);
            let ring = &mut self.rings[ri];
            let result = match outcome {
                SlotMatch::None => continue,
                SlotMatch::Covered => MergeOutcome::Duplicate(slot.node),
                SlotMatch::Extend(extended) => {
                    ring[i] = Some(MergeSlot {
                        node: slot.node,
                        iv: extended,
                        dirty: true,
                        pending: None,
                    });
                    MergeOutcome::Extended(slot.node)
                }
                SlotMatch::Pend => {
                    ring[i] = Some(MergeSlot { pending: Some(addr), ..slot });
                    MergeOutcome::Extended(slot.node)
                }
                SlotMatch::PendingRepeat => MergeOutcome::Duplicate(slot.node),
            };
            // Promote the hit to the front of the ring.
            self.rings[ri][..=i].rotate_right(1);
            return result;
        }
        // No progression matched: start a new one, retiring the oldest.
        let iv = StridedInterval::single(addr, size);
        let node = self.tree.insert(iv, value());
        let ring = &mut self.rings[ri];
        let retired = ring[MERGE_HISTORY - 1];
        ring.rotate_right(1);
        ring[0] = Some(MergeSlot { node, iv, dirty: false, pending: None });
        if let Some(slot) = retired {
            self.retire(slot);
        }
        MergeOutcome::New(node)
    }

    /// Flushes a slot leaving the ring: writes its accumulated extent to
    /// the tree node in one `extend_interval`, and gives an unconfirmed
    /// second element its own single node (it still represents a real
    /// access, sharing the representative's value).
    fn retire(&mut self, slot: MergeSlot) {
        if slot.dirty {
            self.tree.extend_interval(slot.node, slot.iv);
        }
        if let Some(p) = slot.pending {
            let value = self.tree.value(slot.node).clone();
            self.tree.insert(StridedInterval::single(p, slot.iv.size), value);
        }
    }

    /// Finishes the build, flushing open progressions and unconfirmed
    /// pendings, and returns the tree.
    pub fn finish(mut self) -> IntervalTree<V> {
        let rings = std::mem::take(&mut self.rings);
        for ring in rings {
            for slot in ring.into_iter().flatten() {
                self.retire(slot);
            }
        }
        self.tree
    }

    /// Read access to the tree under construction. Note: pending second
    /// elements and the unflushed extents of still-open progressions are
    /// not yet visible here.
    pub fn tree(&self) -> &IntervalTree<V> {
        &self.tree
    }
}

enum SlotMatch {
    /// Not this progression.
    None,
    /// Already covered by the interval: nothing to do.
    Covered,
    /// Grow the interval to this shape.
    Extend(StridedInterval),
    /// Hold `addr` as the unconfirmed second element.
    Pend,
    /// Repeats the currently pending element.
    PendingRepeat,
}

fn match_slot(iv: &StridedInterval, pending: Option<u64>, addr: u64) -> SlotMatch {
    // 1. Already covered (loop-invariant operand, repeated sweep).
    if addr >= iv.base
        && addr <= iv.base + iv.stride * iv.count
        && (iv.count == 0 && addr == iv.base
            || iv.stride > 0 && (addr - iv.base).is_multiple_of(iv.stride))
    {
        return SlotMatch::Covered;
    }
    if iv.count >= 1 {
        // 2. The next element of a confirmed progression.
        if addr == iv.base + iv.stride * (iv.count + 1) {
            return SlotMatch::Extend(StridedInterval::new(
                iv.base,
                iv.stride,
                iv.count + 1,
                iv.size,
            ));
        }
        return SlotMatch::None;
    }
    match pending {
        Some(p) => {
            if addr == p {
                return SlotMatch::PendingRepeat;
            }
            // 3. Third element confirming the stride hypothesis
            //    (base, p, addr in arithmetic progression).
            if addr > p && addr - p == p - iv.base {
                return SlotMatch::Extend(StridedInterval::new(iv.base, p - iv.base, 2, iv.size));
            }
            SlotMatch::None
        }
        None => {
            // 4. A plausible second element starts a stride hypothesis.
            if addr > iv.base && addr - iv.base <= MAX_STRIDE_BYTES {
                SlotMatch::Pend
            } else {
                SlotMatch::None
            }
        }
    }
}

/// Visits every pair of intervals — one from each tree — whose coarse
/// `[begin, end)` ranges overlap. This is the tree-vs-tree comparison of
/// the paper's offline algorithm: each node of `a` performs an augmented
/// search in `b`. The caller applies the exact strided/mutex/atomic race
/// conditions to each candidate pair.
pub fn for_each_candidate_pair<VA, VB, F>(a: &IntervalTree<VA>, b: &IntervalTree<VB>, mut f: F)
where
    F: FnMut(&StridedInterval, &VA, &StridedInterval, &VB),
{
    for (_, ia, va) in a.iter() {
        b.for_each_range_overlap(ia.begin(), ia.end(), |_, ib, vb| {
            f(ia, va, ib, vb);
        });
    }
}

/// Like [`for_each_candidate_pair`], but hands the caller each node's
/// cached stride-class [`Fingerprint`] so the congruence pre-screen can run
/// during the walk without recomputing `base % stride` per pair.
pub fn for_each_candidate_pair_fp<VA, VB, F>(a: &IntervalTree<VA>, b: &IntervalTree<VB>, mut f: F)
where
    F: FnMut(&StridedInterval, Fingerprint, &VA, &StridedInterval, Fingerprint, &VB),
{
    for (ha, ia, va) in a.iter() {
        let fa = a.fingerprint(ha);
        b.for_each_range_overlap(ia.begin(), ia.end(), |hb, ib, vb| {
            f(ia, fa, va, ib, b.fingerprint(hb), vb);
        });
    }
}

/// Convenience: counts candidate pairs that also pass the exact
/// strided-overlap constraint check.
pub fn count_exact_overlaps<VA, VB>(a: &IntervalTree<VA>, b: &IntervalTree<VB>) -> usize {
    let mut n = 0;
    for_each_candidate_pair(a, b, |ia, _, ib, _| {
        if strided_overlap(ia, ib) {
            n += 1;
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(base: u64, stride: u64, count: u64, size: u64) -> StridedInterval {
        StridedInterval::new(base, stride, count, size)
    }

    #[test]
    fn insert_and_query_basic() {
        let mut t = IntervalTree::new();
        t.insert(iv(10, 0, 0, 4), "a");
        t.insert(iv(20, 0, 0, 4), "b");
        t.insert(iv(5, 0, 0, 20), "c"); // covers [5,25)
        t.assert_invariants();
        let hits = t.range_overlaps(12, 13);
        let names: Vec<_> = hits.iter().map(|&h| *t.value(h)).collect();
        assert_eq!(names, vec!["c", "a"]); // in-order by begin
        assert!(t.range_overlaps(25, 30).is_empty());
        assert_eq!(t.range_overlaps(0, 100).len(), 3);
    }

    #[test]
    fn overlap_query_is_half_open() {
        let mut t = IntervalTree::new();
        t.insert(iv(10, 0, 0, 4), ()); // [10,14)
        assert!(t.range_overlaps(14, 20).is_empty(), "touching at end is no overlap");
        assert!(t.range_overlaps(0, 10).is_empty(), "touching at begin is no overlap");
        assert_eq!(t.range_overlaps(13, 14).len(), 1);
        assert_eq!(t.range_overlaps(10, 11).len(), 1);
    }

    #[test]
    fn many_inserts_stay_balanced() {
        let mut t = IntervalTree::new();
        for i in 0..4096u64 {
            t.insert(iv(i * 8, 0, 0, 8), i);
        }
        t.assert_invariants();
        // RB height bound: ≤ 2·log2(n+1).
        let bound = 2 * (usize::BITS - (t.len() + 1).leading_zeros()) as usize;
        assert!(t.height() <= bound, "height {} exceeds RB bound {}", t.height(), bound);
    }

    #[test]
    fn ascending_and_descending_inserts() {
        for descending in [false, true] {
            let mut t = IntervalTree::new();
            for i in 0..1000u64 {
                let k = if descending { 999 - i } else { i };
                t.insert(iv(k * 4, 0, 0, 4), ());
            }
            t.assert_invariants();
            assert_eq!(t.len(), 1000);
            let all: Vec<u64> = t.iter().map(|(_, iv, _)| iv.begin()).collect();
            let mut sorted = all.clone();
            sorted.sort_unstable();
            assert_eq!(all, sorted, "in-order iteration is sorted");
        }
    }

    #[test]
    fn remove_keeps_invariants() {
        let mut t: IntervalTree<u64> = IntervalTree::new();
        let handles: Vec<_> = (0..512u64).map(|i| t.insert(iv(i * 16, 0, 0, 8), i)).collect();
        // Remove every third node.
        for (i, h) in handles.iter().enumerate() {
            if i % 3 == 0 {
                let (ivl, v) = t.remove(*h);
                assert_eq!(ivl.begin(), (i as u64) * 16);
                assert_eq!(v, i as u64);
                t.assert_invariants();
            }
        }
        assert_eq!(t.len(), 512 - 171);
        // Removed intervals no longer found.
        assert!(t.range_overlaps(0, 8).is_empty());
        assert_eq!(t.range_overlaps(16, 24).len(), 1);
    }

    #[test]
    fn remove_reuses_slots() {
        let mut t: IntervalTree<()> = IntervalTree::new();
        let h = t.insert(iv(0, 0, 0, 8), ());
        t.remove(h);
        let before = t.arena_bytes();
        for i in 0..1 {
            t.insert(iv(100 + i, 0, 0, 8), ());
        }
        assert_eq!(t.arena_bytes(), before, "freed slot is reused");
    }

    #[test]
    fn builder_summarizes_array_sweep() {
        // Thread writes a[0..1000] of 8 bytes from one PC: 1000 accesses →
        // 1 node.
        let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
        for i in 0..1000u64 {
            b.insert_with(7, 0x1000 + i * 8, 8, || ());
        }
        assert_eq!(b.access_count(), 1000);
        assert_eq!(b.node_count(), 1);
        let t = b.finish();
        let (_, ivl, _) = t.iter().next().unwrap();
        assert_eq!(*ivl, iv(0x1000, 8, 999, 8));
    }

    #[test]
    fn builder_handles_strided_sweep() {
        // Every 4th element: stride 32.
        let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
        for i in 0..100u64 {
            b.insert_with(1, i * 32, 8, || ());
        }
        assert_eq!(b.node_count(), 1);
        let t = b.finish();
        assert_eq!(*t.iter().next().unwrap().1, iv(0, 32, 99, 8));
    }

    #[test]
    fn builder_splits_on_key_change() {
        let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
        b.insert_with(1, 0, 8, || ());
        b.insert_with(2, 8, 8, || ()); // different PC: no merge
        b.insert_with(1, 8, 8, || ()); // extends node for key 1
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn builder_splits_on_stride_break() {
        let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
        assert!(matches!(b.insert_with(1, 0, 8, || ()), MergeOutcome::New(_)));
        assert!(matches!(b.insert_with(1, 8, 8, || ()), MergeOutcome::Extended(_)));
        assert!(matches!(b.insert_with(1, 16, 8, || ()), MergeOutcome::Extended(_)));
        // Jump breaks the progression.
        assert!(matches!(b.insert_with(1, 100, 8, || ()), MergeOutcome::New(_)));
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn builder_duplicate_access() {
        let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
        b.insert_with(1, 40, 8, || ());
        assert!(matches!(b.insert_with(1, 40, 8, || ()), MergeOutcome::Duplicate(_)));
        b.insert_with(1, 48, 8, || ());
        assert!(matches!(b.insert_with(1, 48, 8, || ()), MergeOutcome::Duplicate(_)));
        assert_eq!(b.node_count(), 1);
    }

    #[test]
    fn builder_backward_access_starts_new_node() {
        let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
        b.insert_with(1, 100, 8, || ());
        assert!(matches!(b.insert_with(1, 50, 8, || ()), MergeOutcome::New(_)));
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn builder_revisit_of_covered_element_is_duplicate() {
        let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
        for i in 0..10u64 {
            b.insert_with(1, i * 8, 8, || ());
        }
        // Re-reading an element already inside the progression adds
        // nothing.
        assert!(matches!(b.insert_with(1, 24, 8, || ()), MergeOutcome::Duplicate(_)));
        // Off-stride revisit does not merge.
        assert!(matches!(b.insert_with(1, 25, 8, || ()), MergeOutcome::New(_)));
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn builder_interleaved_progressions_share_key() {
        // The c_md pattern: one source line alternates a loop-invariant
        // operand with a sweeping one. The two-slot history keeps both
        // progressions live: 2 nodes, not ~2·n.
        let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
        for j in 0..100u64 {
            b.insert_with(7, 0x5000, 8, || ()); // invariant a[i]
            b.insert_with(7, 0x8000 + j * 8, 8, || ()); // sweeping a[j]
        }
        assert_eq!(b.node_count(), 2, "two interleaved progressions, two nodes");
    }

    #[test]
    fn paper_interval_tree_example() {
        // §III-B example: `a[i] = a[i-1]`, 1000 ints, 2 threads with static
        // halves. Thread 0 writes a[1..500] reads a[0..499]; thread 1
        // writes a[500..1000] reads a[499..999]. The write of a[499] by T0
        // and read of a[499] by T1 overlap.
        let base = 0x100u64;
        let elt = 4u64;
        let mut t0: SummarizingBuilder<(u32, bool), ()> = SummarizingBuilder::new();
        for i in 1..500u64 {
            t0.insert_with((1, true), base + i * elt, elt, || ()); // write a[i]
            t0.insert_with((1, false), base + (i - 1) * elt, elt, || ()); // read a[i-1]
        }
        let mut t1: SummarizingBuilder<(u32, bool), ()> = SummarizingBuilder::new();
        for i in 500..1000u64 {
            t1.insert_with((1, true), base + i * elt, elt, || ());
            t1.insert_with((1, false), base + (i - 1) * elt, elt, || ());
        }
        assert_eq!(t0.node_count(), 2);
        assert_eq!(t1.node_count(), 2);
        let a = t0.finish();
        let b = t1.finish();
        // Candidates: T0.writes [a1..a500) vs T1.reads [a499..a999).
        assert_eq!(count_exact_overlaps(&a, &b), 1);
    }

    #[test]
    fn candidate_pairs_require_exact_check() {
        // Figure 4: interleaved stride-8 size-4 accesses. Range overlap
        // yields a candidate, exact check rejects it.
        let mut a = IntervalTree::new();
        a.insert(iv(10, 8, 4, 4), ());
        let mut b = IntervalTree::new();
        b.insert(iv(14, 8, 4, 4), ());
        let mut candidates = 0;
        for_each_candidate_pair(&a, &b, |_, _, _, _| candidates += 1);
        assert_eq!(candidates, 1);
        assert_eq!(count_exact_overlaps(&a, &b), 0);
    }

    #[test]
    fn empty_tree_queries() {
        let t: IntervalTree<()> = IntervalTree::new();
        assert!(t.is_empty());
        assert!(t.range_overlaps(0, u64::MAX).is_empty());
        t.assert_invariants();
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn duplicate_begin_addresses() {
        let mut t = IntervalTree::new();
        for i in 0..10 {
            t.insert(iv(100, 0, 0, 4), i);
        }
        t.assert_invariants();
        assert_eq!(t.range_overlaps(100, 101).len(), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_iv() -> impl Strategy<Value = StridedInterval> {
        (0u64..500, 0u64..20, 0u64..10, 1u64..9)
            .prop_map(|(b, st, c, sz)| StridedInterval::new(b, st, c, sz))
    }

    proptest! {
        #[test]
        fn invariants_after_random_inserts(ivs in prop::collection::vec(arb_iv(), 0..200)) {
            let mut t = IntervalTree::new();
            for iv in &ivs {
                t.insert(*iv, ());
            }
            t.assert_invariants();
            prop_assert_eq!(t.len(), ivs.len());
        }

        #[test]
        fn range_query_matches_bruteforce(
            ivs in prop::collection::vec(arb_iv(), 0..100),
            lo in 0u64..600, width in 0u64..100,
        ) {
            let hi = lo + width;
            let mut t = IntervalTree::new();
            for (i, iv) in ivs.iter().enumerate() {
                t.insert(*iv, i);
            }
            let mut got: Vec<usize> = t.range_overlaps(lo, hi).iter().map(|&h| *t.value(h)).collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = ivs.iter().enumerate()
                .filter(|(_, iv)| iv.begin() < hi && lo < iv.end())
                .map(|(i, _)| i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn invariants_after_interleaved_removals(
            ivs in prop::collection::vec(arb_iv(), 1..120),
            removals in prop::collection::vec(any::<prop::sample::Index>(), 0..60),
        ) {
            let mut t: IntervalTree<usize> = IntervalTree::new();
            let mut live: Vec<NodeRef> = ivs.iter().enumerate()
                .map(|(i, iv)| t.insert(*iv, i)).collect();
            for r in removals {
                if live.is_empty() { break; }
                let pos = r.index(live.len());
                let h = live.swap_remove(pos);
                t.remove(h);
                t.assert_invariants();
            }
            prop_assert_eq!(t.len(), live.len());
        }

        #[test]
        fn builder_never_loses_accesses(
            // stream of (key, start, step-kind) runs
            runs in prop::collection::vec((0u32..4, 0u64..200, 1u64..16, 1u64..20), 1..20),
        ) {
            let mut b: SummarizingBuilder<u32, ()> = SummarizingBuilder::new();
            let mut oracle: Vec<(u64, u64)> = Vec::new(); // (addr, size)
            for (key, start, stride, n) in runs {
                for i in 0..n {
                    let addr = start + i * stride;
                    b.insert_with(key, addr, 4, || ());
                    oracle.push((addr, 4));
                }
            }
            let t = b.finish();
            t.assert_invariants();
            // Every oracle access address is covered by some tree interval.
            for (addr, size) in oracle {
                for byte in addr..addr + size {
                    let covered = t.range_overlaps(byte, byte + 1).iter().any(|&h| {
                        t.interval(h).contains(byte)
                    });
                    prop_assert!(covered, "byte {} not covered", byte);
                }
            }
        }

        #[test]
        fn builder_summarization_is_sound(
            start in 0u64..100, stride in 1u64..32, n in 1u64..200,
        ) {
            // A pure arithmetic progression collapses to one node once the
            // stride is confirmed (n ≥ 3); shorter runs flush to at most
            // two singles. Every generated address stays covered.
            let mut b: SummarizingBuilder<(), ()> = SummarizingBuilder::new();
            for i in 0..n {
                b.insert_with((), start + i * stride, 4, || ());
            }
            let t = b.finish();
            if n >= 3 {
                prop_assert_eq!(t.len(), 1);
                let (_, iv, _) = t.iter().next().unwrap();
                prop_assert_eq!(iv.len(), n);
            } else {
                prop_assert!(t.len() as u64 <= n);
            }
            for i in 0..n {
                let addr = start + i * stride;
                let covered = t
                    .range_overlaps(addr, addr + 1)
                    .iter()
                    .any(|&h| t.interval(h).contains(addr));
                prop_assert!(covered, "element {} uncovered", i);
            }
        }
    }
}
