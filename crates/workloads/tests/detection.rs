//! Ground-truth validation: every workload is executed under both
//! detectors, and the observed race counts must match its spec — SWORD
//! exactly, ARCHER exactly where the spec pins a schedule (and never more
//! than SWORD elsewhere). No false alarms on race-free kernels by
//! construction of the specs.

use std::path::PathBuf;
use std::sync::Arc;

use archer_sim::{ArcherConfig, ArcherTool};
use sword_offline::{analyze, AnalysisConfig};
use sword_ompsim::{OmpSim, SimConfig};
use sword_runtime::{run_collected, SwordConfig};
use sword_trace::SessionDir;
use sword_workloads::{
    drb_workloads, hpc_workloads, ompscr_workloads, tasking_workloads, RunConfig, Workload,
};

fn sword_count(w: &dyn Workload, cfg: &RunConfig) -> usize {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "sword-wl-{}-{}",
        w.spec().name.replace(['.', '/'], "_"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    run_collected(SwordConfig::new(&dir), SimConfig::default(), |sim| {
        w.execute(sim, cfg);
    })
    .expect("collection");
    let result = analyze(&SessionDir::new(&dir), &AnalysisConfig::sequential()).expect("analysis");
    std::fs::remove_dir_all(&dir).unwrap();
    for race in &result.races {
        eprintln!("[{}] sword: {:?}", w.spec().name, race.key);
    }
    result.race_count()
}

fn archer_count(w: &dyn Workload, cfg: &RunConfig) -> usize {
    let tool = Arc::new(ArcherTool::new(ArcherConfig::default()));
    let sim = OmpSim::with_tool(tool.clone());
    w.execute(&sim, cfg);
    tool.races().len()
}

fn check_suite(workloads: Vec<Box<dyn Workload>>, cfg: &RunConfig) {
    let mut failures = Vec::new();
    for w in &workloads {
        let spec = w.spec();
        let sword = sword_count(w.as_ref(), cfg);
        let archer = archer_count(w.as_ref(), cfg);
        if sword != spec.sword_races {
            failures.push(format!(
                "{}: sword found {} races, spec says {}",
                spec.name, sword, spec.sword_races
            ));
        }
        match spec.archer_races {
            Some(expected) if archer != expected => {
                failures.push(format!(
                    "{}: archer found {} races, spec says {}",
                    spec.name, archer, expected
                ));
            }
            None if archer > sword => {
                failures.push(format!("{}: archer found {} > sword {}", spec.name, archer, sword));
            }
            _ => {}
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn datarace_bench_suite_matches_ground_truth() {
    check_suite(drb_workloads(), &RunConfig::small());
}

#[test]
fn tasking_suite_matches_ground_truth() {
    check_suite(tasking_workloads(), &RunConfig::small());
}

#[test]
fn tasking_detection_is_thread_count_robust() {
    // Task creation is gated to the master thread, so the ground truth
    // must hold unchanged at 2 and 8 threads.
    for threads in [2, 8] {
        check_suite(tasking_workloads(), &RunConfig::with_threads(threads));
    }
}

#[test]
fn ompscr_suite_matches_ground_truth() {
    check_suite(ompscr_workloads(), &RunConfig::small());
}

#[test]
fn hpc_suite_matches_ground_truth() {
    check_suite(hpc_workloads(), &RunConfig { threads: 6, size: 0 });
}

/// Table IV / Figure 8 core behaviour: on a 64 MB model node, ARCHER
/// completes AMG at sizes 10–30 reporting 4 races, runs out of memory at
/// 40; SWORD's bounded collection completes all sizes and reports 14.
#[test]
fn amg_scaling_archer_ooms_sword_survives() {
    use sword_workloads::hpc::{amg_baseline_bytes, amg_workload};
    const NODE: u64 = 64 << 20;
    let cfg = RunConfig { threads: 6, size: 0 };

    for n in [10u64, 30, 40] {
        let w = amg_workload(n);
        // ARCHER under the node budget.
        let tool = Arc::new(ArcherTool::new(ArcherConfig {
            node_budget: Some(NODE),
            ..Default::default()
        }));
        let sim = OmpSim::with_tool(tool.clone());
        tool.attach_baseline_source(sim.footprint_handle());
        w.execute(&sim, &cfg);
        let stats = tool.stats();
        if n < 40 {
            assert!(!stats.oom, "AMG_{n}: archer must fit ({} modeled)", stats.modeled_tool_bytes);
            assert_eq!(tool.races().len(), 4, "AMG_{n}: archer sees the 4 counter races");
        } else {
            assert!(
                stats.oom,
                "AMG_40 must exceed the node: baseline {} + tool {}",
                amg_baseline_bytes(n),
                stats.modeled_tool_bytes
            );
        }

        // SWORD completes every size and finds all 14 races.
        let sword = sword_count(&w, &cfg);
        assert_eq!(sword, 14, "AMG_{n}: sword race count");
    }
}

#[test]
fn drb_detection_is_thread_count_robust() {
    // The pinned kernels must keep their ground truth at a different team
    // size (8 threads ≈ the paper's smallest configuration).
    let racy: Vec<_> = drb_workloads()
        .into_iter()
        .filter(|w| {
            matches!(
                w.spec().name,
                "nowait-orig-yes" | "privatemissing-orig-yes" | "plusplus-orig-yes"
            )
        })
        .collect();
    check_suite(racy, &RunConfig::with_threads(8));
}
