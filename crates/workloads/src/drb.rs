//! DataRaceBench-like microbenchmarks (§IV-A of the paper).
//!
//! Each kernel keeps the name and race semantics of its DataRaceBench
//! v1.0 counterpart. `-yes` kernels contain the documented race (plus,
//! where the paper reports them, the additional *real but undocumented*
//! races SWORD found — `plusplus-orig-yes`, `privatemissing-orig-yes`);
//! `-no` kernels are race-free controls used to confirm the absence of
//! false alarms.
//!
//! Kernels whose detection outcome is schedule-dependent pin their
//! interleaving with a [`Sequencer`] so the paper's comparisons are
//! reproducible:
//!
//! * `nowait-orig-yes` / `privatemissing-orig-yes` reproduce the §II
//!   shadow-cell **eviction miss**: byte-disjoint reads in the same
//!   8-byte word flood the four shadow cells between the racing
//!   accesses, so ARCHER finds nothing while SWORD (which keeps every
//!   access) reports the races.
//! * `indirectaccess{1..4}-orig-yes` races do **not manifest** on the
//!   executed input (data-dependent subscripts) — both dynamic tools
//!   miss them, exactly as §IV-A reports.

use std::sync::Arc;

use sword_ompsim::{Ctx, OmpSim, Sequencer};

use crate::{RunConfig, Suite, Workload, WorkloadSpec};

/// A workload defined by a spec plus a plain run function — the building
/// block of all three suites.
pub struct Kernel {
    /// Ground truth and metadata.
    pub spec: WorkloadSpec,
    /// The kernel body.
    pub run: fn(&OmpSim, &RunConfig),
}

impl Workload for Kernel {
    fn spec(&self) -> WorkloadSpec {
        self.spec.clone()
    }

    fn execute(&self, sim: &OmpSim, cfg: &RunConfig) {
        (self.run)(sim, cfg);
    }
}

fn spec(
    name: &'static str,
    documented: usize,
    sword: usize,
    archer: Option<usize>,
    notes: &'static str,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        suite: Suite::DataRaceBench,
        documented_races: documented,
        sword_races: sword,
        archer_races: archer,
        notes,
    }
}

/// Round-robin pinned turns: thread `t` runs `body(round)` at ticket
/// `round · span + t`.
pub(crate) fn turns(seq: &Sequencer, w: &Ctx<'_>, rounds: u64, mut body: impl FnMut(u64)) {
    let span = w.team_size();
    let t = w.team_index();
    for r in 0..rounds {
        seq.turn(r * span + t, || body(r));
    }
}

// ---- racy kernels ----------------------------------------------------------

fn antidep1_yes(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(1000);
    let a = sim.alloc::<i64>(n, 1);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            // a[i] = a[i+1] + 1: anti-dependence across chunk boundaries.
            w.for_static(0..n - 1, |i| {
                let v = w.read(&a, i + 1);
                w.write(&a, i, v + 1);
            });
        });
    });
}

fn antidep2_yes(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(64);
    let a = sim.alloc::<i64>(n * n, 1);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            // Row-parallel 2D sweep with a cross-row anti-dependence.
            w.for_static(0..n - 1, |i| {
                for j in 0..n {
                    let v = w.read(&a, (i + 1) * n + j);
                    w.write(&a, i * n + j, v + 1);
                }
            });
        });
    });
}

fn indirectaccess_yes(variant: u64) -> fn(&OmpSim, &RunConfig) {
    // The four DRB variants differ in their subscript tables; on the
    // executed input all remain injective, so the documented race never
    // manifests. The variants use distinct phase shifts.
    match variant {
        1 => |sim, cfg| indirect_body(sim, cfg, 1),
        2 => |sim, cfg| indirect_body(sim, cfg, 3),
        3 => |sim, cfg| indirect_body(sim, cfg, 5),
        _ => |sim, cfg| indirect_body(sim, cfg, 7),
    }
}

fn indirect_body(sim: &OmpSim, cfg: &RunConfig, phase: u64) {
    let n = cfg.size_or(180);
    let a = sim.alloc::<f64>(2 * n + phase, 0.0);
    // Injective subscripts on this input: xa[i] = 2·i + phase.
    let xa: Vec<u64> = (0..n).map(|i| 2 * i + phase).collect();
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_static(0..n, |i| {
                let t = xa[i as usize];
                let v = w.read(&a, t);
                w.write(&a, t, v + i as f64);
            });
        });
    });
}

fn lostupdate1_yes(sim: &OmpSim, cfg: &RunConfig) {
    let sum = sim.alloc::<u64>(1, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(cfg.threads, |w| {
            turns(seq, w, 4, |_| {
                let v = w.read(&sum, 0);
                w.write(&sum, 0, v + 1);
            });
        });
    });
}

fn nowait_yes(sim: &OmpSim, cfg: &RunConfig) {
    // `#pragma omp for nowait` computes a result; another thread consumes
    // it before the (missing) barrier. The consuming read races with the
    // producing write. The filler reads of `word[1]` (byte-disjoint,
    // same shadow word) evict the write's shadow record, so ARCHER
    // misses the race; SWORD keeps every access and reports it.
    let threads = cfg.threads.max(6);
    let word = sim.alloc::<u32>(2, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(threads, |w| {
            let t = w.team_index();
            let last = w.team_size() - 1;
            if t == 0 {
                // Producer: nowait loop writes the result cell.
                seq.turn(0, || {
                    w.for_static_nowait(0..1, |_| {
                        w.write(&word, 0, 42);
                    });
                });
            } else if t < last {
                // Innocent same-word traffic (reads of word[1]).
                seq.turn(t, || {
                    let _ = w.read(&word, 1);
                });
            } else {
                // Consumer reads the result before any barrier.
                seq.turn(last, || {
                    let _ = w.read(&word, 0);
                });
            }
            w.barrier();
        });
    });
}

fn privatemissing_yes(sim: &OmpSim, cfg: &RunConfig) {
    // The loop temporary `tmp` should have been privatized; instead every
    // thread writes and reads the shared cell. Three participants take
    // pinned turns, with four filler threads flooding the shadow word
    // between turns, so ARCHER's four cells never retain a cross-thread
    // record: it reports nothing, while SWORD reports the documented
    // write-write race plus the (real, undocumented) write-read race.
    let _ = cfg;
    let word = sim.alloc::<u32>(2, 0); // word[0] = tmp, word[1] = filler traffic
    let a = sim.alloc::<u32>(3, 5);
    let b = sim.alloc::<u32>(3, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(7, |w| {
            let t = w.team_index();
            if t < 3 {
                // Participant i takes ticket 5·i.
                seq.turn(5 * t, || {
                    let v = w.read(&a, t);
                    w.write(&word, 0, v); // tmp = a[i]   (the missing private)
                    let tmp = w.read(&word, 0);
                    w.write(&b, t, tmp * 2); // b[i] = tmp * 2
                });
            } else {
                // Fillers: after each participant, four byte-disjoint
                // reads recycle all four shadow cells.
                for round in 0..2u64 {
                    seq.turn(5 * round + (t - 2), || {
                        let _ = w.read(&word, 1);
                    });
                }
            }
        });
    });
}

fn plusplus_yes(sim: &OmpSim, cfg: &RunConfig) {
    // output[count++] = input[i]: the documented race is on `count`; the
    // "additional unknown race" all tools report (§IV-A) is the second
    // line pair on the same counter.
    let n = cfg.size_or(64);
    let input = sim.alloc::<u64>(n, 3);
    let output = sim.alloc::<u64>(n, 0);
    let count = sim.alloc::<u64>(1, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(cfg.threads, |w| {
            let span = w.team_size();
            turns(seq, w, (n / span).min(4), |_| {
                let idx = w.read(&count, 0);
                let v = w.read(&input, idx % n);
                w.write(&output, idx % n, v);
                w.write(&count, 0, idx + 1);
            });
        });
    });
}

fn outputdep_yes(sim: &OmpSim, cfg: &RunConfig) {
    // x is written by every iteration and read back: output and true
    // dependences, both documented.
    let n = cfg.size_or(500);
    let b = sim.alloc::<i64>(n, 0);
    let c = sim.alloc::<i64>(n, 2);
    let x = sim.alloc::<i64>(1, 10);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_static(0..n, |i| {
                let xv = w.read(&x, 0);
                w.write(&b, i, xv);
                let cv = w.read(&c, i);
                w.write(&x, 0, cv + i as i64);
            });
        });
    });
}

fn reductionmissing_yes(sim: &OmpSim, cfg: &RunConfig) {
    // Sum reduction without the reduction clause: per-thread partials are
    // accumulated into the shared total unprotected.
    let n = cfg.size_or(512);
    let a = sim.alloc::<f64>(n, 1.5);
    let sum = sim.alloc::<f64>(1, 0.0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(cfg.threads, |w| {
            let mut local = 0.0;
            w.for_static_nowait(0..n, |i| {
                local += w.read(&a, i);
            });
            turns(seq, w, 1, |_| {
                let v = w.read(&sum, 0);
                w.write(&sum, 0, v + local);
            });
            w.barrier();
        });
    });
}

fn simdtruedep_yes(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(800);
    let a = sim.alloc::<i64>(n, 0);
    let b = sim.alloc::<i64>(n, 1);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            // a[i+1] = a[i] + b[i]: true dependence broken by the
            // parallel (modeled simd) loop.
            w.for_static(0..n - 1, |i| {
                let av = w.read(&a, i);
                let bv = w.read(&b, i);
                w.write(&a, i + 1, av + bv);
            });
        });
    });
}

fn sections1_yes(sim: &OmpSim, cfg: &RunConfig) {
    let _ = cfg;
    let v = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(2, |w| {
            w.sections(2, |s| {
                if s == 0 {
                    w.write(&v, 0, 1);
                } else {
                    w.write(&v, 0, 2);
                }
            });
        });
    });
}

fn firstprivatemissing_yes(sim: &OmpSim, cfg: &RunConfig) {
    // `init` should have been firstprivate: the master initializes it
    // inside the region while every other thread reads it.
    let n = cfg.size_or(128);
    let init = sim.alloc::<i64>(1, 0);
    let out = sim.alloc::<i64>(cfg.threads.max(2) as u64, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(cfg.threads.max(2), |w| {
            let t = w.team_index();
            if t == 0 {
                seq.turn(0, || {
                    w.write(&init, 0, n as i64);
                });
            } else {
                seq.turn(t, || {
                    let v = w.read(&init, 0);
                    w.write(&out, t, v * 2);
                });
            }
        });
    });
}

fn lastprivatemissing_yes(sim: &OmpSim, cfg: &RunConfig) {
    // The loop's "last value" is consumed before the (nowait-elided)
    // barrier: write by the last chunk's owner races with the readers.
    let n = cfg.size_or(256);
    let x = sim.alloc::<i64>(1, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(cfg.threads.max(2), |w| {
            let t = w.team_index();
            let last = w.team_size() - 1;
            if t == last {
                // Owner of the loop's final iteration stores the
                // would-be lastprivate value, first in the pinned order.
                seq.turn(0, || {
                    w.write(&x, 0, (n - 1) as i64);
                });
            } else {
                seq.turn(t + 1, || {
                    let _ = w.read(&x, 0);
                });
            }
            w.barrier();
        });
    });
}

fn minusminus_yes(sim: &OmpSim, cfg: &RunConfig) {
    // numNodes--: the decrement mirror of plusplus, draining a worklist
    // counter without protection.
    let n = cfg.size_or(32);
    let remaining = sim.alloc::<i64>(1, 0);
    remaining.set_seq(0, n as i64);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(cfg.threads, |w| {
            turns(seq, w, 3, |_| {
                let v = w.read(&remaining, 0);
                w.write(&remaining, 0, v - 1);
            });
        });
    });
}

fn dynamicschedule_yes(sim: &OmpSim, cfg: &RunConfig) {
    // schedule(dynamic) worksharing followed by an unsynchronized
    // completion flag: every thread stores the flag after its share of
    // the dynamically-claimed work — a write-write race independent of
    // the (nondeterministic) chunk assignment.
    let n = cfg.size_or(200);
    let done_flag = sim.alloc::<u64>(1, 0);
    let a = sim.alloc::<f64>(n, 1.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads.max(2), |w| {
            w.for_dynamic(0..n, 8, |i| {
                let v = w.read(&a, i);
                w.write(&a, i, v * 1.5);
            });
            // After the loop's barrier: all threads write the flag in the
            // same barrier interval.
            w.write(&done_flag, 0, 1);
            w.barrier();
        });
    });
}

fn differentsize_yes(sim: &OmpSim, cfg: &RunConfig) {
    // Sub-word precision: thread 0 sweeps all eight bytes of a word with
    // byte stores; thread 1 stores into byte 3 — overlapping byte ranges
    // inside one shadow word, a race byte-precise engines must catch.
    let _ = cfg;
    let bytes = sim.alloc::<u8>(8, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(2, |w| {
            if w.team_index() == 0 {
                seq.turn(0, || {
                    for i in 0..8 {
                        w.write(&bytes, i, 0xFF);
                    }
                });
            } else {
                seq.turn(1, || {
                    // Byte 6: still resident in the word's four shadow
                    // cells after thread 0's eight byte-stores cycled
                    // them (bytes 4..8 survive).
                    w.write(&bytes, 6, 7);
                });
            }
        });
    });
}

// ---- race-free controls ----------------------------------------------------

fn differentsize_no(sim: &OmpSim, cfg: &RunConfig) {
    // Two threads write byte-disjoint halves of one 8-byte word (a u32
    // each): adjacent but NOT overlapping — neither tool may report it
    // (byte precision within a shadow word).
    let _ = cfg;
    let halves = sim.alloc::<u32>(2, 0); // shares one 8-byte shadow word
    sim.run(|ctx| {
        ctx.parallel(2, |w| {
            let t = w.team_index();
            w.write(&halves, t, t as u32 + 1);
        });
    });
}

fn dynamicschedule_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(200);
    let progress = sim.alloc::<u64>(1, 0);
    let a = sim.alloc::<f64>(n, 1.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads.max(2), |w| {
            w.for_dynamic(0..n, 8, |i| {
                let v = w.read(&a, i);
                w.write(&a, i, v * 1.5);
                w.fetch_add(&progress, 0, 1); // atomic progress: fixed
            });
        });
    });
}

fn firstprivatemissing_no(sim: &OmpSim, cfg: &RunConfig) {
    // Initialization hoisted before the region (sequential, not
    // instrumented) — nothing shared is written in-region.
    let n = cfg.size_or(128);
    let init = sim.alloc::<i64>(1, 0);
    init.set_seq(0, n as i64);
    let out = sim.alloc::<i64>(cfg.threads.max(2) as u64, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads.max(2), |w| {
            let t = w.team_index();
            let v = w.read(&init, 0);
            w.write(&out, t, v * 2);
        });
    });
}

fn lastprivatemissing_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(256);
    let x = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads.max(2), |w| {
            // The barrier restored: for_static closes with one.
            w.for_static(n - 1..n, |i| {
                w.write(&x, 0, i as i64);
            });
            let _ = w.read(&x, 0);
        });
    });
}

fn minusminus_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(32);
    let remaining = sim.alloc::<i64>(1, 0);
    remaining.set_seq(0, n as i64);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            for _ in 0..3 {
                w.atomic_update(&remaining, 0, |v| v - 1);
            }
        });
    });
}

fn antidep1_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(1000);
    let a = sim.alloc::<i64>(n, 1);
    let b = sim.alloc::<i64>(n, 7);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            // Reads and writes target different arrays: no dependence.
            w.for_static(0..n - 1, |i| {
                let v = w.read(&b, i + 1);
                w.write(&a, i, v + 1);
            });
        });
    });
}

fn indirectaccess_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(180);
    let a = sim.alloc::<f64>(n, 0.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            // Identity subscripts: provably disjoint.
            w.for_static(0..n, |i| {
                let v = w.read(&a, i);
                w.write(&a, i, v + 1.0);
            });
        });
    });
}

fn lostupdate1_no(sim: &OmpSim, cfg: &RunConfig) {
    let sum = sim.alloc::<u64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            for _ in 0..4 {
                w.critical("lostupdate1_sum", || {
                    let v = w.read(&sum, 0);
                    w.write(&sum, 0, v + 1);
                });
            }
        });
    });
}

fn nowait_no(sim: &OmpSim, cfg: &RunConfig) {
    let threads = cfg.threads.max(6);
    let word = sim.alloc::<u32>(2, 0);
    sim.run(|ctx| {
        ctx.parallel(threads, |w| {
            if w.team_index() == 0 {
                w.for_static_nowait(0..1, |_| {
                    w.write(&word, 0, 42);
                });
            }
            // The barrier the `-yes` variant is missing.
            w.barrier();
            if w.team_index() == w.team_size() - 1 {
                let _ = w.read(&word, 0);
            }
        });
    });
}

fn privatemissing_no(sim: &OmpSim, cfg: &RunConfig) {
    let _ = cfg;
    // tmp privatized: one slot per thread.
    let tmp = sim.alloc::<u32>(8, 0);
    let a = sim.alloc::<u32>(8, 5);
    let b = sim.alloc::<u32>(8, 0);
    sim.run(|ctx| {
        ctx.parallel(7, |w| {
            let t = w.team_index();
            let v = w.read(&a, t);
            w.write(&tmp, t, v);
            let tv = w.read(&tmp, t);
            w.write(&b, t, tv * 2);
        });
    });
}

fn plusplus_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(64);
    let input = sim.alloc::<u64>(n, 3);
    let output = sim.alloc::<u64>(n, 0);
    let count = sim.alloc::<u64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_static(0..n, |i| {
                // Atomic slot claim: every output index is unique.
                let idx = w.fetch_add(&count, 0, 1);
                let v = w.read(&input, i);
                w.write(&output, idx % n, v);
            });
        });
    });
}

fn reductionmissing_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(512);
    let a = sim.alloc::<f64>(n, 1.5);
    let sum = sim.alloc::<f64>(1, 0.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            let mut local = 0.0;
            w.for_static_nowait(0..n, |i| {
                local += w.read(&a, i);
            });
            w.fetch_add(&sum, 0, local);
            w.barrier();
        });
    });
}

fn sections1_no(sim: &OmpSim, cfg: &RunConfig) {
    let _ = cfg;
    let v = sim.alloc::<i64>(2, 0);
    sim.run(|ctx| {
        ctx.parallel(2, |w| {
            w.sections(2, |s| {
                w.write(&v, s as u64, s as i64 + 1);
            });
        });
    });
}

fn matrixmultiply_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(24);
    let a = sim.alloc::<f64>(n * n, 1.0);
    let b = sim.alloc::<f64>(n * n, 2.0);
    let c = sim.alloc::<f64>(n * n, 0.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            // Row-parallel C = A·B: each thread owns whole rows of C.
            w.for_static(0..n, |i| {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += w.read(&a, i * n + k) * w.read(&b, k * n + j);
                    }
                    w.write(&c, i * n + j, acc);
                }
            });
        });
    });
}

fn jacobi2d_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(32);
    let grid = sim.alloc::<f64>(n * n, 0.0);
    let next = sim.alloc::<f64>(n * n, 0.0);
    for i in 0..n {
        grid.set_seq(i, 100.0); // hot top edge
    }
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            for _step in 0..3 {
                // for_static's implicit barrier separates read and write
                // phases of consecutive sweeps.
                w.for_static(1..n - 1, |i| {
                    for j in 1..n - 1 {
                        let s = w.read(&grid, (i - 1) * n + j)
                            + w.read(&grid, (i + 1) * n + j)
                            + w.read(&grid, i * n + j - 1)
                            + w.read(&grid, i * n + j + 1);
                        w.write(&next, i * n + j, s * 0.25);
                    }
                });
                w.for_static(1..n - 1, |i| {
                    for j in 1..n - 1 {
                        let v = w.read(&next, i * n + j);
                        w.write(&grid, i * n + j, v);
                    }
                });
            }
        });
    });
}

fn outputdep_no(sim: &OmpSim, cfg: &RunConfig) {
    let n = cfg.size_or(500);
    let b = sim.alloc::<i64>(n, 0);
    let c = sim.alloc::<i64>(n, 2);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            // The `x` temporary is simply forwarded: no shared scalar.
            w.for_static(0..n, |i| {
                let cv = w.read(&c, i);
                w.write(&b, i, cv + i as i64);
            });
        });
    });
}

/// The full DRB-like suite, `-yes` kernels first.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Kernel {
            spec: spec(
                "antidep1-orig-yes",
                1,
                1,
                Some(1),
                "anti-dependence a[i] = a[i+1] + 1 across chunk boundaries",
            ),
            run: antidep1_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "antidep2-orig-yes",
                1,
                1,
                Some(1),
                "2D row sweep with cross-row anti-dependence",
            ),
            run: antidep2_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "indirectaccess1-orig-yes",
                1,
                0,
                Some(0),
                "subscript-array race that the executed input never manifests",
            ),
            run: indirectaccess_yes(1),
        }),
        Box::new(Kernel {
            spec: spec(
                "indirectaccess2-orig-yes",
                1,
                0,
                Some(0),
                "variant 2 of the data-dependent subscript race",
            ),
            run: indirectaccess_yes(2),
        }),
        Box::new(Kernel {
            spec: spec(
                "indirectaccess3-orig-yes",
                1,
                0,
                Some(0),
                "variant 3 of the data-dependent subscript race",
            ),
            run: indirectaccess_yes(3),
        }),
        Box::new(Kernel {
            spec: spec(
                "indirectaccess4-orig-yes",
                1,
                0,
                Some(0),
                "variant 4 of the data-dependent subscript race",
            ),
            run: indirectaccess_yes(4),
        }),
        Box::new(Kernel {
            spec: spec(
                "lostupdate1-orig-yes",
                1,
                2,
                Some(2),
                "unprotected shared counter increment (lost update)",
            ),
            run: lostupdate1_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "nowait-orig-yes",
                1,
                1,
                Some(0),
                "result consumed before the missing barrier; ARCHER's record \
                 of the producing write is evicted by same-word reads (§II)",
            ),
            run: nowait_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "privatemissing-orig-yes",
                1,
                2,
                Some(0),
                "missing privatization of a loop temporary; SWORD adds the \
                 undocumented write-read pair; ARCHER loses all records to \
                 cell eviction",
            ),
            run: privatemissing_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "plusplus-orig-yes",
                1,
                2,
                Some(2),
                "output[count++]: documented counter race plus the \
                 additional unknown (real) race all tools report",
            ),
            run: plusplus_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "outputdep-orig-yes",
                2,
                2,
                None,
                "shared scalar x: output and true dependences",
            ),
            run: outputdep_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "reductionmissing-orig-yes",
                1,
                2,
                Some(2),
                "sum reduction without a reduction clause",
            ),
            run: reductionmissing_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "simdtruedep-orig-yes",
                1,
                1,
                Some(1),
                "simd loop with a true dependence a[i+1] = a[i] + b[i]",
            ),
            run: simdtruedep_yes,
        }),
        Box::new(Kernel {
            spec: spec("sections1-orig-yes", 1, 1, Some(1), "two sections write the same variable"),
            run: sections1_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "firstprivatemissing-orig-yes",
                1,
                1,
                Some(1),
                "shared init variable written in-region by the master, read by all",
            ),
            run: firstprivatemissing_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "lastprivatemissing-orig-yes",
                1,
                1,
                Some(1),
                "last loop value consumed before the missing barrier",
            ),
            run: lastprivatemissing_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "minusminus-orig-yes",
                1,
                2,
                Some(2),
                "worklist counter decremented without protection",
            ),
            run: minusminus_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "dynamicschedule-orig-yes",
                1,
                1,
                Some(1),
                "dynamic worksharing + unsynchronized completion flag",
            ),
            run: dynamicschedule_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "differentsize-orig-yes",
                1,
                1,
                Some(1),
                "byte store overlapping a byte-sweep of the same word",
            ),
            run: differentsize_yes,
        }),
        Box::new(Kernel {
            spec: spec("antidep1-orig-no", 0, 0, Some(0), "race-free control for antidep1"),
            run: antidep1_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "indirectaccess1-orig-no",
                0,
                0,
                Some(0),
                "identity subscripts: provably disjoint",
            ),
            run: indirectaccess_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "lostupdate1-orig-no",
                0,
                0,
                Some(0),
                "counter protected by a critical section",
            ),
            run: lostupdate1_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "nowait-orig-no",
                0,
                0,
                Some(0),
                "the barrier restored before the consuming read",
            ),
            run: nowait_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "privatemissing-orig-no",
                0,
                0,
                Some(0),
                "temporary privatized (per-thread slot)",
            ),
            run: privatemissing_no,
        }),
        Box::new(Kernel {
            spec: spec("plusplus-orig-no", 0, 0, Some(0), "atomic slot claim for the output index"),
            run: plusplus_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "reductionmissing-orig-no",
                0,
                0,
                Some(0),
                "reduction via atomic accumulate",
            ),
            run: reductionmissing_no,
        }),
        Box::new(Kernel {
            spec: spec("sections1-orig-no", 0, 0, Some(0), "sections write disjoint variables"),
            run: sections1_no,
        }),
        Box::new(Kernel {
            spec: spec("matrixmultiply-orig-no", 0, 0, Some(0), "row-parallel matrix multiply"),
            run: matrixmultiply_no,
        }),
        Box::new(Kernel {
            spec: spec("jacobi2d-orig-no", 0, 0, Some(0), "barrier-separated Jacobi sweeps"),
            run: jacobi2d_no,
        }),
        Box::new(Kernel {
            spec: spec("outputdep-orig-no", 0, 0, Some(0), "race-free control for outputdep"),
            run: outputdep_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "firstprivatemissing-orig-no",
                0,
                0,
                Some(0),
                "initialization hoisted out of the region",
            ),
            run: firstprivatemissing_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "lastprivatemissing-orig-no",
                0,
                0,
                Some(0),
                "barrier restored before the consuming read",
            ),
            run: lastprivatemissing_no,
        }),
        Box::new(Kernel {
            spec: spec("minusminus-orig-no", 0, 0, Some(0), "worklist counter drained atomically"),
            run: minusminus_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "dynamicschedule-orig-no",
                0,
                0,
                Some(0),
                "dynamic worksharing with atomic progress",
            ),
            run: dynamicschedule_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "differentsize-orig-no",
                0,
                0,
                Some(0),
                "byte-disjoint halves of one shadow word: adjacency is not overlap",
            ),
            run: differentsize_no,
        }),
    ]
}
