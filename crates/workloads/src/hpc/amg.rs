//! AMG2013 analog: an algebraic-multigrid-style V-cycle solver.
//!
//! AMG2013 is the paper's memory-stress benchmark (Figures 7d/8, Table
//! IV): its footprint scales with the n³ input grid, ARCHER's shadow
//! memory scales with the footprint and dies at 40³, and its one large
//! solve region (~400 LoC) contains **14** racy source-line pairs of
//! which ARCHER only ever reports **4** — the other ten are read-write
//! races whose records fall out of the four shadow cells (§II eviction).
//!
//! The analog reproduces each ingredient:
//!
//! * **Footprint** — four per-point state arrays hold [`POINT_ELEMS`]
//!   f64 values per grid point, allocated as *phantom* tracked buffers
//!   (declared n³-proportional virtual size over a bounded physical
//!   backing) and touched in full by the setup pass, so shadow-based
//!   tools pay footprint-proportional memory exactly as they do on the
//!   real code. [`amg_baseline_bytes`] gives the declared footprint per
//!   size for node-placement models.
//! * **Numerics** — a real geometric-multigrid V-cycle (damped-Jacobi
//!   smoothing, full-weighting-ish restriction, injection prolongation)
//!   on the n³ Poisson problem, race-free.
//! * **The 14 races** — a "solve statistics" region carrying two
//!   unprotected counters (2 line pairs each: the 4 races ARCHER sees)
//!   and ten result cells whose producing writes are evicted from the
//!   shadow word by byte-disjoint neighbour reads before the racing
//!   consumer reads arrive (the 10 races only SWORD sees).

use std::sync::Arc;

use sword_ompsim::{Ctx, OmpSim, Sequencer, TrackedBuf};

use crate::drb::{turns, Kernel};
use crate::{RunConfig, Suite, WorkloadSpec};

/// Problem sizes used by the paper: grid edge lengths 10, 20, 30, 40.
pub const AMG_SIZES: [u64; 4] = [10, 20, 30, 40];

/// Modeled per-point refined state: elements per array per grid point.
pub const POINT_ELEMS: u64 = 8;

/// Number of per-point state arrays.
const ARRAYS: u64 = 4;

/// Physical backing cap for the phantom arrays.
const REAL_BACKING: usize = 1 << 15;

/// Declared (virtual) footprint of the AMG analog at grid size `n` —
/// `4 arrays × 8 f64/point × n³`, i.e. 256·n³ bytes (16 MB at n = 40).
pub fn amg_baseline_bytes(n: u64) -> u64 {
    ARRAYS * POINT_ELEMS * 8 * n * n * n
}

/// Builds the AMG workload at grid size `n` (one of [`AMG_SIZES`] in the
/// paper's sweeps; any `n ≥ 2` works).
pub fn amg_workload(n: u64) -> Kernel {
    let (name, run): (&'static str, fn(&OmpSim, &RunConfig)) = match n {
        10 => ("AMG2013_10", |sim, cfg| {
            run_amg(sim, cfg, 10);
        }),
        20 => ("AMG2013_20", |sim, cfg| {
            run_amg(sim, cfg, 20);
        }),
        30 => ("AMG2013_30", |sim, cfg| {
            run_amg(sim, cfg, 30);
        }),
        40 => ("AMG2013_40", |sim, cfg| {
            run_amg(sim, cfg, 40);
        }),
        _ => ("AMG2013", |sim, cfg| {
            run_amg(sim, cfg, cfg.size_or(10));
        }),
    };
    Kernel {
        spec: WorkloadSpec {
            name,
            suite: Suite::Hpc,
            documented_races: 4,
            sword_races: 14,
            archer_races: Some(4),
            notes: "multigrid V-cycle; footprint ∝ n³; 4 counter races \
                    visible to HB tools + 10 eviction-hidden read-write \
                    races in the large solve region",
        },
        run,
    }
}

/// Damped-Jacobi smoothing sweeps of `u` for the 1D-chained 3D Poisson
/// stencil at a given level. Barriered per sweep: race-free.
fn smooth(
    w: &Ctx<'_>,
    len: u64,
    stride: u64,
    u: &TrackedBuf<f64>,
    f: &TrackedBuf<f64>,
    scratch: &TrackedBuf<f64>,
    sweeps: u32,
) {
    for _ in 0..sweeps {
        w.for_static(1..len - 1, |i| {
            let left = w.read(u, (i - 1) * stride);
            let right = w.read(u, (i + 1) * stride);
            let fi = w.read(f, i * stride);
            w.write(scratch, i * stride, 0.3 * w.read(u, i * stride) + 0.35 * (left + right + fi));
        });
        w.for_static(1..len - 1, |i| {
            let s = w.read(scratch, i * stride);
            w.write(u, i * stride, s);
        });
    }
}

/// Runs setup + V-cycles + the racy statistics region; returns the final
/// fine-grid residual sum (validated in tests).
pub fn run_amg(sim: &OmpSim, cfg: &RunConfig, n: u64) -> f64 {
    let points = n * n * n;
    let decl = points * POINT_ELEMS;
    let threads = cfg.threads.max(6); // the statistics region needs 6 roles
                                      // Per-point refined state: declared n³-proportional, bounded backing.
    let u = sim.alloc_phantom::<f64>(decl, REAL_BACKING.min(decl as usize), 0.0);
    let f = sim.alloc_phantom::<f64>(decl, REAL_BACKING.min(decl as usize), 0.0);
    let r = sim.alloc_phantom::<f64>(decl, REAL_BACKING.min(decl as usize), 0.0);
    let aux = sim.alloc_phantom::<f64>(decl, REAL_BACKING.min(decl as usize), 0.0);

    // Coarse hierarchy (real, small): level k has len_k points in the
    // 1D-chained representation; per level: (len, u, f, residual).
    type Level = (u64, TrackedBuf<f64>, TrackedBuf<f64>, TrackedBuf<f64>);
    let mut levels: Vec<Level> = Vec::new();
    let mut len = points.clamp(8, 1 << 14);
    while len >= 8 {
        levels.push((
            len,
            sim.alloc::<f64>(len, 0.0),
            sim.alloc::<f64>(len, 0.0),
            sim.alloc::<f64>(len, 0.0),
        ));
        len /= 2;
    }

    // Racy statistics state (see module docs).
    let counter_a = sim.alloc::<f64>(1, 0.0);
    let counter_b = sim.alloc::<f64>(1, 0.0);
    let cells: Vec<TrackedBuf<u32>> = (0..10).map(|_| sim.alloc::<u32>(2, 0)).collect();

    let seq_a = Arc::new(Sequencer::new());
    let seq_b = Arc::new(Sequencer::new());
    let seq_g = Arc::new(Sequencer::new());

    sim.run(|ctx| {
        // Setup: touch the full declared footprint, as AMG's setup phase
        // touches all of its grids — this is what grows shadow memory.
        ctx.parallel(threads, |w| {
            for (arr, init) in [(&u, 0.0f64), (&f, 1.0), (&r, 0.0), (&aux, 0.0)] {
                w.for_static(0..decl, |i| {
                    w.write(arr, i, init + (i % 17) as f64 * 1e-3);
                });
            }
        });

        // Two V-cycles on the hierarchy.
        ctx.parallel(threads, |w| {
            for _cycle in 0..2 {
                // Fine level lives in the phantom arrays at point stride.
                smooth(w, levels[0].0, POINT_ELEMS, &u, &f, &aux, 2);
                // Residual on the fine level → restrict into level 1.
                w.for_static(1..levels[0].0 - 1, |i| {
                    let ui = w.read(&u, i * POINT_ELEMS);
                    let left = w.read(&u, (i - 1) * POINT_ELEMS);
                    let right = w.read(&u, (i + 1) * POINT_ELEMS);
                    let fi = w.read(&f, i * POINT_ELEMS);
                    w.write(&r, i * POINT_ELEMS, fi - (2.0 * ui - left - right));
                });
                // Down-sweep.
                for lvl in 1..levels.len() {
                    let clen = levels[lvl].0;
                    let flen = levels[lvl - 1].0;
                    let fine_stride = if lvl == 1 { POINT_ELEMS } else { 1 };
                    let fine_r: &TrackedBuf<f64> = if lvl == 1 { &r } else { &levels[lvl - 1].3 };
                    let cu = &levels[lvl].1;
                    let cf = &levels[lvl].2;
                    let cr = &levels[lvl].3;
                    w.for_static(0..clen, |i| {
                        let v = w.read(fine_r, (2 * i).min(flen - 1) * fine_stride);
                        w.write(cf, i, 0.5 * v);
                        w.write(cu, i, 0.0);
                    });
                    smooth(w, clen, 1, cu, cf, cr, 2);
                    // Coarse residual for the next level.
                    w.for_static(1..clen - 1, |i| {
                        let ui = w.read(cu, i);
                        let left = w.read(cu, i - 1);
                        let right = w.read(cu, i + 1);
                        let fi = w.read(cf, i);
                        w.write(cr, i, fi - (2.0 * ui - left - right));
                    });
                }
                // Up-sweep: inject corrections back to the fine level.
                for lvl in (1..levels.len()).rev() {
                    let (clen, cu, ..) = &levels[lvl];
                    if lvl == 1 {
                        w.for_static(0..*clen, |i| {
                            let c = w.read(cu, i);
                            let fi = 2 * i;
                            if fi < levels[0].0 {
                                let cur = w.read(&u, fi * POINT_ELEMS);
                                w.write(&u, fi * POINT_ELEMS, cur + 0.5 * c);
                            }
                        });
                    } else {
                        let (flen, fu, ..) = &levels[lvl - 1];
                        w.for_static(0..*clen, |i| {
                            let c = w.read(cu, i);
                            let fi = 2 * i;
                            if fi < *flen {
                                let cur = w.read(fu, fi);
                                w.write(fu, fi, cur + 0.5 * c);
                            }
                        });
                    }
                }
                smooth(w, levels[0].0, POINT_ELEMS, &u, &f, &aux, 1);
            }
        });

        // The large "solve statistics" region: 14 racy source pairs.
        ctx.parallel(threads, |w| {
            let t = w.team_index();
            let last = w.team_size() - 1;
            // Races 1–4: two unprotected accumulation counters, each a
            // (read, write) + (write, write) pair. Pinned turns make
            // both pairs visible to the happens-before baseline too.
            turns(&seq_a, w, 1, |_| {
                let v = w.read(&counter_a, 0);
                w.write(&counter_a, 0, v + 1.0);
            });
            turns(&seq_b, w, 1, |_| {
                let v = w.read(&counter_b, 0);
                w.write(&counter_b, 0, v + 1.0);
            });
            // Races 5–14: ten per-phase result cells. The producer writes
            // each; four byte-disjoint neighbour reads then recycle every
            // shadow cell of each result word before the consumer's
            // racing read arrives — ARCHER has nothing left to compare
            // against, SWORD logs every access. Ten distinct source
            // pairs, written out explicitly like the ~400-line region
            // they model.
            if t == 0 {
                seq_g.turn(0, || {
                    w.write(&cells[0], 0, 1);
                    w.write(&cells[1], 0, 2);
                    w.write(&cells[2], 0, 3);
                    w.write(&cells[3], 0, 4);
                    w.write(&cells[4], 0, 5);
                    w.write(&cells[5], 0, 6);
                    w.write(&cells[6], 0, 7);
                    w.write(&cells[7], 0, 8);
                    w.write(&cells[8], 0, 9);
                    w.write(&cells[9], 0, 10);
                });
            } else if t < last {
                // Neighbour traffic in the same words (cells[k][1]).
                seq_g.turn(t, || {
                    for c in &cells {
                        let _ = w.read(c, 1);
                    }
                });
            } else {
                seq_g.turn(last, || {
                    let _ = w.read(&cells[0], 0);
                    let _ = w.read(&cells[1], 0);
                    let _ = w.read(&cells[2], 0);
                    let _ = w.read(&cells[3], 0);
                    let _ = w.read(&cells[4], 0);
                    let _ = w.read(&cells[5], 0);
                    let _ = w.read(&cells[6], 0);
                    let _ = w.read(&cells[7], 0);
                    let _ = w.read(&cells[8], 0);
                    let _ = w.read(&cells[9], 0);
                });
            }
            w.barrier();
        });
    });

    // Residual diagnostic over the fine level.
    let mut total = 0.0;
    for i in 1..levels[0].0 - 1 {
        total += r.get_seq(i * POINT_ELEMS).abs();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_scales_cubically() {
        assert_eq!(amg_baseline_bytes(10), 256 * 1000);
        assert_eq!(amg_baseline_bytes(40), 256 * 64_000);
        assert_eq!(amg_baseline_bytes(40) / amg_baseline_bytes(10), 64);
    }

    #[test]
    fn amg_runs_and_produces_finite_residual() {
        let sim = OmpSim::new();
        let res = run_amg(&sim, &RunConfig { threads: 6, size: 0 }, 10);
        assert!(res.is_finite());
        // Declared footprint matches the model (plus small coarse levels
        // and statistics cells).
        assert!(sim.peak_footprint() >= amg_baseline_bytes(10));
    }

    #[test]
    fn phantom_backing_is_bounded() {
        let sim = OmpSim::new();
        let _ = run_amg(&sim, &RunConfig { threads: 6, size: 0 }, 20);
        // Declared is MBs, but the real allocation stays capped: this is
        // implicitly validated by the run completing quickly; assert the
        // declared size for the record.
        assert!(sim.peak_footprint() >= amg_baseline_bytes(20));
    }
}
