//! miniFE analog: finite-element assembly plus a CG solve.
//!
//! The Mantevo miniFE mini-app assembles a sparse system from hexahedral
//! elements and solves it with CG. Table IV reports zero races for it;
//! this analog keeps that property with a realistic structure: a
//! gather-style row-parallel assembly (each thread owns whole matrix
//! rows, reading any element's data — reads never race), then the same
//! deterministic CG pattern as the HPCCG analog *without* the planted
//! norm race.

use sword_ompsim::OmpSim;

use crate::{RunConfig, Suite, Workload, WorkloadSpec};

/// The miniFE-analog workload. `cfg.size` = nodes per edge (default 10).
pub struct MiniFe;

impl Workload for MiniFe {
    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "miniFE",
            suite: Suite::Hpc,
            documented_races: 0,
            sword_races: 0,
            archer_races: Some(0),
            notes: "row-owned FE assembly + deterministic CG: race-free",
        }
    }

    fn execute(&self, sim: &OmpSim, cfg: &RunConfig) {
        run_minife(sim, cfg);
    }
}

/// Runs assembly + CG; returns the final residual (validated in tests).
pub fn run_minife(sim: &OmpSim, cfg: &RunConfig) -> f64 {
    let nn = cfg.size_or(10); // nodes per edge
    let n = nn * nn * nn;
    let threads = cfg.threads;
    let iters = 6u64;

    // 1D-indexed 3D nodal system assembled from per-element stiffness:
    // store the matrix in stencil form (diagonal + 6 off-diagonals).
    let diag = sim.alloc::<f64>(n, 0.0);
    let rhs = sim.alloc::<f64>(n, 0.0);
    // Element "material" data, gathered during assembly.
    let nelem = (nn - 1) * (nn - 1) * (nn - 1);
    let elem_k = sim.alloc::<f64>(nelem.max(1), 1.0);
    for e in 0..nelem {
        elem_k.set_seq(e, 1.0 + ((e * 31) % 7) as f64 * 0.1);
    }

    let x = sim.alloc::<f64>(n, 0.0);
    let r = sim.alloc::<f64>(n, 0.0);
    let p = sim.alloc::<f64>(n, 0.0);
    let ap = sim.alloc::<f64>(n, 0.0);
    let partial = sim.alloc::<f64>(threads.max(1) as u64, 0.0);
    let rtrans = sim.alloc::<f64>(1, 0.0);
    let ptap = sim.alloc::<f64>(1, 0.0);
    let normr = sim.alloc::<f64>(1, 0.0);

    let ne = nn - 1;
    // Elements adjacent to node (i,j,k) have coordinates in
    // [i-1, i] × [j-1, j] × [k-1, k] clipped to the element grid.
    let elem_at = move |i: u64, j: u64, k: u64| (i * ne + j) * ne + k;

    sim.run(|ctx| {
        ctx.parallel(threads, |w| {
            // Assembly: each thread owns whole node rows and *gathers*
            // contributions from the (shared, read-only) element data —
            // the scatter-free assembly pattern that makes miniFE clean.
            w.for_static(0..n, |node| {
                let (i, rem) = (node / (nn * nn), node % (nn * nn));
                let (j, k) = (rem / nn, rem % nn);
                let mut d = 0.0;
                let mut b = 0.0;
                for di in 0..2u64 {
                    for dj in 0..2u64 {
                        for dk in 0..2u64 {
                            if i >= di && j >= dj && k >= dk {
                                let (ei, ej, ek) = (i - di, j - dj, k - dk);
                                if ei < ne && ej < ne && ek < ne {
                                    let stiff = w.read(&elem_k, elem_at(ei, ej, ek));
                                    d += stiff;
                                    b += 0.125 * stiff;
                                }
                            }
                        }
                    }
                }
                w.write(&diag, node, 6.0 + d);
                w.write(&rhs, node, b);
            });

            // CG on the stencil operator (diag-weighted 7-point).
            w.for_static(0..n, |i| {
                let bi = w.read(&rhs, i);
                w.write(&r, i, bi);
                w.write(&p, i, bi);
            });
            for _it in 0..iters {
                let mut local = 0.0;
                w.for_static_nowait(0..n, |i| {
                    let ri = w.read(&r, i);
                    local += ri * ri;
                });
                let rt = w.reduce_sum(&partial, &rtrans, local);
                // Norm recorded by one thread — the fixed version of
                // HPCCG's racy line.
                w.single(|| {
                    w.write(&normr, 0, rt.sqrt());
                });

                // ap = A·p with A = diag + Laplacian coupling.
                w.for_static(0..n, |q| {
                    let (i, rem) = (q / (nn * nn), q % (nn * nn));
                    let (j, k) = (rem / nn, rem % nn);
                    let mut acc = w.read(&diag, q) * w.read(&p, q);
                    if i > 0 {
                        acc -= w.read(&p, q - nn * nn);
                    }
                    if i < nn - 1 {
                        acc -= w.read(&p, q + nn * nn);
                    }
                    if j > 0 {
                        acc -= w.read(&p, q - nn);
                    }
                    if j < nn - 1 {
                        acc -= w.read(&p, q + nn);
                    }
                    if k > 0 {
                        acc -= w.read(&p, q - 1);
                    }
                    if k < nn - 1 {
                        acc -= w.read(&p, q + 1);
                    }
                    w.write(&ap, q, acc);
                });

                let mut local2 = 0.0;
                w.for_static_nowait(0..n, |i| {
                    local2 += w.read(&p, i) * w.read(&ap, i);
                });
                let denom = w.reduce_sum(&partial, &ptap, local2);
                let old_rtrans = w.read(&rtrans, 0);
                let alpha = if denom.abs() < 1e-300 { 0.0 } else { old_rtrans / denom };

                w.for_static(0..n, |i| {
                    let xi = w.read(&x, i);
                    w.write(&x, i, xi + alpha * w.read(&p, i));
                    let ri = w.read(&r, i);
                    w.write(&r, i, ri - alpha * w.read(&ap, i));
                });

                let mut local3 = 0.0;
                w.for_static_nowait(0..n, |i| {
                    let ri = w.read(&r, i);
                    local3 += ri * ri;
                });
                let new_rtrans = w.reduce_sum(&partial, &rtrans, local3);
                let beta = if old_rtrans.abs() < 1e-300 { 0.0 } else { new_rtrans / old_rtrans };
                w.for_static(0..n, |i| {
                    let ri = w.read(&r, i);
                    let pi = w.read(&p, i);
                    w.write(&p, i, ri + beta * pi);
                });
            }
        });
    });
    normr.get_seq(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_converges_reasonably() {
        let sim = OmpSim::new();
        let norm = run_minife(&sim, &RunConfig { threads: 4, size: 8 });
        assert!(norm.is_finite());
        assert!(norm >= 0.0);
        // The initial residual norm is ‖rhs‖ ≈ O(√n); CG must shrink it.
        assert!(norm < 5.0, "residual {norm}");
    }

    #[test]
    fn deterministic_across_schedules() {
        let run = || {
            let sim = OmpSim::new();
            run_minife(&sim, &RunConfig { threads: 5, size: 6 })
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}
