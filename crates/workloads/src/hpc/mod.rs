//! HPC mini-app analogs (§IV-C of the paper).
//!
//! Four workloads stand in for the paper's CORAL/Mantevo codes. Each is a
//! real (scaled-down) computation with the paper's documented race
//! content and — critically for Figures 7/8 and Table IV — the paper's
//! *memory structure*: declared footprints grow with problem size (via
//! phantom tracked buffers, so the virtual footprint can dwarf physical
//! RAM), every declared byte is touched so footprint-proportional shadow
//! memory grows as it would in the real tool, and region/barrier counts
//! match each app's character (LULESH's very many small regions drive
//! its log-volume and offline-analysis blow-up).
//!
//! | analog   | paper code | races (archer / sword)                  |
//! |----------|-----------|------------------------------------------|
//! | `hpccg`  | HPCCG     | 1 / 1 — benign same-value shared write   |
//! | `minife` | miniFE    | 0 / 0                                    |
//! | `lulesh` | LULESH    | 0 / 0, ~6 regions per time step          |
//! | `amg2013`| AMG2013   | 4 / 14 — 10 read-write races hidden from |
//! |          |           | ARCHER by shadow-cell eviction           |

mod amg;
mod hpccg;
mod lulesh;
mod minife;

pub use amg::{amg_baseline_bytes, amg_workload, AMG_SIZES};

use crate::Workload;

/// The fixed-size HPC workloads plus the smallest AMG variant. Benches
/// sweep AMG sizes explicitly via [`amg_workload`].
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(minife::MiniFe),
        Box::new(hpccg::Hpccg),
        Box::new(lulesh::Lulesh),
        Box::new(amg_workload(10)),
    ]
}
