//! LULESH analog: an explicit shock-hydrodynamics proxy.
//!
//! What matters for the paper's evaluation is LULESH's *shape*: a time
//! loop issuing many small parallel regions (almost 300,000 in the
//! paper's runs), which multiplies barrier intervals, log I/O during
//! collection, and offline-analysis work (Table V's 24-hour row). Each
//! simulated time step here opens six regions — force, acceleration,
//! velocity, position, energy, and the Courant time-step reduction — over
//! a small staggered 1D-of-3D mesh. The physics is simplified but real:
//! the kernel is race-free, energies stay finite, and the region count is
//! `6 × steps`, which benches crank up to reproduce the blow-up trend.

use sword_ompsim::OmpSim;

use crate::{RunConfig, Suite, Workload, WorkloadSpec};

/// The LULESH-analog workload. `cfg.size` = number of time steps
/// (default 40).
pub struct Lulesh;

impl Workload for Lulesh {
    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "LULESH",
            suite: Suite::Hpc,
            documented_races: 0,
            sword_races: 0,
            archer_races: Some(0),
            notes: "race-free hydro proxy; six parallel regions per time \
                    step stress region-heavy collection and analysis",
        }
    }

    fn execute(&self, sim: &OmpSim, cfg: &RunConfig) {
        run_hydro(sim, cfg);
    }
}

/// Runs the hydro loop; returns the final total energy (validated in
/// tests).
pub fn run_hydro(sim: &OmpSim, cfg: &RunConfig) -> f64 {
    let steps = cfg.size_or(40);
    let nelem = 512u64;
    let nnode = nelem + 1;
    let threads = cfg.threads;

    // Staggered mesh: element-centred energy/pressure, node-centred
    // kinematics.
    let e = sim.alloc::<f64>(nelem, 1.0); // internal energy
    let p = sim.alloc::<f64>(nelem, 0.0); // pressure
    let force = sim.alloc::<f64>(nnode, 0.0);
    let vel = sim.alloc::<f64>(nnode, 0.0);
    let pos = sim.alloc::<f64>(nnode, 0.0);
    let dt_partial = sim.alloc::<f64>(threads.max(1) as u64, 0.0);
    let dt_scratch = sim.alloc::<f64>(1, 0.0);
    let dt_cell = sim.alloc::<f64>(1, 1e-3);
    for i in 0..nnode {
        pos.set_seq(i, i as f64);
    }
    // An energy spike in the centre drives the shock.
    e.set_seq(nelem / 2, 10.0);

    sim.run(|ctx| {
        for _step in 0..steps {
            // Region 1: EOS — pressure from energy (gamma-law-ish).
            ctx.parallel(threads, |w| {
                w.for_static(0..nelem, |i| {
                    let ei = w.read(&e, i);
                    w.write(&p, i, 0.4 * ei.max(0.0));
                });
            });
            // Region 2: nodal forces from pressure gradients.
            ctx.parallel(threads, |w| {
                w.for_static(0..nnode, |i| {
                    let left = if i > 0 { w.read(&p, i - 1) } else { 0.0 };
                    let right = if i < nelem { w.read(&p, i) } else { 0.0 };
                    w.write(&force, i, left - right);
                });
            });
            // Region 3: acceleration → velocity (unit nodal mass).
            ctx.parallel(threads, |w| {
                let dt = w.read(&dt_cell, 0);
                w.for_static(0..nnode, |i| {
                    let v = w.read(&vel, i);
                    w.write(&vel, i, v + dt * w.read(&force, i));
                });
            });
            // Region 4: position update.
            ctx.parallel(threads, |w| {
                let dt = w.read(&dt_cell, 0);
                w.for_static(0..nnode, |i| {
                    let x = w.read(&pos, i);
                    w.write(&pos, i, x + dt * w.read(&vel, i));
                });
            });
            // Region 5: element energy update from pdV work.
            ctx.parallel(threads, |w| {
                let dt = w.read(&dt_cell, 0);
                w.for_static(0..nelem, |i| {
                    let dv = w.read(&vel, i + 1) - w.read(&vel, i);
                    let ei = w.read(&e, i);
                    w.write(&e, i, (ei - dt * w.read(&p, i) * dv).max(0.0));
                });
            });
            // Region 6: Courant condition — deterministic max-reduction
            // of |v| feeding the next step's dt.
            ctx.parallel(threads, |w| {
                let mut local_max_v: f64 = 1e-12;
                w.for_static_nowait(0..nnode, |i| {
                    local_max_v = local_max_v.max(w.read(&vel, i).abs());
                });
                let max_v = w.reduce_with(&dt_partial, &dt_scratch, local_max_v, f64::max);
                w.single(|| {
                    w.write(&dt_cell, 0, (0.1 / max_v).min(1e-3));
                });
            });
        }
    });
    (0..nelem).map(|i| e.get_seq(i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_stays_finite_and_positive() {
        let sim = OmpSim::new();
        let total = run_hydro(&sim, &RunConfig { threads: 4, size: 20 });
        assert!(total.is_finite());
        assert!(total > 0.0);
    }

    #[test]
    fn region_count_scales_with_steps() {
        let sim = OmpSim::new();
        run_hydro(&sim, &RunConfig { threads: 2, size: 7 });
        // threads_used is a proxy; the region count itself is checked via
        // the collector in the suite-level tests. Here: the run completed
        // with the expected thread pool.
        assert_eq!(sim.threads_used(), 3); // master + 2 workers, pooled
    }
}
