//! HPCCG analog: conjugate gradient on a 3D 7-point Laplacian.
//!
//! The Mantevo HPCCG mini-app solves a sparse linear system with CG. The
//! one race both tools report (Table IV) lives here exactly as the paper
//! describes it: *"a parallel region where all threads are writing the
//! same value into a shared variable"* — harmless-looking, but undefined
//! behaviour under the C/C++ memory model.
//!
//! Reductions follow the deterministic partial-sums pattern (each thread
//! deposits its partial, `single` folds them in index order), so the
//! numerics are bit-reproducible across runs and thread schedules.

use sword_ompsim::{Ctx, OmpSim, TrackedBuf};

use crate::{RunConfig, Suite, Workload, WorkloadSpec};

/// The HPCCG-analog workload.
pub struct Hpccg;

impl Workload for Hpccg {
    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "HPCCG",
            suite: Suite::Hpc,
            documented_races: 1,
            sword_races: 1,
            archer_races: Some(1),
            notes: "CG solver; benign-looking same-value write of the \
                    residual norm by every thread",
        }
    }

    fn execute(&self, sim: &OmpSim, cfg: &RunConfig) {
        run_cg(sim, cfg);
    }
}

/// 7-point Laplacian stencil apply: `out = A·v` on the nx³ grid.
/// Row-parallel, hence race-free; closes with the loop's implicit
/// barrier.
fn apply_stencil(w: &Ctx<'_>, nx: u64, v: &TrackedBuf<f64>, out: &TrackedBuf<f64>) {
    let n = nx * nx * nx;
    w.for_static(0..n, |p| {
        let (i, rem) = (p / (nx * nx), p % (nx * nx));
        let (j, k) = (rem / nx, rem % nx);
        let mut acc = 26.0 * w.read(v, p);
        if i > 0 {
            acc -= w.read(v, p - nx * nx);
        }
        if i < nx - 1 {
            acc -= w.read(v, p + nx * nx);
        }
        if j > 0 {
            acc -= w.read(v, p - nx);
        }
        if j < nx - 1 {
            acc -= w.read(v, p + nx);
        }
        if k > 0 {
            acc -= w.read(v, p - 1);
        }
        if k < nx - 1 {
            acc -= w.read(v, p + 1);
        }
        w.write(out, p, acc);
    });
}

/// Runs the CG solve; returns the final residual norm (validated in
/// tests).
pub fn run_cg(sim: &OmpSim, cfg: &RunConfig) -> f64 {
    let nx = cfg.size_or(12);
    let n = nx * nx * nx;
    let threads = cfg.threads;
    let iters = 8u64;

    let x = sim.alloc::<f64>(n, 0.0);
    let b = sim.alloc::<f64>(n, 1.0);
    let r = sim.alloc::<f64>(n, 0.0);
    let p = sim.alloc::<f64>(n, 0.0);
    let ap = sim.alloc::<f64>(n, 0.0);
    let partial = sim.alloc::<f64>(threads.max(1) as u64, 0.0);
    let rtrans = sim.alloc::<f64>(1, 0.0);
    let ptap = sim.alloc::<f64>(1, 0.0);
    let normr = sim.alloc::<f64>(1, 0.0);

    sim.run(|ctx| {
        ctx.parallel(threads, |w| {
            // r = b − A·x = b (x starts at 0); p = r.
            w.for_static(0..n, |i| {
                let bi = w.read(&b, i);
                w.write(&r, i, bi);
                w.write(&p, i, bi);
            });

            for _iter in 0..iters {
                // rtrans = rᵀ·r.
                let mut local = 0.0;
                w.for_static_nowait(0..n, |i| {
                    let ri = w.read(&r, i);
                    local += ri * ri;
                });
                let rt = w.reduce_sum(&partial, &rtrans, local);

                // THE RACE (Table IV): every thread writes the same norm
                // value into the shared cell, unsynchronized — undefined
                // behaviour a compiler may legally break.
                w.write(&normr, 0, rt.sqrt());

                apply_stencil(w, nx, &p, &ap);

                // ptap = pᵀ·A·p.
                let mut local2 = 0.0;
                w.for_static_nowait(0..n, |i| {
                    local2 += w.read(&p, i) * w.read(&ap, i);
                });
                let denom = w.reduce_sum(&partial, &ptap, local2);
                let old_rtrans = w.read(&rtrans, 0);
                let alpha = if denom.abs() < 1e-300 { 0.0 } else { old_rtrans / denom };

                // x += α·p; r −= α·A·p.
                w.for_static(0..n, |i| {
                    let xi = w.read(&x, i);
                    w.write(&x, i, xi + alpha * w.read(&p, i));
                    let ri = w.read(&r, i);
                    w.write(&r, i, ri - alpha * w.read(&ap, i));
                });

                // New rtrans and β.
                let mut local3 = 0.0;
                w.for_static_nowait(0..n, |i| {
                    let ri = w.read(&r, i);
                    local3 += ri * ri;
                });
                let new_rtrans = w.reduce_sum(&partial, &rtrans, local3);
                let beta = if old_rtrans.abs() < 1e-300 { 0.0 } else { new_rtrans / old_rtrans };

                w.for_static(0..n, |i| {
                    let ri = w.read(&r, i);
                    let pi = w.read(&p, i);
                    w.write(&p, i, ri + beta * pi);
                });
            }
        });
    });
    normr.get_seq(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_reduces_residual() {
        let sim = OmpSim::new();
        let norm = run_cg(&sim, &RunConfig { threads: 4, size: 8 });
        // ‖b‖ = √512 ≈ 22.6; CG must make clear progress in 8 iterations.
        assert!(norm.is_finite());
        assert!(norm < 10.0, "residual {norm} too large");
        assert!(norm >= 0.0);
    }

    #[test]
    fn deterministic_norm_across_runs_and_threads() {
        let run = |threads| {
            let sim = OmpSim::new();
            run_cg(&sim, &RunConfig { threads, size: 6 })
        };
        assert_eq!(run(3).to_bits(), run(3).to_bits());
    }
}
