//! DataRaceBench-style tasking and rich-scheduling kernels.
//!
//! The tasking rows of the evaluation: explicit-task kernels in the style
//! of DataRaceBench's `taskdep*`/`taskdependmissing` family, plus
//! schedule-clause controls (`ordered`, guided) the loop suites don't
//! cover. Every kernel gates task creation to the master thread — the
//! idiom of the originals' `#pragma omp single` — so the ground truth is
//! creator-scoped and independent of team size.
//!
//! `-yes` kernels carry exactly one documented race (a missing depend
//! clause, taskwait, or taskgroup boundary); `-no` kernels restore the
//! synchronization and must stay silent under both detectors.

use sword_ompsim::{DepMode, OmpSim};

use crate::{Kernel, RunConfig, Suite, Workload, WorkloadSpec};

fn spec(
    name: &'static str,
    documented: usize,
    sword: usize,
    archer: Option<usize>,
    notes: &'static str,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        suite: Suite::DataRaceBench,
        documented_races: documented,
        sword_races: sword,
        archer_races: archer,
        notes,
    }
}

// ---- racy kernels ----------------------------------------------------------

fn taskdependmissing_yes(sim: &OmpSim, cfg: &RunConfig) {
    // Two sibling tasks update the shared scalar with no depend clauses:
    // nothing orders them, write-write race.
    let x = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            if w.team_index() == 0 {
                w.task_depend(&[], |t| {
                    t.write(&x, 0, 1);
                });
                w.task_depend(&[], |t| {
                    t.write(&x, 0, 2);
                });
                w.taskwait();
            }
        });
    });
}

fn taskwaitmissing_yes(sim: &OmpSim, cfg: &RunConfig) {
    // The producing task's result is consumed by the continuation with no
    // taskwait in between: write-read race.
    let x = sim.alloc::<i64>(1, 0);
    let out = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            if w.team_index() == 0 {
                w.task_depend(&[], |t| {
                    t.write(&x, 0, 42);
                });
                let v = w.read(&x, 0); // missing taskwait
                w.write(&out, 0, v);
                w.taskwait();
            }
        });
    });
}

fn taskgroupscope_yes(sim: &OmpSim, cfg: &RunConfig) {
    // taskgroup awaits only tasks created inside it: the sibling created
    // before the group is still in flight and races the group's task.
    let x = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            if w.team_index() == 0 {
                w.task_depend(&[], |t| {
                    t.write(&x, 0, 1);
                });
                w.taskgroup(|g| {
                    g.task_depend(&[], |t| {
                        t.write(&x, 0, 2);
                    });
                });
                w.taskwait();
            }
        });
    });
}

// ---- race-free controls ----------------------------------------------------

fn taskdep1_no(sim: &OmpSim, cfg: &RunConfig) {
    // depend(out: x) -> depend(in: x): the dependence edge orders the
    // producer before the consumer; taskwait covers the final read.
    let x = sim.alloc::<i64>(1, 0);
    let out = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            if w.team_index() == 0 {
                w.task_depend(&[(0, DepMode::Out)], |t| {
                    t.write(&x, 0, 42);
                });
                w.task_depend(&[(0, DepMode::In)], |t| {
                    let v = t.read(&x, 0);
                    t.write(&out, 0, v + 1);
                });
                w.taskwait();
                let _ = w.read(&out, 0);
            }
        });
    });
}

fn taskdepchain_no(sim: &OmpSim, cfg: &RunConfig) {
    // An out -> inout -> in chain over one dependence variable: every
    // conflicting pair is transitively ordered.
    let x = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            if w.team_index() == 0 {
                w.task_depend(&[(0, DepMode::Out)], |t| {
                    t.write(&x, 0, 1);
                });
                w.task_depend(&[(0, DepMode::InOut)], |t| {
                    let v = t.read(&x, 0);
                    t.write(&x, 0, v + 1);
                });
                w.task_depend(&[(0, DepMode::In)], |t| {
                    let _ = t.read(&x, 0);
                });
                w.taskwait();
            }
        });
    });
}

fn taskwait_no(sim: &OmpSim, cfg: &RunConfig) {
    // The taskwait the `-yes` variant is missing: producer task completes
    // before the continuation reads.
    let x = sim.alloc::<i64>(1, 0);
    let out = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            if w.team_index() == 0 {
                w.task_depend(&[], |t| {
                    t.write(&x, 0, 42);
                });
                w.taskwait();
                let v = w.read(&x, 0);
                w.write(&out, 0, v);
            }
        });
    });
}

fn taskgroup_no(sim: &OmpSim, cfg: &RunConfig) {
    // Fan-out inside a taskgroup over disjoint slots; the group end
    // awaits every child before the reduction read.
    let n = 4u64;
    let a = sim.alloc::<i64>(n, 0);
    let sum = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            if w.team_index() == 0 {
                w.taskgroup(|g| {
                    for i in 0..n {
                        g.task_depend(&[], |t| {
                            t.write(&a, i, i as i64 + 1);
                        });
                    }
                });
                let mut acc = 0;
                for i in 0..n {
                    acc += w.read(&a, i);
                }
                w.write(&sum, 0, acc);
            }
        });
    });
}

fn ordered_no(sim: &OmpSim, cfg: &RunConfig) {
    // An ordered static loop accumulating into one shared cell: the
    // ordered construct admits one iteration at a time, in order.
    let n = cfg.size_or(16);
    let a = sim.alloc::<i64>(n, 3);
    let sum = sim.alloc::<i64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_static_ordered(0..n, |i, ol| {
                let v = w.read(&a, i);
                w.ordered(ol, i, || {
                    let s = w.read(&sum, 0);
                    w.write(&sum, 0, s + v);
                });
            });
        });
    });
}

fn dynamicordered_no(sim: &OmpSim, cfg: &RunConfig) {
    // schedule(dynamic, 1) plus ordered: chunks land on arbitrary
    // threads, but the ordered region still serializes the shared update.
    let n = cfg.size_or(12);
    let hist = sim.alloc::<i64>(2, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_dynamic_pinned_ordered(0..n, 1, |i, ol| {
                w.ordered(ol, i, || {
                    let slot = i % 2;
                    let v = w.read(&hist, slot);
                    w.write(&hist, slot, v + 1);
                });
            });
        });
    });
}

fn guidedschedule_no(sim: &OmpSim, cfg: &RunConfig) {
    // Guided worksharing over disjoint elements: shrinking chunks never
    // overlap, so per-element updates are race-free.
    let n = cfg.size_or(64);
    let a = sim.alloc::<f64>(n, 1.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_guided_pinned(0..n, 2, |i| {
                let v = w.read(&a, i);
                w.write(&a, i, v * 0.5);
            });
        });
    });
}

fn taskfan(sim: &OmpSim, cfg: &RunConfig) {
    // Several rounds of master-side task fan-out over disjoint slices
    // (racy only on the shared round counter), each followed by dynamic
    // and guided team sweeps — a session dominated by task-fork labels
    // and non-static loop records.
    let rounds = cfg.size_or(6);
    let tasks = 16u64;
    let slice = 128u64;
    let n = tasks * slice;
    let a = sim.alloc::<f64>(n, 1.0);
    let counter = sim.alloc::<u64>(1, 0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            for _round in 0..rounds {
                if w.team_index() == 0 {
                    for k in 0..tasks {
                        w.task_depend(&[], |t| {
                            for i in k * slice..(k + 1) * slice {
                                let v = t.read(&a, i);
                                t.write(&a, i, v * 1.0001);
                            }
                            let c = t.read(&counter, 0); // sibling race
                            t.write(&counter, 0, c + 1);
                        });
                    }
                    w.taskwait();
                }
                w.barrier();
                w.for_dynamic_pinned(0..n, 64, |i| {
                    let v = w.read(&a, i);
                    w.write(&a, i, v + 0.5);
                });
                w.for_guided_pinned(0..n, 32, |i| {
                    let v = w.read(&a, i);
                    w.write(&a, i, v * 0.999);
                });
            }
        });
    });
}

/// The pipeline-bench tasking workload (not part of the detection suite:
/// its volume, not its ground truth, is the point). `size` is the round
/// count; the only races are the two source pairs on the round counter.
pub fn taskfan_workload() -> Box<dyn Workload> {
    Box::new(Kernel {
        spec: spec(
            "taskfan-bench",
            0,
            2,
            None,
            "task fan-out over disjoint slices + dynamic/guided sweeps; \
             racy only on the shared round counter",
        ),
        run: taskfan,
    })
}

/// The tasking/scheduling suite, `-yes` kernels first.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Kernel {
            spec: spec(
                "taskdependmissing-orig-yes",
                1,
                1,
                Some(1),
                "sibling tasks update a shared scalar with no depend clauses",
            ),
            run: taskdependmissing_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "taskwaitmissing-orig-yes",
                1,
                1,
                Some(1),
                "continuation consumes a task's result without taskwait",
            ),
            run: taskwaitmissing_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "taskgroupscope-orig-yes",
                1,
                1,
                Some(1),
                "pre-group sibling races the group's task: taskgroup only \
                 awaits tasks created inside it",
            ),
            run: taskgroupscope_yes,
        }),
        Box::new(Kernel {
            spec: spec(
                "taskdep1-orig-no",
                0,
                0,
                Some(0),
                "depend(out) -> depend(in) producer/consumer chain",
            ),
            run: taskdep1_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "taskdepchain-orig-no",
                0,
                0,
                Some(0),
                "out -> inout -> in chain over one dependence variable",
            ),
            run: taskdepchain_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "taskwait-orig-no",
                0,
                0,
                Some(0),
                "the taskwait restored before the consuming read",
            ),
            run: taskwait_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "taskgroup-orig-no",
                0,
                0,
                Some(0),
                "taskgroup fan-out over disjoint slots, reduced after the group",
            ),
            run: taskgroup_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "ordered-orig-no",
                0,
                0,
                Some(0),
                "ordered static loop accumulating into one shared cell",
            ),
            run: ordered_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "dynamicordered-orig-no",
                0,
                0,
                Some(0),
                "schedule(dynamic,1) + ordered still serializes the shared update",
            ),
            run: dynamicordered_no,
        }),
        Box::new(Kernel {
            spec: spec(
                "guidedschedule-orig-no",
                0,
                0,
                Some(0),
                "guided worksharing over disjoint elements",
            ),
            run: guidedschedule_no,
        }),
    ]
}
