//! Benchmark workloads for the SWORD evaluation.
//!
//! Three suites mirror §IV of the paper:
//!
//! * [`drb`] — DataRaceBench-like microbenchmarks: small kernels with
//!   documented races (or documented race-freedom), reimplemented on
//!   `ompsim` with the original kernels' names and race semantics for
//!   every benchmark the paper's prose discusses.
//! * [`ompscr`] — OmpSCR-like kernels: real small computations
//!   (Mandelbrot, molecular dynamics, quicksort, LU, …) with their
//!   documented races and, for the six benchmarks the paper names, the
//!   additional undocumented races SWORD found.
//! * [`hpc`] — mini-app analogs of the paper's CORAL/Mantevo codes:
//!   AMG2013 (algebraic multigrid), LULESH (hydro proxy with very many
//!   regions), miniFE (FE assembly + CG), HPCCG (CG with the benign
//!   shared write).
//! * [`tasking`] — DataRaceBench-style explicit-task kernels (depend
//!   chains, taskwait, taskgroup scope) plus ordered/guided schedule
//!   controls.
//!
//! Every workload is an honest computation over tracked memory: detectors
//! observe it through the ordinary tool interface, and each racy kernel's
//! schedule-sensitive behaviour is pinned with a
//! [`sword_ompsim::Sequencer`] where the paper's comparison depends on a
//! particular interleaving.

#![forbid(unsafe_code)]

pub mod drb;
pub mod hpc;
pub mod ompscr;
pub mod tasking;

use sword_ompsim::OmpSim;

pub use drb::Kernel;

/// Which suite a workload belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// DataRaceBench-like microbenchmarks.
    DataRaceBench,
    /// OmpSCR-like kernels.
    OmpScr,
    /// HPC mini-app analogs.
    Hpc,
}

/// Static description of a workload and its ground truth.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Benchmark name (kept from the original suite where applicable).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Races documented by the original benchmark's authors.
    pub documented_races: usize,
    /// Distinct racy source-line pairs SWORD is expected to report on the
    /// executed input (documented + undocumented-but-real; 0 for race-free
    /// kernels and for races the executed input does not manifest).
    pub sword_races: usize,
    /// Exact ARCHER count under the workload's pinned schedule, when the
    /// paper's comparison fixes one (`None` = only `archer ≤ sword` is
    /// guaranteed).
    pub archer_races: Option<usize>,
    /// One-line story of the kernel and its race.
    pub notes: &'static str,
}

/// Run-time parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Team size for top-level parallel regions.
    pub threads: usize,
    /// Problem-size knob; each workload documents its interpretation.
    pub size: u64,
}

impl RunConfig {
    /// A small default: 4 threads, suite-default sizes.
    pub fn small() -> Self {
        RunConfig { threads: 4, size: 0 }
    }

    /// Explicit threads with suite-default size.
    pub fn with_threads(threads: usize) -> Self {
        RunConfig { threads, size: 0 }
    }

    /// Resolves `size == 0` to a workload's default.
    pub fn size_or(&self, default: u64) -> u64 {
        if self.size == 0 {
            default
        } else {
            self.size
        }
    }
}

/// A runnable benchmark.
pub trait Workload: Sync + Send {
    /// Ground truth and metadata.
    fn spec(&self) -> WorkloadSpec;

    /// Executes the kernel under `sim` (the caller attaches the detector
    /// of interest — or none, for baseline timing).
    fn execute(&self, sim: &OmpSim, cfg: &RunConfig);
}

/// All DataRaceBench-like workloads, in suite order.
pub fn drb_workloads() -> Vec<Box<dyn Workload>> {
    drb::all()
}

/// All OmpSCR-like workloads, in suite order.
pub fn ompscr_workloads() -> Vec<Box<dyn Workload>> {
    ompscr::all()
}

/// All HPC mini-app workloads, in suite order (AMG variants excluded —
/// see [`hpc::amg_workload`] for the size-parameterized version).
pub fn hpc_workloads() -> Vec<Box<dyn Workload>> {
    hpc::all()
}

/// The tasking/scheduling kernels, in suite order.
pub fn tasking_workloads() -> Vec<Box<dyn Workload>> {
    tasking::all()
}

/// Every workload across all suites, in suite order (DRB, tasking,
/// OmpSCR, HPC).
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    let mut all = drb_workloads();
    all.extend(tasking_workloads());
    all.extend(ompscr_workloads());
    all.extend(hpc_workloads());
    all
}

/// Looks a workload up by name across all suites.
pub fn find_workload(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.spec().name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_consistent() {
        for w in all_workloads() {
            let spec = w.spec();
            assert!(!spec.name.is_empty());
            assert!(!spec.notes.is_empty(), "{} needs a story", spec.name);
            if let Some(archer) = spec.archer_races {
                assert!(archer <= spec.sword_races, "{}: archer may never exceed sword", spec.name);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for w in all_workloads() {
            assert!(names.insert(w.spec().name), "duplicate {}", w.spec().name);
        }
    }

    #[test]
    fn find_by_name() {
        assert!(find_workload("plusplus-orig-yes").is_some());
        assert!(find_workload("taskdependmissing-orig-yes").is_some());
        assert!(find_workload("no-such-bench").is_none());
    }
}
