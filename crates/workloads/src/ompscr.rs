//! OmpSCR-like kernels (§IV-B of the paper, Table II).
//!
//! Real small computations with the documented OmpSCR races. For the six
//! benchmarks where the paper reports *new undocumented races found by
//! SWORD* (`c_md`, `c_testPath`, `cpp_qsomp1`, `cpp_qsomp2`, `cpp_qsomp5`,
//! `cpp_qsomp6`), the extra race is a write-write pair whose executed
//! schedule routes a lock release→acquire edge between the writes —
//! masked from the happens-before baseline (Figure 1(b)) but visible to
//! SWORD's schedule-insensitive analysis, so `sword = archer + 1` on
//! exactly those rows.

use std::sync::Arc;

use sword_ompsim::{Ctx, OmpSim, Sequencer};

use crate::drb::{turns, Kernel};
use crate::{RunConfig, Suite, Workload, WorkloadSpec};

fn spec(
    name: &'static str,
    documented: usize,
    sword: usize,
    archer: Option<usize>,
    notes: &'static str,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        suite: Suite::OmpScr,
        documented_races: documented,
        sword_races: sword,
        archer_races: archer,
        notes,
    }
}

/// The Figure 1(b) gadget: threads 0 and 1 both write `cell[0]`, with the
/// pinned schedule inserting a release→acquire edge of `lock_name`
/// between the writes. One extra write-write source pair for SWORD; HB
/// masks it from ARCHER. Consumes sequencer tickets
/// `base..base + 3`.
fn hb_masked_extra_write(
    w: &Ctx<'_>,
    seq: &Sequencer,
    lock_name: &str,
    cell: &sword_ompsim::TrackedBuf<f64>,
    base: u64,
) {
    match w.team_index() {
        0 => {
            seq.turn(base, || {
                w.write(cell, 0, 1.0);
            });
            seq.turn(base + 1, || {
                w.critical(lock_name, || {});
            });
        }
        1 => {
            seq.wait_for(base + 2);
            w.critical(lock_name, || {});
            w.write(cell, 0, 2.0);
            seq.advance();
        }
        _ => {
            // Other threads do not touch the cell; keep the ticket flow
            // moving past this gadget.
            seq.wait_for(base + 3);
        }
    }
}

// ---- kernels ---------------------------------------------------------------

fn c_loop_a_bad(sim: &OmpSim, cfg: &RunConfig) {
    // OmpSCR loopA.badSolution: loop-carried flow dependence parallelized
    // anyway.
    let n = cfg.size_or(2000);
    let a = sim.alloc::<f64>(n, 1.0);
    let b = sim.alloc::<f64>(n, 0.5);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_static(1..n, |i| {
                let prev = w.read(&a, i - 1);
                let bi = w.read(&b, i);
                w.write(&a, i, prev * 0.99 + bi);
            });
        });
    });
}

fn c_loop_b_bad1(sim: &OmpSim, cfg: &RunConfig) {
    // loopB.badSolution1: dependence at a fixed jump distance.
    let n = cfg.size_or(2000);
    let jump = 37;
    let a = sim.alloc::<f64>(n, 1.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_static(jump..n, |i| {
                let back = w.read(&a, i - jump);
                w.write(&a, i, back + 1.0);
            });
        });
    });
}

fn c_loop_b_bad2(sim: &OmpSim, cfg: &RunConfig) {
    // loopB.badSolution2: the dependence runs backwards.
    let n = cfg.size_or(2000);
    let a = sim.alloc::<f64>(n, 1.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            w.for_static(0..n - 1, |i| {
                let next = w.read(&a, i + 1);
                w.write(&a, i, next * 1.01);
            });
        });
    });
}

fn c_lu(sim: &OmpSim, cfg: &RunConfig) {
    // Correct parallel LU factorization (row-parallel elimination below
    // each pivot, barrier per pivot step): race-free.
    let n = cfg.size_or(28);
    let m = sim.alloc::<f64>(n * n, 0.0);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j { 4.0 + n as f64 } else { 1.0 / (1.0 + (i + j) as f64) };
            m.set_seq(i * n + j, v);
        }
    }
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            for k in 0..n - 1 {
                // Rows below the pivot are eliminated in parallel; the
                // implicit barrier orders pivot steps.
                w.for_static(k + 1..n, |i| {
                    let pivot = w.read(&m, k * n + k);
                    let factor = w.read(&m, i * n + k) / pivot;
                    w.write(&m, i * n + k, factor);
                    for j in k + 1..n {
                        let mkj = w.read(&m, k * n + j);
                        let mij = w.read(&m, i * n + j);
                        w.write(&m, i * n + j, mij - factor * mkj);
                    }
                });
            }
        });
    });
}

fn c_mandel(sim: &OmpSim, cfg: &RunConfig) {
    // Mandelbrot area estimation; the documented race is the unprotected
    // `numoutside` counter.
    let n = cfg.size_or(48);
    let numoutside = sim.alloc::<u64>(1, 0);
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(cfg.threads, |w| {
            let mut local_outside = 0u64;
            w.for_static_nowait(0..n * n, |p| {
                let (i, j) = (p / n, p % n);
                let cr = -2.0 + 2.5 * (i as f64) / (n as f64);
                let ci = 1.125 * (j as f64) / (n as f64);
                let (mut zr, mut zi) = (cr, ci);
                let mut escaped = false;
                for _ in 0..80 {
                    let (r2, i2) = (zr * zr, zi * zi);
                    if r2 + i2 > 4.0 {
                        escaped = true;
                        break;
                    }
                    let new_zr = r2 - i2 + cr;
                    zi = 2.0 * zr * zi + ci;
                    zr = new_zr;
                }
                if escaped {
                    local_outside += 1;
                }
            });
            // The bug: numoutside += local without protection (pinned so
            // every tool sees the same interleaving).
            turns(seq, w, 1, |_| {
                let v = w.read(&numoutside, 0);
                w.write(&numoutside, 0, v + local_outside);
            });
            w.barrier();
        });
    });
}

fn c_md(sim: &OmpSim, cfg: &RunConfig) {
    // Molecular dynamics: Lennard-Jones-ish pairwise forces, then the
    // documented unprotected potential-energy accumulation, plus the
    // undocumented HB-masked write on the normalization cell.
    let n = cfg.size_or(96);
    let pos = sim.alloc::<f64>(n * 3, 0.0);
    let force = sim.alloc::<f64>(n * 3, 0.0);
    let pot = sim.alloc::<f64>(1, 0.0);
    let epot_norm = sim.alloc::<f64>(1, 0.0);
    for i in 0..n * 3 {
        pos.set_seq(i, ((i * 2654435761) % 1000) as f64 / 1000.0);
    }
    let seq = Arc::new(Sequencer::new());
    let seq2 = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        let seq2 = &seq2;
        ctx.parallel(cfg.threads.max(2), |w| {
            let mut local_pot = 0.0;
            // Per-particle force accumulation: i-parallel, so force[i]
            // is thread-private by partition — race-free.
            w.for_static_nowait(0..n, |i| {
                let mut f = [0.0f64; 3];
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let mut d2 = 0.0;
                    let mut d = [0.0f64; 3];
                    for (k, dk) in d.iter_mut().enumerate() {
                        *dk = w.read(&pos, i * 3 + k as u64) - w.read(&pos, j * 3 + k as u64);
                        d2 += *dk * *dk;
                    }
                    let inv = 1.0 / (d2 + 0.1);
                    local_pot += inv;
                    for (fk, dk) in f.iter_mut().zip(&d) {
                        *fk += dk * inv;
                    }
                }
                for (k, fk) in f.iter().enumerate() {
                    w.write(&force, i * 3 + k as u64, *fk);
                }
            });
            // Documented race: pot += local_pot without protection.
            turns(seq, w, 1, |_| {
                let v = w.read(&pot, 0);
                w.write(&pot, 0, v + local_pot);
            });
            // Undocumented extra: both "finalizers" write the
            // normalization cell, HB-masked by the reduction lock.
            hb_masked_extra_write(w, seq2, "md_norm", &epot_norm, 0);
            w.barrier();
        });
    });
}

fn c_pi(sim: &OmpSim, cfg: &RunConfig) {
    // π by midpoint integration with an atomic reduction: race-free.
    let n = cfg.size_or(20_000);
    let sum = sim.alloc::<f64>(1, 0.0);
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            let mut local = 0.0;
            let h = 1.0 / n as f64;
            w.for_static_nowait(0..n, |i| {
                let x = h * (i as f64 + 0.5);
                local += 4.0 / (1.0 + x * x);
            });
            w.fetch_add(&sum, 0, local * h);
            w.barrier();
        });
    });
}

fn c_test_path(sim: &OmpSim, cfg: &RunConfig) {
    // Staircase path counting over a random grid; the documented race is
    // the unprotected best-cost update; the undocumented one is the
    // HB-masked final write of the reported path length.
    let n = cfg.size_or(40);
    let grid = sim.alloc::<u64>(n * n, 0);
    let best = sim.alloc::<u64>(1, u64::MAX / 2);
    let reported = sim.alloc::<f64>(1, 0.0);
    for i in 0..n * n {
        grid.set_seq(i, (i * 1103515245 + 12345) % 97);
    }
    let seq = Arc::new(Sequencer::new());
    let seq2 = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        let seq2 = &seq2;
        ctx.parallel(cfg.threads.max(2), |w| {
            // Each thread evaluates a band of candidate start columns.
            let mut local_best = u64::MAX / 2;
            w.for_static_nowait(0..n, |start| {
                let mut cost = 0u64;
                let mut col = start;
                for row in 0..n {
                    cost += w.read(&grid, row * n + col);
                    col = (col + row) % n;
                }
                local_best = local_best.min(cost);
            });
            // Documented: check-then-act on the shared best without a
            // lock (every thread writes the min it computed).
            turns(seq, w, 1, |_| {
                let cur = w.read(&best, 0);
                w.write(&best, 0, cur.min(local_best));
            });
            hb_masked_extra_write(w, seq2, "path_report", &reported, 0);
            w.barrier();
        });
    });
}

/// Shared skeleton of the four `cpp_qsompX` variants: a real parallel
/// quicksort over an index-partitioned work list, with the documented
/// unprotected statistics counter and the HB-masked undocumented write.
/// Variants differ in pivot selection and cutoff, as in OmpSCR.
fn qsomp(sim: &OmpSim, cfg: &RunConfig, variant: u64) {
    let n = cfg.size_or(4000);
    let data = sim.alloc::<i64>(n, 0);
    let cuts = sim.alloc::<u64>(1, 0); // documented racy statistics counter
    let depth_cell = sim.alloc::<f64>(1, 0.0); // undocumented HB-masked write
    let mut x = 88172645463325252u64 ^ (variant * 7919);
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        data.set_seq(i, (x % 1_000_000) as i64);
    }
    let seq = Arc::new(Sequencer::new());
    let seq2 = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        let seq2 = &seq2;
        ctx.parallel(cfg.threads.max(2), |w| {
            let span = w.team_size();
            let t = w.team_index();
            // Band-parallel sort: each thread quicksorts its own band —
            // the element accesses are disjoint.
            let lo = t * n / span;
            let hi = ((t + 1) * n / span).min(n);
            let mut local_cuts = 0u64;
            if hi > lo {
                let mut stack = vec![(lo, hi - 1)];
                while let Some((l, h)) = stack.pop() {
                    if l >= h {
                        continue;
                    }
                    // Variant-specific pivot selection.
                    let pivot_idx = match variant {
                        1 => h,
                        2 => l + (h - l) / 2,
                        5 => l,
                        _ => l + (h - l) / 3,
                    };
                    let pivot = w.read(&data, pivot_idx);
                    let mut i = l;
                    let mut j = h;
                    while i <= j {
                        while w.read(&data, i) < pivot {
                            i += 1;
                        }
                        while w.read(&data, j) > pivot {
                            if j == 0 {
                                break;
                            }
                            j -= 1;
                        }
                        if i <= j {
                            let (a, b) = (w.read(&data, i), w.read(&data, j));
                            w.write(&data, i, b);
                            w.write(&data, j, a);
                            i += 1;
                            if j == 0 {
                                break;
                            }
                            j -= 1;
                        }
                    }
                    local_cuts += 1;
                    if l < j {
                        stack.push((l, j));
                    }
                    if i < h {
                        stack.push((i, h));
                    }
                }
            }
            // Documented race: global partition counter updated without
            // protection (the OmpSCR counter race).
            turns(seq, w, 1, |_| {
                let v = w.read(&cuts, 0);
                w.write(&cuts, 0, v + local_cuts);
            });
            hb_masked_extra_write(w, seq2, qsomp_lock_name(variant), &depth_cell, 0);
            w.barrier();
        });
    });
}

fn c_fft(sim: &OmpSim, cfg: &RunConfig) {
    // Iterative radix-2 FFT: butterflies of each stage are disjoint and
    // stages are barrier-separated — race-free, and a stress test for
    // the analyzer's strided-interval summarization (power-of-two
    // strides per stage).
    let log_n = cfg.size_or(9); // 512 points
    let n = 1u64 << log_n;
    let re = sim.alloc::<f64>(n, 0.0);
    let im = sim.alloc::<f64>(n, 0.0);
    // Bit-reversed input load (sequential setup).
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - log_n as u32);
        re.set_seq(j as u64, (i as f64 * 0.1).sin());
        im.set_seq(j as u64, 0.0);
    }
    sim.run(|ctx| {
        ctx.parallel(cfg.threads, |w| {
            let mut half = 1u64;
            while half < n {
                let step = half * 2;
                let groups = n / step;
                // One butterfly group per iteration: group g covers
                // [g·step, g·step + half) paired with the upper half.
                w.for_static(0..groups * half, |idx| {
                    let g = idx / half;
                    let k = idx % half;
                    let angle = -std::f64::consts::PI * k as f64 / half as f64;
                    let (wr, wi) = (angle.cos(), angle.sin());
                    let a = g * step + k;
                    let b = a + half;
                    let (ar, ai) = (w.read(&re, a), w.read(&im, a));
                    let (br, bi) = (w.read(&re, b), w.read(&im, b));
                    let (tr, ti) = (br * wr - bi * wi, br * wi + bi * wr);
                    w.write(&re, a, ar + tr);
                    w.write(&im, a, ai + ti);
                    w.write(&re, b, ar - tr);
                    w.write(&im, b, ai - ti);
                });
                half = step;
            }
        });
    });
}

fn c_jacobi01(sim: &OmpSim, cfg: &RunConfig) {
    // OmpSCR's jacobi01 shape with its documented bug: the residual
    // accumulation inside the sweep is unprotected.
    let n = cfg.size_or(24);
    let grid = sim.alloc::<f64>(n * n, 0.0);
    let next = sim.alloc::<f64>(n * n, 0.0);
    let resid = sim.alloc::<f64>(1, 0.0);
    for j in 0..n {
        grid.set_seq(j, 50.0);
    }
    let seq = Arc::new(Sequencer::new());
    sim.run(|ctx| {
        let seq = &seq;
        ctx.parallel(cfg.threads, |w| {
            for _sweep in 0..2 {
                let mut local = 0.0;
                w.for_static(1..n - 1, |i| {
                    for j in 1..n - 1 {
                        let s = 0.25
                            * (w.read(&grid, (i - 1) * n + j)
                                + w.read(&grid, (i + 1) * n + j)
                                + w.read(&grid, i * n + j - 1)
                                + w.read(&grid, i * n + j + 1));
                        let old = w.read(&grid, i * n + j);
                        w.write(&next, i * n + j, s);
                        local += (s - old) * (s - old);
                    }
                });
                // The bug: resid += local without protection.
                turns(seq, w, 1, |_| {
                    let v = w.read(&resid, 0);
                    w.write(&resid, 0, v + local);
                });
                w.barrier();
                w.for_static(1..n - 1, |i| {
                    for j in 1..n - 1 {
                        let v = w.read(&next, i * n + j);
                        w.write(&grid, i * n + j, v);
                    }
                });
            }
        });
    });
}

fn c_jacobi02(sim: &OmpSim, cfg: &RunConfig) {
    // jacobi02: the fixed variant — residual via deterministic team
    // reduction.
    let n = cfg.size_or(24);
    let threads = cfg.threads;
    let grid = sim.alloc::<f64>(n * n, 0.0);
    let next = sim.alloc::<f64>(n * n, 0.0);
    let partials = sim.alloc::<f64>(threads.max(1) as u64, 0.0);
    let resid = sim.alloc::<f64>(1, 0.0);
    for j in 0..n {
        grid.set_seq(j, 50.0);
    }
    sim.run(|ctx| {
        ctx.parallel(threads, |w| {
            for _sweep in 0..2 {
                let mut local = 0.0;
                w.for_static(1..n - 1, |i| {
                    for j in 1..n - 1 {
                        let s = 0.25
                            * (w.read(&grid, (i - 1) * n + j)
                                + w.read(&grid, (i + 1) * n + j)
                                + w.read(&grid, i * n + j - 1)
                                + w.read(&grid, i * n + j + 1));
                        let old = w.read(&grid, i * n + j);
                        w.write(&next, i * n + j, s);
                        local += (s - old) * (s - old);
                    }
                });
                w.reduce_sum(&partials, &resid, local);
                w.for_static(1..n - 1, |i| {
                    for j in 1..n - 1 {
                        let v = w.read(&next, i * n + j);
                        w.write(&grid, i * n + j, v);
                    }
                });
            }
        });
    });
}

fn qsomp_lock_name(variant: u64) -> &'static str {
    match variant {
        1 => "qsomp1_depth",
        2 => "qsomp2_depth",
        5 => "qsomp5_depth",
        _ => "qsomp6_depth",
    }
}

/// The full OmpSCR-like suite.
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Kernel {
            spec: spec(
                "c_loopA.badSolution",
                1,
                1,
                Some(1),
                "loop-carried flow dependence parallelized anyway",
            ),
            run: c_loop_a_bad,
        }),
        Box::new(Kernel {
            spec: spec("c_loopB.badSolution1", 1, 1, Some(1), "fixed-distance jump dependence"),
            run: c_loop_b_bad1,
        }),
        Box::new(Kernel {
            spec: spec("c_loopB.badSolution2", 1, 1, Some(1), "backward anti-dependence"),
            run: c_loop_b_bad2,
        }),
        Box::new(Kernel {
            spec: spec("c_lu", 0, 0, Some(0), "correct pivot-stepped LU factorization (race-free)"),
            run: c_lu,
        }),
        Box::new(Kernel {
            spec: spec(
                "c_mandel",
                1,
                2,
                Some(2),
                "Mandelbrot area: unprotected numoutside counter",
            ),
            run: c_mandel,
        }),
        Box::new(Kernel {
            spec: spec(
                "c_md",
                1,
                3,
                Some(2),
                "molecular dynamics: unprotected potential accumulation; \
                 SWORD adds the HB-masked normalization write (new, real)",
            ),
            run: c_md,
        }),
        Box::new(Kernel {
            spec: spec("c_pi", 0, 0, Some(0), "π integration with atomic reduction (race-free)"),
            run: c_pi,
        }),
        Box::new(Kernel {
            spec: spec(
                "c_testPath",
                1,
                3,
                Some(2),
                "path search: unprotected best-cost check-then-act; SWORD \
                 adds the HB-masked report write (new, real)",
            ),
            run: c_test_path,
        }),
        Box::new(Kernel {
            spec: spec(
                "cpp_qsomp1",
                1,
                3,
                Some(2),
                "parallel quicksort v1: unprotected partition counter; \
                 SWORD adds the HB-masked depth write (new, real)",
            ),
            run: |sim, cfg| qsomp(sim, cfg, 1),
        }),
        Box::new(Kernel {
            spec: spec(
                "cpp_qsomp2",
                1,
                3,
                Some(2),
                "quicksort v2 (median pivot): same counter race + new race",
            ),
            run: |sim, cfg| qsomp(sim, cfg, 2),
        }),
        Box::new(Kernel {
            spec: spec(
                "cpp_qsomp5",
                1,
                3,
                Some(2),
                "quicksort v5 (first pivot): same counter race + new race",
            ),
            run: |sim, cfg| qsomp(sim, cfg, 5),
        }),
        Box::new(Kernel {
            spec: spec(
                "cpp_qsomp6",
                1,
                3,
                Some(2),
                "quicksort v6 (third pivot): same counter race + new race",
            ),
            run: |sim, cfg| qsomp(sim, cfg, 6),
        }),
        Box::new(Kernel {
            spec: spec(
                "c_fft",
                0,
                0,
                Some(0),
                "radix-2 FFT with barrier-separated stages (race-free; \
                 power-of-two stride stress for summarization)",
            ),
            run: c_fft,
        }),
        Box::new(Kernel {
            spec: spec(
                "c_jacobi01",
                1,
                2,
                Some(2),
                "Jacobi sweep with an unprotected residual accumulation",
            ),
            run: c_jacobi01,
        }),
        Box::new(Kernel {
            spec: spec(
                "c_jacobi02",
                0,
                0,
                Some(0),
                "Jacobi with a deterministic reduction (the fixed variant)",
            ),
            run: c_jacobi02,
        }),
    ]
}
