//! Metrics registry: named counter/gauge/histogram handles plus
//! read-on-demand source gauges, with Prometheus text exposition and
//! journal snapshots.
//!
//! Existing ad-hoc metrics (`FlushCounters`, `MemGauge`, pool occupancy)
//! are unified by registering *sources* — closures evaluated at
//! snapshot/exposition time — so the hot paths keep their cheap atomics
//! and the registry is purely a naming and export layer over them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::journal::{Journal, JournalEvent, Layer};

/// Monotonic counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous gauge handle (set-style, e.g. queue depth or lag).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const HIST_BUCKETS: usize = 28;

#[derive(Debug)]
struct HistInner {
    // Bucket i counts samples with value < 2^i (log2 buckets); the last
    // bucket is the +Inf overflow.
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Latency histogram with power-of-two buckets (records e.g. solver call
/// nanoseconds). Lock-free: one atomic add per record.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Approximate quantile (upper bound of the bucket containing it).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i).
                return 1u64 << i;
            }
        }
        self.max()
    }

    fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(HIST_BUCKETS);
        let mut cum = 0;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            out.push((1u64 << i, cum));
        }
        out
    }
}

type Source = Box<dyn Fn() -> f64 + Send>;

enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Source(Source),
}

struct Metric {
    name: String,
    help: String,
    kind: Kind,
}

/// The registry: an ordered set of named metrics.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<Vec<Metric>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &n).finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or fetches, by name) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry lock");
        for m in metrics.iter() {
            if m.name == name {
                if let Kind::Counter(c) = &m.kind {
                    return c.clone();
                }
            }
        }
        let handle = Counter::default();
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: Kind::Counter(handle.clone()),
        });
        handle
    }

    /// Registers (or fetches, by name) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry lock");
        for m in metrics.iter() {
            if m.name == name {
                if let Kind::Gauge(g) = &m.kind {
                    return g.clone();
                }
            }
        }
        let handle = Gauge::default();
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: Kind::Gauge(handle.clone()),
        });
        handle
    }

    /// Registers (or fetches, by name) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("registry lock");
        for m in metrics.iter() {
            if m.name == name {
                if let Kind::Histogram(h) = &m.kind {
                    return h.clone();
                }
            }
        }
        let handle = Histogram::default();
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: Kind::Histogram(handle.clone()),
        });
        handle
    }

    /// Registers a gauge-valued source evaluated at read time. Replaces
    /// any existing source of the same name (re-registration on restart).
    pub fn source(&self, name: &str, help: &str, f: impl Fn() -> f64 + Send + 'static) {
        let mut metrics = self.metrics.lock().expect("registry lock");
        metrics.retain(|m| !(m.name == name && matches!(m.kind, Kind::Source(_))));
        metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind: Kind::Source(Box::new(f)),
        });
    }

    /// Flat name→value view over every metric. Histograms expand to
    /// `_count`, `_sum`, `_max`, `_p50`, and `_p99` entries.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut out = Vec::with_capacity(metrics.len());
        for m in metrics.iter() {
            match &m.kind {
                Kind::Counter(c) => out.push((m.name.clone(), c.get() as f64)),
                Kind::Gauge(g) => out.push((m.name.clone(), g.get() as f64)),
                Kind::Source(f) => out.push((m.name.clone(), f())),
                Kind::Histogram(h) => {
                    out.push((format!("{}_count", m.name), h.count() as f64));
                    out.push((format!("{}_sum", m.name), h.sum() as f64));
                    out.push((format!("{}_max", m.name), h.max() as f64));
                    out.push((format!("{}_p50", m.name), h.quantile(0.5) as f64));
                    out.push((format!("{}_p95", m.name), h.quantile(0.95) as f64));
                    out.push((format!("{}_p99", m.name), h.quantile(0.99) as f64));
                }
            }
        }
        out
    }

    /// Prometheus text exposition format (v0.0.4).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.metrics.lock().expect("registry lock");
        let mut out = String::new();
        for m in metrics.iter() {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            match &m.kind {
                Kind::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    let _ = writeln!(out, "{} {}", m.name, c.get());
                }
                Kind::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {}", m.name, g.get());
                }
                Kind::Source(f) => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {}", m.name, f());
                }
                Kind::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    for (le, cum) in h.cumulative_buckets() {
                        let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", m.name, le, cum);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count());
                    let _ = writeln!(out, "{}_sum {}", m.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", m.name, h.count());
                    // Summary-style quantile lines (bucket upper bounds)
                    // so scrape-side dashboards get tail latency without
                    // needing histogram_quantile() over sparse buckets.
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        let _ =
                            writeln!(out, "{}{{quantile=\"{}\"}} {}", m.name, label, h.quantile(q));
                    }
                }
            }
        }
        out
    }

    /// Builds a `metrics` snapshot event carrying the flat view, suitable
    /// for appending to the journal (renders as counter tracks in the
    /// Chrome export).
    pub fn snapshot_event(&self, journal: &Journal) -> JournalEvent {
        JournalEvent {
            layer: Layer::Cli,
            thread: "metrics".to_string(),
            name: "metrics".to_string(),
            t_us: journal.now_us(),
            dur_us: None,
            args: self.snapshot(),
            flow: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("sword_flushes_total", "flushes");
        c.inc();
        c.add(4);
        // Same name returns the same underlying handle.
        assert_eq!(reg.counter("sword_flushes_total", "flushes").get(), 5);

        let g = reg.gauge("sword_writer_queue_depth", "queue depth");
        g.set(7);
        assert_eq!(g.get(), 7);

        let h = reg.histogram("sword_solver_call_nanos", "solver latency");
        for v in [100, 200, 1500, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 101_800);
        assert_eq!(h.max(), 100_000);
        assert!(h.quantile(0.5) >= 200);
        assert!(h.quantile(1.0) >= 100_000);

        reg.source("sword_pool_free", "free buffers", || 3.0);
        let snap = reg.snapshot();
        let lookup = |name: &str| snap.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
        assert_eq!(lookup("sword_flushes_total"), Some(5.0));
        assert_eq!(lookup("sword_writer_queue_depth"), Some(7.0));
        assert_eq!(lookup("sword_solver_call_nanos_count"), Some(4.0));
        assert_eq!(lookup("sword_pool_free"), Some(3.0));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("a_total", "a counter").add(2);
        reg.gauge("b_bytes", "a gauge").set(9);
        reg.histogram("c_nanos", "a histogram").record(3);
        reg.source("d_ratio", "a source", || 1.5);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total 2"));
        assert!(text.contains("# TYPE b_bytes gauge"));
        assert!(text.contains("b_bytes 9"));
        assert!(text.contains("# TYPE c_nanos histogram"));
        assert!(text.contains("c_nanos_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("c_nanos_sum 3"));
        assert!(text.contains("c_nanos{quantile=\"0.5\"} 4"));
        assert!(text.contains("c_nanos{quantile=\"0.95\"} 4"));
        assert!(text.contains("c_nanos{quantile=\"0.99\"} 4"));
        assert!(text.contains("d_ratio 1.5"));
    }

    #[test]
    fn source_reregistration_replaces() {
        let reg = Registry::new();
        reg.source("x", "h", || 1.0);
        reg.source("x", "h", || 2.0);
        let snap = reg.snapshot();
        assert_eq!(snap.iter().filter(|(k, _)| k == "x").count(), 1);
        assert_eq!(snap[0].1, 2.0);
    }

    #[test]
    fn snapshot_event_carries_registry_view() {
        let reg = Registry::new();
        reg.counter("n", "n").add(3);
        let journal = Journal::new(8);
        let ev = reg.snapshot_event(&journal);
        assert_eq!(ev.name, "metrics");
        assert_eq!(ev.args, vec![("n".to_string(), 3.0)]);
    }
}
