//! Trace export: journal events → Chrome `trace_event` JSON.
//!
//! The output loads directly in `chrome://tracing` or Perfetto. Each
//! [`Layer`](crate::Layer) becomes a synthetic process row, each
//! recording thread a
//! named thread row; spans become complete (`"X"`) events, instants
//! become `"i"` events, and `metrics` snapshots become counter (`"C"`)
//! tracks so gauges render as area charts over the timeline.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

use crate::journal::{FlowPhase, JournalEvent};
use crate::json::Value;

/// Supported export formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportFormat {
    /// Chrome `trace_event` JSON (array-of-events object form).
    Chrome,
}

impl ExportFormat {
    /// Parses a `--format` flag value.
    pub fn from_name(s: &str) -> Option<ExportFormat> {
        match s {
            "chrome" => Some(ExportFormat::Chrome),
            _ => None,
        }
    }
}

/// Converts journal events into a Chrome `trace_event` document.
pub fn chrome_trace(events: &[JournalEvent]) -> Value {
    let mut out = Vec::new();
    // Assign stable integer tids per (layer, thread label) in
    // first-seen order, and emit metadata naming events up front.
    let mut tids: BTreeMap<(u64, String), u64> = BTreeMap::new();
    let mut next_tid = 1;
    let mut seen_pids: Vec<u64> = Vec::new();
    for event in events {
        let pid = event.layer.pid();
        if !seen_pids.contains(&pid) {
            seen_pids.push(pid);
            out.push(metadata_event(
                "process_name",
                pid,
                0,
                format!("sword: {}", event.layer.as_str()),
            ));
        }
        let key = (pid, event.thread.clone());
        if !tids.contains_key(&key) {
            tids.insert(key.clone(), next_tid);
            out.push(metadata_event("thread_name", pid, next_tid, event.thread.clone()));
            out.push(Value::Obj(vec![
                ("name".to_string(), Value::Str("thread_sort_index".to_string())),
                ("ph".to_string(), Value::Str("M".to_string())),
                ("pid".to_string(), Value::Num(pid as f64)),
                ("tid".to_string(), Value::Num(next_tid as f64)),
                (
                    "args".to_string(),
                    Value::Obj(vec![("sort_index".to_string(), Value::Num(next_tid as f64))]),
                ),
            ]));
            next_tid += 1;
        }
        let tid = tids[&key];
        out.push(trace_event(event, pid, tid));
        if let Some(flow) = flow_event(event, pid, tid) {
            out.push(flow);
        }
    }
    Value::Obj(vec![
        ("traceEvents".to_string(), Value::Arr(out)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

fn metadata_event(name: &str, pid: u64, tid: u64, value: String) -> Value {
    Value::Obj(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::Num(pid as f64)),
        ("tid".to_string(), Value::Num(tid as f64)),
        ("args".to_string(), Value::Obj(vec![("name".to_string(), Value::Str(value))])),
    ])
}

fn trace_event(event: &JournalEvent, pid: u64, tid: u64) -> Value {
    let args: Vec<(String, Value)> =
        event.args.iter().map(|(k, v)| (k.clone(), Value::Num(*v))).collect();
    let mut pairs = vec![
        ("name".to_string(), Value::Str(event.name.clone())),
        ("cat".to_string(), Value::Str(event.layer.as_str().to_string())),
        ("pid".to_string(), Value::Num(pid as f64)),
        ("tid".to_string(), Value::Num(tid as f64)),
        ("ts".to_string(), Value::Num(event.t_us as f64)),
    ];
    match event.dur_us {
        Some(dur) => {
            pairs.push(("ph".to_string(), Value::Str("X".to_string())));
            pairs.push(("dur".to_string(), Value::Num(dur as f64)));
        }
        None if event.name == "metrics" => {
            pairs.push(("ph".to_string(), Value::Str("C".to_string())));
        }
        None => {
            pairs.push(("ph".to_string(), Value::Str("i".to_string())));
            pairs.push(("s".to_string(), Value::Str("t".to_string())));
        }
    }
    if !args.is_empty() {
        pairs.push(("args".to_string(), Value::Obj(args)));
    }
    Value::Obj(pairs)
}

// A flow arrow anchored to this event: `s` leaves the tail of the
// producer span, `t`/`f` arrive at the head of the consumer span. All
// hops of one channel handoff share a name/cat/id, which is how viewers
// join them into one arrow chain across threads and processes.
fn flow_event(event: &JournalEvent, pid: u64, tid: u64) -> Option<Value> {
    let (id, phase) = event.flow?;
    let ts = match phase {
        FlowPhase::Start => event.t_us + event.dur_us.unwrap_or(0),
        FlowPhase::Step | FlowPhase::End => event.t_us,
    };
    let mut pairs = vec![
        ("name".to_string(), Value::Str("queue-hop".to_string())),
        ("cat".to_string(), Value::Str("flow".to_string())),
        ("ph".to_string(), Value::Str(phase.as_str().to_string())),
        ("id".to_string(), Value::Num(id as f64)),
        ("pid".to_string(), Value::Num(pid as f64)),
        ("tid".to_string(), Value::Num(tid as f64)),
        ("ts".to_string(), Value::Num(ts as f64)),
    ];
    if phase == FlowPhase::End {
        // Bind to the enclosing slice so the arrow lands on the span
        // that dequeued the item, not on a zero-width point.
        pairs.push(("bp".to_string(), Value::Str("e".to_string())));
    }
    Some(Value::Obj(pairs))
}

/// Renders journal events to a Chrome trace file.
pub fn write_chrome_trace(path: &Path, events: &[JournalEvent]) -> io::Result<()> {
    let doc = chrome_trace(events);
    let mut file = std::fs::File::create(path)?;
    file.write_all(doc.render().as_bytes())?;
    file.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Layer;

    fn ev(layer: Layer, thread: &str, name: &str, t: u64, dur: Option<u64>) -> JournalEvent {
        JournalEvent {
            layer,
            thread: thread.to_string(),
            name: name.to_string(),
            t_us: t,
            dur_us: dur,
            args: vec![("bytes".to_string(), 10.0)],
            flow: None,
        }
    }

    #[test]
    fn export_shapes_spans_instants_and_counters() {
        let events = vec![
            ev(Layer::Runtime, "app-0", "flush-handoff", 5, Some(20)),
            ev(Layer::Runtime, "writer", "write", 10, Some(3)),
            ev(Layer::Offline, "analyzer", "build-structure", 40, Some(8)),
            JournalEvent {
                layer: Layer::Cli,
                thread: "metrics".to_string(),
                name: "metrics".to_string(),
                t_us: 50,
                dur_us: None,
                args: vec![("queue".to_string(), 2.0)],
                flow: None,
            },
            ev(Layer::Runtime, "app-0", "publish", 60, None),
        ];
        let doc = chrome_trace(&events);
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();

        // 3 process_name + 4 thread_name + 4 sort_index + 5 events.
        assert_eq!(items.len(), 16);
        let phase = |v: &Value| v.get("ph").unwrap().as_str().unwrap().to_string();
        let by_name = |n: &str| {
            items.iter().find(|v| v.get("name").unwrap().as_str() == Some(n)).unwrap().clone()
        };
        assert_eq!(phase(&by_name("flush-handoff")), "X");
        assert_eq!(by_name("flush-handoff").get("dur").unwrap().as_u64(), Some(20));
        assert_eq!(phase(&by_name("metrics")), "C");
        assert_eq!(phase(&by_name("publish")), "i");

        // Layers map to distinct pids; same thread label shares a tid.
        assert_eq!(by_name("flush-handoff").get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(by_name("build-structure").get("pid").unwrap().as_u64(), Some(2));
        assert_eq!(
            by_name("flush-handoff").get("tid").unwrap().as_u64(),
            by_name("publish").get("tid").unwrap().as_u64()
        );
        assert_ne!(
            by_name("flush-handoff").get("tid").unwrap().as_u64(),
            by_name("write").get("tid").unwrap().as_u64()
        );

        // Round-trips through our own parser (valid JSON).
        let text = doc.render();
        assert_eq!(crate::json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn flow_members_emit_linked_arrow_events() {
        let mut producer = ev(Layer::Runtime, "app-0", "flush-handoff", 5, Some(20));
        producer.flow = Some((9, FlowPhase::Start));
        let mut hop = ev(Layer::Runtime, "compress-0", "compress", 40, Some(10));
        hop.flow = Some((9, FlowPhase::Step));
        let mut consumer = ev(Layer::Runtime, "writer", "write", 70, Some(4));
        consumer.flow = Some((9, FlowPhase::End));
        let doc = chrome_trace(&[producer, hop, consumer]);
        let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let flows: Vec<&Value> =
            items.iter().filter(|v| v.get("cat").and_then(Value::as_str) == Some("flow")).collect();
        assert_eq!(flows.len(), 3);
        let ph = |v: &Value| v.get("ph").unwrap().as_str().unwrap().to_string();
        assert_eq!(ph(flows[0]), "s");
        assert_eq!(ph(flows[1]), "t");
        assert_eq!(ph(flows[2]), "f");
        // One shared id and name joins the chain; the start anchors at
        // the producer span's tail (5 + 20).
        for f in &flows {
            assert_eq!(f.get("id").unwrap().as_u64(), Some(9));
            assert_eq!(f.get("name").unwrap().as_str(), Some("queue-hop"));
        }
        assert_eq!(flows[0].get("ts").unwrap().as_u64(), Some(25));
        assert_eq!(flows[2].get("ts").unwrap().as_u64(), Some(70));
        assert_eq!(flows[2].get("bp").unwrap().as_str(), Some("e"));
        // Flow arrows ride on the same pid/tid rows as their spans.
        assert_ne!(flows[0].get("tid").unwrap().as_u64(), flows[2].get("tid").unwrap().as_u64());
    }
}
