//! Span/event journal: bounded per-thread ring buffers drained to a
//! JSONL file alongside the session.
//!
//! The recording discipline mirrors the tool it observes: each thread
//! writes only into its own fixed-capacity ring, so the journal's memory
//! is `threads x capacity x event` and never grows with run length. A
//! full ring drops the newest event and bumps a shared atomic
//! `dropped_events` counter instead of allocating. The hot path touches
//! only the owning ring's lock, which is contended solely by the drainer
//! (a periodic, amortized pass) — never by other recording threads.
//!
//! Drained events are appended to `obs.jsonl` as one JSON object per
//! line. Because lines are appended incrementally and each is
//! self-contained, a crashed run's journal survives for postmortem: a
//! reader tolerates a torn final line (see [`read_journal`]).

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::{self, Value};

/// Default per-thread ring capacity (events). At ~100 bytes/event this
/// bounds the journal at ~800 KiB per recording thread, far inside the
/// tool's own 3.3 MB/thread budget.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Which layer of the stack an event belongs to. Renders as a separate
/// process row in the Chrome trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Online collection: app threads, compression workers, writer.
    Runtime,
    /// Offline analysis: pipeline stages and workers, live poller.
    Offline,
    /// The archer-sim comparison tool.
    Archer,
    /// CLI orchestration (run/analyze/watch/fuzz driver activity).
    Cli,
}

impl Layer {
    /// Stable lowercase name used in the JSONL `layer` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Runtime => "runtime",
            Layer::Offline => "offline",
            Layer::Archer => "archer",
            Layer::Cli => "cli",
        }
    }

    /// Stable synthetic pid for Chrome trace export (one process row per
    /// layer).
    pub fn pid(self) -> u64 {
        match self {
            Layer::Runtime => 1,
            Layer::Offline => 2,
            Layer::Archer => 3,
            Layer::Cli => 4,
        }
    }

    /// Parses the JSONL `layer` field.
    pub fn from_name(s: &str) -> Option<Layer> {
        match s {
            "runtime" => Some(Layer::Runtime),
            "offline" => Some(Layer::Offline),
            "archer" => Some(Layer::Archer),
            "cli" => Some(Layer::Cli),
            _ => None,
        }
    }
}

/// Where an event sits on a producer→consumer flow: the producing side
/// (`Start`), an intermediate hop (`Step`), or the final consumer
/// (`End`). Chrome trace export turns these into flow arrows (`ph`
/// `s`/`t`/`f`) joining spans across threads by flow id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowPhase {
    /// Producer side of a channel handoff.
    Start,
    /// Intermediate hop (consumed then re-enqueued downstream).
    Step,
    /// Final consumer of the flow.
    End,
}

impl FlowPhase {
    /// Stable one-letter name used in the JSONL `fph` field (matches the
    /// Chrome trace `ph` letter).
    pub fn as_str(self) -> &'static str {
        match self {
            FlowPhase::Start => "s",
            FlowPhase::Step => "t",
            FlowPhase::End => "f",
        }
    }

    /// Parses the JSONL `fph` field.
    pub fn from_name(s: &str) -> Option<FlowPhase> {
        match s {
            "s" => Some(FlowPhase::Start),
            "t" => Some(FlowPhase::Step),
            "f" => Some(FlowPhase::End),
            _ => None,
        }
    }
}

/// One journal record: a completed span (`dur_us` set) or an instant.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEvent {
    /// Owning layer.
    pub layer: Layer,
    /// Recording thread's label (e.g. `app-3`, `writer`, `oa-worker-0`).
    pub thread: String,
    /// Event name (e.g. `flush-handoff`, `compress`, `build-structure`).
    pub name: String,
    /// Start time, microseconds since the journal epoch.
    pub t_us: u64,
    /// Span duration in microseconds; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Numeric attributes (byte counts, depths, ...).
    pub args: Vec<(String, f64)>,
    /// Causal flow membership: `(flow id, phase)` when this event sits on
    /// a cross-thread producer→consumer chain.
    pub flow: Option<(u64, FlowPhase)>,
}

impl JournalEvent {
    /// Serializes to one JSONL line (without the trailing newline).
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("t".to_string(), Value::Num(self.t_us as f64)),
            ("layer".to_string(), Value::Str(self.layer.as_str().to_string())),
            ("thread".to_string(), Value::Str(self.thread.clone())),
            ("name".to_string(), Value::Str(self.name.clone())),
        ];
        if let Some(dur) = self.dur_us {
            pairs.push(("dur".to_string(), Value::Num(dur as f64)));
        }
        if !self.args.is_empty() {
            let args = self.args.iter().map(|(k, v)| (k.clone(), Value::Num(*v))).collect();
            pairs.push(("args".to_string(), Value::Obj(args)));
        }
        if let Some((id, phase)) = self.flow {
            pairs.push(("flow".to_string(), Value::Num(id as f64)));
            pairs.push(("fph".to_string(), Value::Str(phase.as_str().to_string())));
        }
        Value::Obj(pairs)
    }

    /// Parses one journal line.
    pub fn from_json(v: &Value) -> Result<JournalEvent, String> {
        let t_us = v.get("t").and_then(Value::as_u64).ok_or("missing t")?;
        let layer = v
            .get("layer")
            .and_then(Value::as_str)
            .and_then(Layer::from_name)
            .ok_or("missing/unknown layer")?;
        let thread = v.get("thread").and_then(Value::as_str).ok_or("missing thread")?;
        let name = v.get("name").and_then(Value::as_str).ok_or("missing name")?;
        let dur_us = v.get("dur").and_then(Value::as_u64);
        let mut args = Vec::new();
        if let Some(pairs) = v.get("args").and_then(Value::as_obj) {
            for (k, av) in pairs {
                args.push((k.clone(), av.as_f64().ok_or("non-numeric arg")?));
            }
        }
        let flow =
            match (v.get("flow").and_then(Value::as_u64), v.get("fph").and_then(Value::as_str)) {
                (Some(id), Some(p)) => Some((id, FlowPhase::from_name(p).ok_or("unknown fph")?)),
                _ => None,
            };
        Ok(JournalEvent {
            layer,
            thread: thread.to_string(),
            name: name.to_string(),
            t_us,
            dur_us,
            args,
            flow,
        })
    }
}

struct Ring {
    layer: Layer,
    label: String,
    events: Mutex<VecDeque<JournalEvent>>,
}

struct TapSender {
    tx: SyncSender<JournalEvent>,
    dropped: Arc<AtomicU64>,
}

/// A live subscription to drained journal events (see [`Journal::tap`]).
/// Events are forwarded at drain time through a bounded channel; when the
/// subscriber falls behind, the newest events are dropped and counted
/// instead of buffering without bound (slow-client shedding at the
/// source). Dropping the tap unsubscribes it.
pub struct JournalTap {
    rx: Receiver<JournalEvent>,
    dropped: Arc<AtomicU64>,
}

impl JournalTap {
    /// Receives the next forwarded event, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<JournalEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Receives a forwarded event if one is ready.
    pub fn try_recv(&self) -> Option<JournalEvent> {
        self.rx.try_recv().ok()
    }

    /// Events dropped because this tap's channel was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

struct JournalInner {
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    // Shared ring for events not tied to a registered thread (registry
    // snapshots, drop markers); avoids growing the ring list per record.
    meta: Arc<Ring>,
    dropped: AtomicU64,
    next_flow: AtomicU64,
    taps: Mutex<Vec<TapSender>>,
}

/// The shared journal: hands out per-thread recorders and drains them.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.inner.capacity)
            .field("dropped", &self.dropped_events())
            .finish()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(DEFAULT_RING_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal whose per-thread rings hold `capacity` events.
    pub fn new(capacity: usize) -> Journal {
        let meta = Arc::new(Ring {
            layer: Layer::Cli,
            label: "metrics".to_string(),
            events: Mutex::new(VecDeque::new()),
        });
        Journal {
            inner: Arc::new(JournalInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                rings: Mutex::new(vec![Arc::clone(&meta)]),
                meta,
                dropped: AtomicU64::new(0),
                next_flow: AtomicU64::new(1),
                taps: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Allocates a fresh causal-flow id, unique within this journal. Ids
    /// stamp the producer and consumer events of one channel handoff so
    /// trace viewers can draw the arrow between them.
    pub fn next_flow_id(&self) -> u64 {
        self.inner.next_flow.fetch_add(1, Ordering::Relaxed)
    }

    /// Subscribes to drained events through a bounded channel of
    /// `capacity` events. Forwarding happens at drain time (the periodic
    /// sink pass), never on the recording hot path; a full channel drops
    /// the event for that tap and bumps its drop counter.
    pub fn tap(&self, capacity: usize) -> JournalTap {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        self.inner
            .taps
            .lock()
            .expect("journal lock")
            .push(TapSender { tx, dropped: Arc::clone(&dropped) });
        JournalTap { rx, dropped }
    }

    /// Records a pre-built event into the shared meta ring (same bounded
    /// drop-and-count discipline as per-thread rings). The event keeps
    /// its own layer/thread attribution.
    pub fn record(&self, event: JournalEvent) {
        let mut events = self.inner.meta.events.lock().expect("ring lock");
        if events.len() >= self.inner.capacity {
            drop(events);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push_back(event);
    }

    /// Microseconds since the journal epoch.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Registers a recorder for one thread. Call once per thread; the
    /// handle is cheap to clone but rings are not deduplicated by label.
    pub fn for_thread(&self, layer: Layer, label: impl Into<String>) -> ThreadJournal {
        let ring =
            Arc::new(Ring { layer, label: label.into(), events: Mutex::new(VecDeque::new()) });
        self.inner.rings.lock().expect("journal lock").push(Arc::clone(&ring));
        ThreadJournal { journal: self.clone(), ring }
    }

    /// Events dropped because a ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Removes and returns all buffered events, oldest first per ring,
    /// merged and sorted by start time.
    pub fn drain(&self) -> Vec<JournalEvent> {
        let rings: Vec<Arc<Ring>> = self.inner.rings.lock().expect("journal lock").clone();
        let mut out = Vec::new();
        for ring in rings {
            let mut events = ring.events.lock().expect("ring lock");
            out.extend(events.drain(..));
        }
        out.sort_by_key(|e| e.t_us);
        self.forward_to_taps(&out);
        out
    }

    fn forward_to_taps(&self, events: &[JournalEvent]) {
        if events.is_empty() {
            return;
        }
        let mut taps = self.inner.taps.lock().expect("journal lock");
        if taps.is_empty() {
            return;
        }
        taps.retain(|tap| {
            for event in events {
                match tap.tx.try_send(event.clone()) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        tap.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Disconnected(_)) => return false,
                }
            }
            true
        });
    }
}

/// Per-thread recording handle. Records go into this thread's ring only.
#[derive(Clone)]
pub struct ThreadJournal {
    journal: Journal,
    ring: Arc<Ring>,
}

impl std::fmt::Debug for ThreadJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadJournal").field("label", &self.ring.label).finish()
    }
}

impl ThreadJournal {
    /// Microseconds since the journal epoch.
    pub fn now_us(&self) -> u64 {
        self.journal.now_us()
    }

    /// Starts a scoped span; recorded when the guard drops.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span {
            recorder: self,
            name: name.into(),
            start_us: self.journal.now_us(),
            args: Vec::new(),
            flow: None,
        }
    }

    /// Records an already-measured span (start and duration in
    /// microseconds since the journal epoch).
    pub fn span_closed(
        &self,
        name: impl Into<String>,
        start_us: u64,
        dur_us: u64,
        args: Vec<(String, f64)>,
    ) {
        self.span_closed_flow(name, start_us, dur_us, args, None);
    }

    /// [`ThreadJournal::span_closed`] with causal-flow membership.
    pub fn span_closed_flow(
        &self,
        name: impl Into<String>,
        start_us: u64,
        dur_us: u64,
        args: Vec<(String, f64)>,
        flow: Option<(u64, FlowPhase)>,
    ) {
        self.push(JournalEvent {
            layer: self.ring.layer,
            thread: self.ring.label.clone(),
            name: name.into(),
            t_us: start_us,
            dur_us: Some(dur_us),
            args,
            flow,
        });
    }

    /// Records an instant event.
    pub fn instant(&self, name: impl Into<String>, args: Vec<(String, f64)>) {
        self.instant_flow(name, args, None);
    }

    /// [`ThreadJournal::instant`] with causal-flow membership.
    pub fn instant_flow(
        &self,
        name: impl Into<String>,
        args: Vec<(String, f64)>,
        flow: Option<(u64, FlowPhase)>,
    ) {
        let now = self.journal.now_us();
        self.push(JournalEvent {
            layer: self.ring.layer,
            thread: self.ring.label.clone(),
            name: name.into(),
            t_us: now,
            dur_us: None,
            args,
            flow,
        });
    }

    fn push(&self, event: JournalEvent) {
        let mut events = self.ring.events.lock().expect("ring lock");
        if events.len() >= self.journal.inner.capacity {
            drop(events);
            self.journal.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push_back(event);
    }
}

/// Scoped span guard: measures from creation to drop.
pub struct Span<'a> {
    recorder: &'a ThreadJournal,
    name: String,
    start_us: u64,
    args: Vec<(String, f64)>,
    flow: Option<(u64, FlowPhase)>,
}

impl Span<'_> {
    /// Attaches a numeric attribute.
    pub fn arg(mut self, key: impl Into<String>, value: f64) -> Self {
        self.args.push((key.into(), value));
        self
    }

    /// Attaches a numeric attribute to an existing guard (for values
    /// known only mid-span).
    pub fn set_arg(&mut self, key: impl Into<String>, value: f64) {
        self.args.push((key.into(), value));
    }

    /// Places this span on a causal flow.
    pub fn flow(mut self, id: u64, phase: FlowPhase) -> Self {
        self.flow = Some((id, phase));
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.recorder.now_us();
        self.recorder.span_closed_flow(
            std::mem::take(&mut self.name),
            self.start_us,
            end.saturating_sub(self.start_us),
            std::mem::take(&mut self.args),
            self.flow.take(),
        );
    }
}

/// Append-only JSONL writer for the journal file.
pub struct JournalSink {
    path: PathBuf,
    file: BufWriter<File>,
}

impl std::fmt::Debug for JournalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalSink").field("path", &self.path).finish()
    }
}

impl JournalSink {
    /// Creates (truncating) the journal file.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<JournalSink> {
        let path = path.into();
        let file = BufWriter::new(File::create(&path)?);
        Ok(JournalSink { path, file })
    }

    /// Opens the journal file for appending (the offline pass appends its
    /// spans to the collector's journal).
    pub fn append(path: impl Into<PathBuf>) -> io::Result<JournalSink> {
        let path = path.into();
        let file = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        Ok(JournalSink { path, file })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends events as JSONL lines and flushes, so a crash loses at
    /// most the events still buffered in rings.
    pub fn write_events(&mut self, events: &[JournalEvent]) -> io::Result<()> {
        for event in events {
            let line = event.to_json().render();
            self.file.write_all(line.as_bytes())?;
            self.file.write_all(b"\n")?;
        }
        self.file.flush()
    }

    /// Drains the journal into the file; records a `dropped_events`
    /// instant first when rings overflowed since the last drain.
    pub fn drain_from(&mut self, journal: &Journal, last_dropped: &mut u64) -> io::Result<usize> {
        let dropped = journal.dropped_events();
        let mut events = Vec::new();
        if dropped > *last_dropped {
            events.push(JournalEvent {
                layer: Layer::Cli,
                thread: "journal".to_string(),
                name: "dropped_events".to_string(),
                t_us: journal.now_us(),
                dur_us: None,
                args: vec![("count".to_string(), (dropped - *last_dropped) as f64)],
                flow: None,
            });
            *last_dropped = dropped;
        }
        events.extend(journal.drain());
        let n = events.len();
        if n > 0 {
            self.write_events(&events)?;
        }
        Ok(n)
    }
}

/// Result of reading a journal file back.
#[derive(Clone, Debug, Default)]
pub struct JournalRead {
    /// Parsed events in file order.
    pub events: Vec<JournalEvent>,
    /// True when the final line was torn (crashed mid-write) and was
    /// skipped.
    pub truncated_tail: bool,
}

/// Reads a journal JSONL file line-by-line. A malformed *final* line —
/// the signature of a run killed mid-append — is tolerated and flagged;
/// malformed interior lines are `InvalidData` errors.
pub fn read_journal(path: &Path) -> io::Result<JournalRead> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = JournalRead::default();
    let mut pending_error: Option<String> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(err) = pending_error.take() {
            // The bad line was not the last one: real corruption.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal line {}: {err}", idx),
            ));
        }
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(&line).and_then(|v| JournalEvent::from_json(&v)) {
            Ok(event) => out.events.push(event),
            Err(err) => pending_error = Some(err),
        }
    }
    out.truncated_tail = pending_error.is_some();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_records_duration_and_args() {
        let journal = Journal::new(16);
        let tj = journal.for_thread(Layer::Runtime, "app-0");
        {
            let _span = tj.span("flush-handoff").arg("bytes", 4096.0);
        }
        tj.instant("publish", vec![]);
        let events = journal.drain();
        assert_eq!(events.len(), 2);
        let span = events.iter().find(|e| e.name == "flush-handoff").unwrap();
        assert!(span.dur_us.is_some());
        assert_eq!(span.args, vec![("bytes".to_string(), 4096.0)]);
        assert_eq!(span.thread, "app-0");
        let inst = events.iter().find(|e| e.name == "publish").unwrap();
        assert_eq!(inst.dur_us, None);
        // Drain empties the rings.
        assert!(journal.drain().is_empty());
    }

    #[test]
    fn ring_overflow_drops_and_counts_instead_of_growing() {
        let journal = Journal::new(8);
        let tj = journal.for_thread(Layer::Runtime, "app-0");
        for i in 0..100 {
            tj.instant(format!("e{i}"), vec![]);
        }
        assert_eq!(journal.dropped_events(), 92);
        let events = journal.drain();
        assert_eq!(events.len(), 8);
        // Drop-newest: the survivors are the oldest records.
        assert_eq!(events[0].name, "e0");
        assert_eq!(events[7].name, "e7");
        // Other threads' rings are unaffected.
        let tj2 = journal.for_thread(Layer::Offline, "worker-0");
        tj2.instant("ok", vec![]);
        assert_eq!(journal.drain().len(), 1);
    }

    #[test]
    fn event_jsonl_roundtrip() {
        let event = JournalEvent {
            layer: Layer::Offline,
            thread: "oa-worker-1".to_string(),
            name: "task".to_string(),
            t_us: 123456,
            dur_us: Some(789),
            args: vec![("nodes".to_string(), 42.0)],
            flow: None,
        };
        let line = event.to_json().render();
        let back = JournalEvent::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, event);

        // Flow membership survives the round trip too.
        let flowed = JournalEvent { flow: Some((17, FlowPhase::Step)), ..event };
        let line = flowed.to_json().render();
        let back = JournalEvent::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, flowed);
    }

    #[test]
    fn tap_forwards_drained_events_and_sheds_when_full() {
        let journal = Journal::new(64);
        let tj = journal.for_thread(Layer::Runtime, "app-0");
        let tap = journal.tap(4);
        for i in 0..10 {
            tj.instant(format!("e{i}"), vec![]);
        }
        // Nothing is forwarded until a drain pass runs.
        assert!(tap.try_recv().is_none());
        let drained = journal.drain();
        assert_eq!(drained.len(), 10);
        // The tap holds the oldest 4; the rest were shed, not buffered.
        let mut got = Vec::new();
        while let Some(e) = tap.try_recv() {
            got.push(e.name);
        }
        assert_eq!(got, vec!["e0", "e1", "e2", "e3"]);
        assert_eq!(tap.dropped(), 6);
        // Dropping the tap unsubscribes it: the next drain must not
        // error or leak.
        drop(tap);
        tj.instant("after", vec![]);
        assert_eq!(journal.drain().len(), 1);
    }

    #[test]
    fn flow_ids_are_unique_and_span_guard_carries_flow() {
        let journal = Journal::new(16);
        let a = journal.next_flow_id();
        let b = journal.next_flow_id();
        assert_ne!(a, b);
        let tj = journal.for_thread(Layer::Runtime, "app-0");
        {
            let _span = tj.span("handoff").flow(a, FlowPhase::Start);
        }
        let events = journal.drain();
        assert_eq!(events[0].flow, Some((a, FlowPhase::Start)));
    }

    #[test]
    fn sink_roundtrip_and_dropped_marker() {
        let dir = std::env::temp_dir().join(format!("obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs.jsonl");
        let journal = Journal::new(4);
        let tj = journal.for_thread(Layer::Runtime, "app-0");
        for i in 0..10 {
            tj.instant(format!("e{i}"), vec![]);
        }
        let mut sink = JournalSink::create(&path).unwrap();
        let mut last_dropped = 0;
        let n = sink.drain_from(&journal, &mut last_dropped).unwrap();
        assert_eq!(n, 5); // dropped marker + 4 ring survivors
        let read = read_journal(&path).unwrap();
        assert!(!read.truncated_tail);
        let marker = read.events.iter().find(|e| e.name == "dropped_events").unwrap();
        assert_eq!(marker.args[0].1, 6.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_tolerated_interior_corruption_rejected() {
        let dir = std::env::temp_dir().join(format!("obs-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = JournalEvent {
            layer: Layer::Runtime,
            thread: "app-0".to_string(),
            name: "flush".to_string(),
            t_us: 10,
            dur_us: Some(5),
            args: vec![],
            flow: None,
        }
        .to_json()
        .render();

        // A journal whose process died mid-append: final line torn.
        let torn = dir.join("torn.jsonl");
        std::fs::write(&torn, format!("{good}\n{good}\n{{\"t\":99,\"lay")).unwrap();
        let read = read_journal(&torn).unwrap();
        assert_eq!(read.events.len(), 2);
        assert!(read.truncated_tail);

        // Corruption in the middle is an error, not silent data loss.
        let corrupt = dir.join("corrupt.jsonl");
        std::fs::write(&corrupt, format!("{good}\nnot json at all\n{good}\n")).unwrap();
        let err = read_journal(&corrupt).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
